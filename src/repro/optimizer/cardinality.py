"""Cardinality estimation from ANALYZE statistics.

The estimator mirrors PostgreSQL's approach:

* filter selectivities from per-column MCVs and histograms,
* conjunctions combined under the **independence assumption**,
* equi-join selectivity ``1 / max(ndv(left), ndv(right))``,
* multi-way join sizes composed predicate by predicate.

The independence assumption is deliberately kept: its estimation errors on
skewed, correlated data are what make JOB hard and are the backdrop for the
whole LQO discussion in the paper.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.catalog.statistics import ColumnStatistics, NULL_SENTINEL
from repro.errors import OptimizerError
from repro.sql.binder import BoundQuery, FilterPredicate, JoinPredicate
from repro.storage.database import Database

#: Default selectivity used when statistics give no usable signal.
DEFAULT_EQ_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_LIKE_SELECTIVITY = 0.05
MIN_ROWS = 1.0


class CardinalityEstimator:
    """Estimates base-relation and join cardinalities for bound queries."""

    def __init__(self, database: Database) -> None:
        self._db = database
        # Cache keyed by (query name or id, frozenset of aliases).
        self._subset_cache: dict[tuple[int, frozenset[str]], float] = {}

    # ------------------------------------------------------------------ helpers
    def _stats_for(self, query: BoundQuery, alias: str, column: str) -> ColumnStatistics | None:
        table = query.table_of(alias)
        stats = self._db.statistics(table)
        if stats.has_column(column):
            return stats.column(column)
        return None

    def _encode_literal(self, query: BoundQuery, alias: str, column: str, value: object) -> int:
        table = query.table_of(alias)
        return self._db.table_data(table).encode(column, value)

    # ------------------------------------------------------------ filter selectivity
    def filter_selectivity(self, query: BoundQuery, predicate: FilterPredicate) -> float:
        """Selectivity of a single filter predicate in [0, 1]."""
        stats = self._stats_for(query, predicate.alias, predicate.column)
        if stats is None or stats.row_count == 0:
            return self._fallback_selectivity(predicate)

        op = predicate.op
        if op in ("=", "!="):
            code = self._encode_literal(query, predicate.alias, predicate.column, predicate.value)
            sel = stats.equality_selectivity(float(code))
            return min(max(1.0 - sel, 0.0), 1.0) if op == "!=" else sel
        if op in ("<", "<=", ">", ">="):
            code = self._encode_literal(query, predicate.alias, predicate.column, predicate.value)
            return stats.range_selectivity(op, float(code))
        if op == "between":
            low = self._encode_literal(query, predicate.alias, predicate.column, predicate.values[0])
            high = self._encode_literal(query, predicate.alias, predicate.column, predicate.values[1])
            sel = stats.range_selectivity("<=", float(high)) - stats.range_selectivity(
                "<", float(low)
            )
            return min(max(sel, 0.0), 1.0)
        if op in ("in", "not_in"):
            total = 0.0
            for value in predicate.values:
                code = self._encode_literal(query, predicate.alias, predicate.column, value)
                total += stats.equality_selectivity(float(code))
            total = min(total, 1.0)
            return 1.0 - total if op == "not_in" else total
        if op in ("like", "not_like"):
            sel = self._like_selectivity(query, predicate)
            return 1.0 - sel if op == "not_like" else sel
        if op == "is_null":
            return stats.null_frac
        if op == "is_not_null":
            return 1.0 - stats.null_frac
        raise OptimizerError(f"unsupported filter operator {op!r}")

    def _like_selectivity(self, query: BoundQuery, predicate: FilterPredicate) -> float:
        """Selectivity of a LIKE filter using the text dictionary when available."""
        table = query.table_of(predicate.alias)
        data = self._db.table_data(table)
        stats = self._stats_for(query, predicate.alias, predicate.column)
        pattern = str(predicate.value)
        codes = data.codes_matching_pattern(predicate.column, pattern)
        if codes.size == 0:
            return DEFAULT_LIKE_SELECTIVITY if stats is None else min(
                DEFAULT_LIKE_SELECTIVITY, 1.0
            )
        if stats is None or stats.n_distinct == 0:
            return DEFAULT_LIKE_SELECTIVITY
        # Sum equality selectivities of every matching dictionary entry;
        # this matches how PostgreSQL expands low-cardinality LIKE filters.
        total = 0.0
        for code in codes[:64]:
            total += stats.equality_selectivity(float(code))
        if codes.size > 64:
            total *= codes.size / 64.0
        return min(max(total, 0.0), 1.0)

    @staticmethod
    def _fallback_selectivity(predicate: FilterPredicate) -> float:
        if predicate.op in ("=",):
            return DEFAULT_EQ_SELECTIVITY
        if predicate.op in ("!=", "is_not_null"):
            return 1.0 - DEFAULT_EQ_SELECTIVITY
        if predicate.op in ("in", "not_in"):
            sel = min(DEFAULT_EQ_SELECTIVITY * max(len(predicate.values), 1), 1.0)
            return 1.0 - sel if predicate.op == "not_in" else sel
        if predicate.op in ("like", "not_like"):
            return DEFAULT_LIKE_SELECTIVITY
        if predicate.op == "is_null":
            return DEFAULT_EQ_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY

    # --------------------------------------------------------------- base relations
    def table_rows(self, query: BoundQuery, alias: str) -> float:
        """Unfiltered row count of the relation behind ``alias``."""
        return float(self._db.statistics(query.table_of(alias)).row_count)

    def base_selectivity(self, query: BoundQuery, alias: str) -> float:
        """Combined selectivity of all filters on one alias (independence)."""
        selectivity = 1.0
        for predicate in query.filters_for(alias):
            selectivity *= self.filter_selectivity(query, predicate)
        return min(max(selectivity, 0.0), 1.0)

    def base_rows(self, query: BoundQuery, alias: str) -> float:
        """Estimated rows of ``alias`` after applying its filters."""
        rows = self.table_rows(query, alias) * self.base_selectivity(query, alias)
        return max(rows, MIN_ROWS)

    # -------------------------------------------------------------------- joins
    def join_selectivity(self, query: BoundQuery, predicate: JoinPredicate) -> float:
        """Equi-join selectivity ``1 / max(ndv_left, ndv_right)``."""
        left = self._stats_for(query, predicate.left_alias, predicate.left_column)
        right = self._stats_for(query, predicate.right_alias, predicate.right_column)
        ndv_left = left.n_distinct if left is not None else 0
        ndv_right = right.n_distinct if right is not None else 0
        ndv = max(ndv_left, ndv_right, 1)
        return 1.0 / float(ndv)

    def join_rows(
        self,
        query: BoundQuery,
        left_rows: float,
        right_rows: float,
        predicates: Iterable[JoinPredicate],
    ) -> float:
        """Estimated output rows of joining two inputs over ``predicates``."""
        rows = max(left_rows, MIN_ROWS) * max(right_rows, MIN_ROWS)
        for predicate in predicates:
            rows *= self.join_selectivity(query, predicate)
        return max(rows, MIN_ROWS)

    def outer_join_rows(
        self,
        query: BoundQuery,
        join_kind: str,
        left_rows: float,
        right_rows: float,
        predicates: Iterable[JoinPredicate],
    ) -> float:
        """Estimated output rows of a LEFT or FULL outer join.

        The inner-match estimate is extended by the unmatched probe rows
        (both sides for FULL), mirroring PostgreSQL's calc_joinrel_size
        lower bounds: a LEFT join emits at least ``left_rows`` rows.
        """
        inner = self.join_rows(query, left_rows, right_rows, predicates)
        rows = inner + max(left_rows - inner, 0.0)
        if join_kind == "full":
            rows += max(right_rows - inner, 0.0)
        return max(rows, MIN_ROWS)

    def rows_for(self, query: BoundQuery, aliases: Iterable[str]) -> float:
        """Estimated result size of the sub-query restricted to ``aliases``.

        Computed as the product of filtered base cardinalities times the
        selectivity of every join predicate fully contained in the subset —
        the textbook (and PostgreSQL) formulation.
        """
        alias_set = frozenset(aliases)
        if not alias_set:
            return 0.0
        key = (id(query), alias_set)
        cached = self._subset_cache.get(key)
        if cached is not None:
            return cached
        rows = 1.0
        for alias in alias_set:
            rows *= self.base_rows(query, alias)
        for predicate in query.joins:
            a, b = predicate.aliases()
            if a in alias_set and b in alias_set:
                rows *= self.join_selectivity(query, predicate)
        rows = max(rows, MIN_ROWS)
        self._subset_cache[key] = rows
        return rows

    # ------------------------------------------------------------------- truth
    def true_base_rows(self, query: BoundQuery, alias: str) -> int:
        """Exact filtered cardinality of a base relation (used by ablations).

        Unlike :meth:`base_rows` this evaluates the filters against the actual
        data, so it is exact but considerably more expensive.
        """
        table = query.table_of(alias)
        data = self._db.table_data(table)
        if data.row_count == 0:
            return 0
        mask = np.ones(data.row_count, dtype=bool)
        for predicate in query.filters_for(alias):
            mask &= _evaluate_filter_mask(data, predicate)
        return int(mask.sum())

    def estimation_error(self, query: BoundQuery, alias: str) -> float:
        """Q-error of the base-relation estimate (max of over/under-estimation)."""
        estimated = self.base_rows(query, alias)
        true = max(self.true_base_rows(query, alias), 1)
        return max(estimated / true, true / estimated)


def _evaluate_filter_mask(
    data, predicate: FilterPredicate, column: np.ndarray | None = None
) -> np.ndarray:
    """Boolean mask of rows satisfying one filter (shared with the executor).

    ``column`` defaults to the full stored column; the columnar executor
    passes an already-gathered slice instead (``data.gather(name, rows)``) so
    that a filter over a small intermediate result never rescans the whole
    table.  The mask semantics are identical either way: for any row subset
    ``rows``, ``mask(column[rows]) == mask(column)[rows]``.
    """
    if column is None:
        column = data.column(predicate.column)
    op = predicate.op
    if op in ("=", "!=", "<", "<=", ">", ">="):
        code = data.encode(predicate.column, predicate.value)
        not_null = column != NULL_SENTINEL
        if op == "=":
            return (column == code) & not_null
        if op == "!=":
            return (column != code) & not_null
        if op == "<":
            return (column < code) & not_null
        if op == "<=":
            return (column <= code) & not_null
        if op == ">":
            return (column > code) & not_null
        return (column >= code) & not_null
    if op == "between":
        low = data.encode(predicate.column, predicate.values[0])
        high = data.encode(predicate.column, predicate.values[1])
        return (column >= low) & (column <= high) & (column != NULL_SENTINEL)
    if op in ("in", "not_in"):
        codes = np.asarray(
            [data.encode(predicate.column, v) for v in predicate.values], dtype=np.int64
        )
        mask = np.isin(column, codes) & (column != NULL_SENTINEL)
        return ~mask & (column != NULL_SENTINEL) if op == "not_in" else mask
    if op in ("like", "not_like"):
        codes = data.codes_matching_pattern(predicate.column, str(predicate.value))
        mask = np.isin(column, codes) & (column != NULL_SENTINEL)
        return ~mask & (column != NULL_SENTINEL) if op == "not_like" else mask
    if op == "is_null":
        return column == NULL_SENTINEL
    if op == "is_not_null":
        return column != NULL_SENTINEL
    raise OptimizerError(f"unsupported filter operator {op!r}")
