"""PostgreSQL-flavoured cost model over the physical operators.

Costs are expressed in the usual abstract cost units (``seq_page_cost = 1``).
The formulas follow the structure of PostgreSQL's ``costsize.c`` but are
simplified to what the simulated executor actually models: page I/O split
into sequential and random accesses, per-tuple CPU costs, hash build/probe
costs, sort costs and a work_mem spill penalty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.config import PAGE_SIZE_BYTES, PostgresConfig
from repro.errors import HintError, OptimizerError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.plans.hints import HintSet, NO_HINTS
from repro.plans.physical import JoinKind, JoinNode, JoinType, PlanNode, ScanNode, ScanType
from repro.sql.binder import BoundQuery, FilterPredicate, JoinPredicate, OuterJoinEdge
from repro.storage.database import Database

#: Deterministic ordering of join types for tie-breaking.
JOIN_TYPE_ORDER: tuple[JoinType, ...] = (JoinType.HASH, JoinType.MERGE, JoinType.NESTED_LOOP)

#: Deterministic ordering of scan types for tie-breaking.
SCAN_TYPE_ORDER: tuple[ScanType, ...] = (
    ScanType.SEQ,
    ScanType.INDEX,
    ScanType.BITMAP,
    ScanType.TID,
)


@dataclass(frozen=True)
class OperatorEnables:
    """Effective operator availability after merging config and hint toggles."""

    seqscan: bool
    indexscan: bool
    bitmapscan: bool
    tidscan: bool
    nestloop: bool
    hashjoin: bool
    mergejoin: bool

    def allowed_scan_types(self) -> list[ScanType]:
        allowed = []
        if self.seqscan:
            allowed.append(ScanType.SEQ)
        if self.indexscan:
            allowed.append(ScanType.INDEX)
        if self.bitmapscan:
            allowed.append(ScanType.BITMAP)
        if self.tidscan:
            allowed.append(ScanType.TID)
        return allowed

    def allowed_join_types(self) -> list[JoinType]:
        allowed = []
        if self.hashjoin:
            allowed.append(JoinType.HASH)
        if self.mergejoin:
            allowed.append(JoinType.MERGE)
        if self.nestloop:
            allowed.append(JoinType.NESTED_LOOP)
        return allowed


class CostModel:
    """Estimates the cost of scans, joins and whole plans."""

    def __init__(
        self,
        database: Database,
        config: PostgresConfig | None = None,
        estimator: CardinalityEstimator | None = None,
    ) -> None:
        self._db = database
        self.config = config or database.config
        self.estimator = estimator or CardinalityEstimator(database)

    # ------------------------------------------------------------------ toggles
    def resolve_enables(self, hints: HintSet = NO_HINTS) -> OperatorEnables:
        """Merge the configuration's ``enable_*`` knobs with hint toggles."""
        cfg = self.config
        toggles = hints.toggles
        def pick(hint_value: bool | None, config_value: bool) -> bool:
            return config_value if hint_value is None else hint_value

        return OperatorEnables(
            seqscan=pick(toggles.seqscan, cfg.enable_seqscan),
            indexscan=pick(toggles.indexscan, cfg.enable_indexscan),
            bitmapscan=pick(toggles.bitmapscan, cfg.enable_bitmapscan),
            tidscan=cfg.enable_tidscan,
            nestloop=pick(toggles.nestloop, cfg.enable_nestloop),
            hashjoin=pick(toggles.hashjoin, cfg.enable_hashjoin),
            mergejoin=pick(toggles.mergejoin, cfg.enable_mergejoin),
        )

    # -------------------------------------------------------------------- scans
    def _table_geometry(self, query: BoundQuery, alias: str) -> tuple[float, float]:
        """(row_count, page_count) of the base relation behind ``alias``."""
        stats = self._db.statistics(query.table_of(alias))
        return float(stats.row_count), float(stats.page_count)

    def _driving_filter(
        self, query: BoundQuery, alias: str
    ) -> tuple[FilterPredicate | None, float]:
        """Most selective filter on an *indexed* column, used to drive index scans."""
        table = query.table_of(alias)
        best: FilterPredicate | None = None
        best_sel = 1.0
        for predicate in query.filters_for(alias):
            if predicate.op in ("is_null", "is_not_null", "not_in", "not_like", "like", "!="):
                continue
            if not self._db.has_index(table, predicate.column):
                continue
            sel = self.estimator.filter_selectivity(query, predicate)
            if sel < best_sel:
                best = predicate
                best_sel = sel
        return best, best_sel

    def candidate_scans(
        self, query: BoundQuery, alias: str, hints: HintSet = NO_HINTS
    ) -> list[ScanNode]:
        """All allowed scan alternatives for one alias, with estimates attached."""
        enables = self.resolve_enables(hints)
        forced = hints.scan_method_for(alias)
        table = query.table_of(alias)
        filters = tuple(query.filters_for(alias))
        rows, pages = self._table_geometry(query, alias)
        out_rows = self.estimator.base_rows(query, alias)
        cfg = self.config

        driving, driving_sel = self._driving_filter(query, alias)
        pk = self._db.schema.table(table).primary_key

        candidates: list[ScanNode] = []

        def add(scan_type: ScanType, cost: float, index_column: str | None = None) -> None:
            node = ScanNode(
                alias=alias,
                table=table,
                scan_type=scan_type,
                filters=filters,
                index_column=index_column,
            ).with_estimates(out_rows, cost)
            candidates.append(node)  # type: ignore[arg-type]

        # Sequential scan: always considered (PostgreSQL keeps it as fallback,
        # `enable_seqscan=off` only disables it via a cost penalty).
        seq_cost = (
            pages * cfg.seq_page_cost
            + rows * cfg.cpu_tuple_cost
            + rows * len(filters) * cfg.cpu_operator_cost
        )
        if not enables.seqscan and forced is not ScanType.SEQ:
            seq_cost += 1.0e7
        if forced in (None, ScanType.SEQ):
            add(ScanType.SEQ, seq_cost)

        if driving is not None:
            index = self._db.index(table, driving.column)
            if index is not None:
                leaf_pages = float(index.page_count)
                height = float(index.height)
                matched = max(rows * driving_sel, 1.0)
                heap_pages_fetched = min(matched, pages)

                if enables.indexscan or forced is ScanType.INDEX:
                    index_cost = (
                        (height + driving_sel * leaf_pages) * cfg.random_page_cost
                        + heap_pages_fetched * cfg.random_page_cost * 0.75
                        + matched * (cfg.cpu_index_tuple_cost + cfg.cpu_tuple_cost)
                        + matched * len(filters) * cfg.cpu_operator_cost
                    )
                    if forced in (None, ScanType.INDEX):
                        add(ScanType.INDEX, index_cost, index_column=driving.column)

                if enables.bitmapscan or forced is ScanType.BITMAP:
                    bitmap_pages = min(2.0 * matched / max(1.0, rows / pages), pages)
                    bitmap_cost = (
                        (height + driving_sel * leaf_pages) * cfg.random_page_cost
                        + bitmap_pages * (cfg.seq_page_cost * 1.5)
                        + matched * (cfg.cpu_index_tuple_cost + cfg.cpu_tuple_cost)
                        + matched * len(filters) * cfg.cpu_operator_cost
                    )
                    if forced in (None, ScanType.BITMAP):
                        add(ScanType.BITMAP, bitmap_cost, index_column=driving.column)

        # Tid scan: only attractive for an equality filter on the primary key.
        if (enables.tidscan or forced is ScanType.TID) and pk is not None:
            pk_eq = [
                f for f in filters if f.column == pk and f.op == "=" and self._db.has_index(table, pk)
            ]
            if pk_eq and forced in (None, ScanType.TID):
                tid_cost = cfg.random_page_cost + cfg.cpu_tuple_cost + len(filters) * cfg.cpu_operator_cost
                add(ScanType.TID, tid_cost, index_column=pk)

        if forced is not None and not candidates:
            # The forced scan type is structurally impossible (e.g. index scan
            # without an indexed filter); fall back to a sequential scan, the
            # same silent fallback pg_hint_plan exhibits.
            add(ScanType.SEQ, seq_cost)
        if not candidates:
            add(ScanType.SEQ, seq_cost)
        return candidates

    def best_scan(self, query: BoundQuery, alias: str, hints: HintSet = NO_HINTS) -> ScanNode:
        """Cheapest allowed scan for an alias (honouring forced scan methods)."""
        candidates = self.candidate_scans(query, alias, hints)
        order = {stype: i for i, stype in enumerate(SCAN_TYPE_ORDER)}
        return min(candidates, key=lambda n: (n.estimated_cost, order[n.scan_type]))

    # --------------------------------------------------------------------- joins
    def _row_width(self, aliases: Iterable[str], query: BoundQuery) -> float:
        width = 0.0
        for alias in aliases:
            width += self._db.schema.table(query.table_of(alias)).row_width_bytes
        return max(width, 8.0)

    def _inner_index(self, query: BoundQuery, plan: PlanNode, predicates: Sequence[JoinPredicate]):
        """Index usable for an index nested-loop into ``plan`` (a base scan), if any."""
        if not isinstance(plan, ScanNode):
            return None, None
        for predicate in predicates:
            if predicate.involves(plan.alias):
                column = predicate.column_for(plan.alias)
                index = self._db.index(plan.table, column)
                if index is not None:
                    return index, column
        return None, None

    def join_cost(
        self,
        query: BoundQuery,
        join_type: JoinType,
        left: PlanNode,
        right: PlanNode,
        predicates: Sequence[JoinPredicate],
    ) -> float:
        """Total cost (including input costs) of joining ``left`` and ``right``."""
        cfg = self.config
        left_rows = max(left.estimated_rows, 1.0)
        right_rows = max(right.estimated_rows, 1.0)
        left_cost = max(left.estimated_cost, 0.0)
        right_cost = max(right.estimated_cost, 0.0)
        out_rows = self.estimator.join_rows(query, left_rows, right_rows, predicates)
        cross_penalty = 0.0 if predicates else left_rows * right_rows * cfg.cpu_operator_cost

        if join_type is JoinType.HASH:
            inner_bytes = right_rows * self._row_width(right.aliases, query)
            spill = inner_bytes > cfg.work_mem
            cost = (
                left_cost
                + right_cost
                + right_rows * cfg.cpu_operator_cost * 1.5  # build
                + left_rows * cfg.cpu_operator_cost  # probe
                + out_rows * cfg.cpu_tuple_cost
                + cross_penalty
            )
            if spill:
                spill_pages = inner_bytes / PAGE_SIZE_BYTES
                cost += 2.0 * spill_pages * cfg.seq_page_cost
            return cost

        if join_type is JoinType.MERGE:
            def sort_cost(rows: float, already_sorted: bool) -> float:
                if already_sorted or rows <= 1:
                    return 0.0
                return rows * math.log2(max(rows, 2.0)) * cfg.cpu_operator_cost * 2.0

            left_sorted = self._is_sorted_on_join_key(left, predicates)
            right_sorted = self._is_sorted_on_join_key(right, predicates)
            cost = (
                left_cost
                + right_cost
                + sort_cost(left_rows, left_sorted)
                + sort_cost(right_rows, right_sorted)
                + (left_rows + right_rows) * cfg.cpu_operator_cost
                + out_rows * cfg.cpu_tuple_cost
                + cross_penalty
            )
            return cost

        if join_type is JoinType.NESTED_LOOP:
            index, _column = self._inner_index(query, right, predicates)
            if index is not None and isinstance(right, ScanNode):
                probe_cost = (
                    float(index.height) * cfg.random_page_cost * 0.5
                    + cfg.cpu_index_tuple_cost
                    + max(right_rows / max(float(index.entry_count), 1.0), 1.0) * cfg.cpu_tuple_cost
                )
                cost = (
                    left_cost
                    + left_rows * probe_cost
                    + out_rows * cfg.cpu_tuple_cost
                )
            else:
                # Materialized nested loop: the inner is evaluated once and
                # re-scanned from memory for every outer tuple.
                cost = (
                    left_cost
                    + right_cost
                    + left_rows * right_rows * cfg.cpu_operator_cost
                    + out_rows * cfg.cpu_tuple_cost
                )
            return cost + cross_penalty

        raise OptimizerError(f"unknown join type {join_type!r}")

    def _is_sorted_on_join_key(self, plan: PlanNode, predicates: Sequence[JoinPredicate]) -> bool:
        if not isinstance(plan, ScanNode) or plan.scan_type is not ScanType.INDEX:
            return False
        for predicate in predicates:
            if predicate.involves(plan.alias) and predicate.column_for(plan.alias) == plan.index_column:
                return True
        return False

    def join_node(
        self,
        query: BoundQuery,
        join_type: JoinType,
        left: PlanNode,
        right: PlanNode,
        predicates: Sequence[JoinPredicate] | None = None,
        join_kind: JoinKind = JoinKind.INNER,
    ) -> JoinNode:
        """Build a join node of a specific type with estimates attached.

        For LEFT/FULL kinds the inner-match estimates are extended by the
        NULL-extended unmatched rows: extra output rows beyond the inner
        estimate cost one ``cpu_tuple_cost`` each.
        """
        if predicates is None:
            predicates = query.joins_between(left.aliases, right.aliases)
        left_rows = max(left.estimated_rows, 1.0)
        right_rows = max(right.estimated_rows, 1.0)
        cost = self.join_cost(query, join_type, left, right, predicates)
        rows = self.estimator.join_rows(query, left_rows, right_rows, predicates)
        if join_kind is not JoinKind.INNER:
            out_rows = self.estimator.outer_join_rows(
                query, join_kind.value.lower(), left_rows, right_rows, predicates
            )
            cost += max(out_rows - rows, 0.0) * self.config.cpu_tuple_cost
            rows = out_rows
        node = JoinNode(
            join_type=join_type,
            left=left,
            right=right,
            predicates=tuple(predicates),
            join_kind=join_kind,
        )
        return node.with_estimates(rows, cost)  # type: ignore[return-value]

    def best_join(
        self,
        query: BoundQuery,
        left: PlanNode,
        right: PlanNode,
        hints: HintSet = NO_HINTS,
        predicates: Sequence[JoinPredicate] | None = None,
    ) -> JoinNode:
        """Cheapest allowed join between two sub-plans (considering both orientations
        only for the inner/outer-sensitive operators via the caller's symmetry)."""
        if predicates is None:
            predicates = query.joins_between(left.aliases, right.aliases)
        enables = self.resolve_enables(hints)
        forced = hints.join_method_for(left.aliases | right.aliases)
        if forced is not None:
            allowed = [forced]
        else:
            allowed = enables.allowed_join_types()
            if not allowed:
                allowed = list(JOIN_TYPE_ORDER)
        best: JoinNode | None = None
        order = {jtype: i for i, jtype in enumerate(JOIN_TYPE_ORDER)}
        for join_type in allowed:
            node = self.join_node(query, join_type, left, right, predicates)
            if best is None or (node.estimated_cost, order[node.join_type]) < (
                best.estimated_cost,
                order[best.join_type],
            ):
                best = node
        assert best is not None
        return best

    def best_outer_join(
        self,
        query: BoundQuery,
        edge: OuterJoinEdge,
        left: PlanNode,
        right: PlanNode,
        hints: HintSet = NO_HINTS,
    ) -> JoinNode:
        """Cheapest allowed outer join folding ``edge`` onto ``left``.

        ``right`` must be the scan of the edge's nullable alias; the operand
        order is pinned by the edge, never commuted.  FULL joins only support
        HASH and MERGE (as in PostgreSQL); a hint forcing NESTED_LOOP on a
        FULL edge fails loudly instead of silently degrading.
        """
        join_kind = JoinKind.LEFT if edge.join_type == "left" else JoinKind.FULL
        kind_allowed = (
            list(JOIN_TYPE_ORDER)
            if join_kind is JoinKind.LEFT
            else [JoinType.HASH, JoinType.MERGE]
        )
        forced = hints.join_method_for(left.aliases | right.aliases)
        if forced is not None:
            if forced not in kind_allowed:
                raise HintError(
                    f"join method {forced.value!r} is not supported for "
                    f"{join_kind.value.upper()} JOIN {edge.nullable_alias!r}"
                )
            allowed = [forced]
        else:
            enables = self.resolve_enables(hints)
            allowed = [t for t in enables.allowed_join_types() if t in kind_allowed]
            if not allowed:
                allowed = kind_allowed
        best: JoinNode | None = None
        order = {jtype: i for i, jtype in enumerate(JOIN_TYPE_ORDER)}
        for join_type in allowed:
            node = self.join_node(
                query, join_type, left, right, edge.predicates, join_kind=join_kind
            )
            if best is None or (node.estimated_cost, order[node.join_type]) < (
                best.estimated_cost,
                order[best.join_type],
            ):
                best = node
        assert best is not None
        return best

    # ---------------------------------------------------------------------- plans
    def plan_cost(self, plan: PlanNode) -> float:
        """Total estimated cost of a plan (already attached by construction)."""
        return float(plan.estimated_cost)

    def recost_plan(self, query: BoundQuery, plan: PlanNode) -> PlanNode:
        """Re-derive estimates for an externally constructed plan tree.

        Used when a learned optimizer builds a plan structurally (e.g. from its
        own search) and estimates need to be attached for encoding/EXPLAIN.
        """
        if isinstance(plan, ScanNode):
            fresh = self.candidate_scans(query, plan.alias)
            for candidate in fresh:
                if candidate.scan_type is plan.scan_type and candidate.index_column == plan.index_column:
                    return candidate
            # Scan type no longer available: keep structure, recompute rows.
            rows = self.estimator.base_rows(query, plan.alias)
            return plan.with_estimates(rows, fresh[0].estimated_cost)
        if isinstance(plan, JoinNode):
            assert plan.left is not None and plan.right is not None
            left = self.recost_plan(query, plan.left)
            right = self.recost_plan(query, plan.right)
            return self.join_node(
                query, plan.join_type, left, right, plan.predicates or None,
                join_kind=plan.join_kind,
            )
        children = plan.children()
        if not children:
            return plan
        raise OptimizerError(f"cannot re-cost node type {type(plan).__name__}")
