"""The classical, PostgreSQL-style cost-based optimizer of the simulated DBMS.

Components:

* :mod:`repro.optimizer.cardinality` — selectivity and cardinality estimation
  from ``ANALYZE`` statistics under independence/uniformity assumptions,
* :mod:`repro.optimizer.cost_model` — a PostgreSQL-flavoured cost model over
  the physical operators,
* :mod:`repro.optimizer.enumeration` — System-R dynamic-programming join
  enumeration (left-deep and bushy) plus exhaustive enumeration utilities used
  by the Section 8.7 plan-shape study,
* :mod:`repro.optimizer.geqo` — the genetic query optimizer used for queries
  with many relations,
* :mod:`repro.optimizer.planner` — the top-level planner that honours the
  configuration knobs and planner hints.
"""

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import CostModel, JOIN_TYPE_ORDER
from repro.optimizer.enumeration import DPEnumerator, enumerate_join_trees
from repro.optimizer.geqo import GeqoEnumerator
from repro.optimizer.planner import Planner, PlannerResult

__all__ = [
    "CardinalityEstimator",
    "CostModel",
    "JOIN_TYPE_ORDER",
    "DPEnumerator",
    "enumerate_join_trees",
    "GeqoEnumerator",
    "Planner",
    "PlannerResult",
]
