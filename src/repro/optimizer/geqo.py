"""GEQO — the genetic query optimizer for queries with many relations.

PostgreSQL switches from exhaustive dynamic programming to a genetic algorithm
once a query joins ``geqo_threshold`` (default 12) or more relations.  The
simulator mirrors that behaviour: chromosomes are join-order permutations,
fitness is the estimated cost of the left-deep plan built from the
permutation, and the population evolves through tournament selection, order
crossover and swap mutation.

The paper's Section 8.5 ablation (enable vs. disable GEQO) is driven by this
module together with the planner's configuration handling.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import OptimizerError
from repro.optimizer.cost_model import CostModel
from repro.optimizer.enumeration import left_deep_plan_from_order, require_inner_only
from repro.plans.hints import HintSet, NO_HINTS
from repro.plans.physical import PlanNode
from repro.runtime.fingerprint import stable_seed
from repro.sql.binder import BoundQuery


@dataclass(frozen=True)
class GeqoParameters:
    """Tuning knobs of the genetic search (defaults sized for simulation speed)."""

    population_size: int = 16
    generations: int = 12
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.15
    #: Random seed making the search deterministic for a given query.
    seed: int = 0


class GeqoEnumerator:
    """Genetic join-order search producing left-deep plans."""

    def __init__(self, cost_model: CostModel, parameters: GeqoParameters | None = None) -> None:
        self.cost_model = cost_model
        self.parameters = parameters or GeqoParameters()

    # ------------------------------------------------------------------ helpers
    def _fitness(self, query: BoundQuery, order: list[str], hints: HintSet) -> tuple[float, PlanNode]:
        plan = left_deep_plan_from_order(query, self.cost_model, order, hints)
        return plan.estimated_cost, plan

    @staticmethod
    def _order_crossover(rng: random.Random, parent_a: list[str], parent_b: list[str]) -> list[str]:
        """Order crossover (OX): keep a slice of parent A, fill the rest from B."""
        n = len(parent_a)
        if n < 3:
            return list(parent_a)
        i, j = sorted(rng.sample(range(n), 2))
        child: list[str | None] = [None] * n
        child[i:j + 1] = parent_a[i:j + 1]
        fill = [alias for alias in parent_b if alias not in child[i:j + 1]]
        position = 0
        for k in range(n):
            if child[k] is None:
                child[k] = fill[position]
                position += 1
        return [alias for alias in child if alias is not None]

    @staticmethod
    def _swap_mutation(rng: random.Random, order: list[str]) -> list[str]:
        n = len(order)
        if n < 2:
            return list(order)
        i, j = rng.sample(range(n), 2)
        mutated = list(order)
        mutated[i], mutated[j] = mutated[j], mutated[i]
        return mutated

    def _seeded_orders(self, query: BoundQuery, rng: random.Random, count: int) -> list[list[str]]:
        """Initial population: random permutations plus one connectivity-aware order."""
        aliases = list(query.aliases)
        population = []
        graph = query.join_graph()
        # One "breadth-first from the most connected relation" individual gives
        # the search a sensible starting point, as PostgreSQL's GEQO does with
        # its heuristic initialization.
        if aliases:
            start = max(aliases, key=lambda a: graph.degree(a))
            visited = [start]
            frontier = [start]
            while frontier:
                node = frontier.pop(0)
                for neighbor in sorted(graph.neighbors(node)):
                    if neighbor not in visited:
                        visited.append(neighbor)
                        frontier.append(neighbor)
            for alias in aliases:
                if alias not in visited:
                    visited.append(alias)
            population.append(visited)
        while len(population) < count:
            permutation = list(aliases)
            rng.shuffle(permutation)
            population.append(permutation)
        return population

    # --------------------------------------------------------------------- search
    def plan(self, query: BoundQuery, hints: HintSet = NO_HINTS) -> PlanNode:
        """Run the genetic search and return the best plan found."""
        require_inner_only(query, "GeqoEnumerator")
        aliases = list(query.aliases)
        if not aliases:
            raise OptimizerError("query has no relations")
        if len(aliases) == 1:
            return self.cost_model.best_scan(query, aliases[0], hints)

        params = self.parameters
        # Seed from a stable digest of the alias set: builtin hash() is salted
        # per process and would make plans differ across processes/runs.
        rng = random.Random(params.seed ^ stable_seed(*sorted(aliases), bits=32))
        population = self._seeded_orders(query, rng, params.population_size)
        scored: list[tuple[float, list[str], PlanNode]] = []
        for order in population:
            cost, plan = self._fitness(query, order, hints)
            scored.append((cost, order, plan))
        scored.sort(key=lambda item: item[0])

        for _generation in range(params.generations):
            next_population: list[tuple[float, list[str], PlanNode]] = scored[:2]  # elitism
            while len(next_population) < params.population_size:
                parent_a = self._tournament(rng, scored)
                parent_b = self._tournament(rng, scored)
                if rng.random() < params.crossover_rate:
                    child = self._order_crossover(rng, parent_a, parent_b)
                else:
                    child = list(parent_a)
                if rng.random() < params.mutation_rate:
                    child = self._swap_mutation(rng, child)
                cost, plan = self._fitness(query, child, hints)
                next_population.append((cost, child, plan))
            next_population.sort(key=lambda item: item[0])
            scored = next_population[: params.population_size]

        return scored[0][2]

    def _tournament(
        self, rng: random.Random, scored: list[tuple[float, list[str], PlanNode]]
    ) -> list[str]:
        contenders = rng.sample(scored, min(self.parameters.tournament_size, len(scored)))
        contenders.sort(key=lambda item: item[0])
        return contenders[0][1]
