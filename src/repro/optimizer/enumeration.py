"""Join-order enumeration: System-R dynamic programming, greedy fallback and
exhaustive join-tree enumeration.

* :class:`DPEnumerator` — the classical bottom-up dynamic programming over
  connected sub-sets of relations, considering bushy trees when the
  configuration allows them.
* :func:`greedy_plan` — a cheap greedy enumerator used when dynamic
  programming would be too expensive and GEQO is disabled.
* :func:`left_deep_plan_from_order` — builds a plan for an explicit join
  order; shared by the GEQO fitness function, hint handling and several LQOs.
* :func:`enumerate_join_trees` — exhaustively enumerates all join-tree shapes
  of a (small) query; used by the Section 8.7 bushy-vs-left-deep study.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence

import networkx as nx

from repro.errors import OptimizerError
from repro.optimizer.cost_model import CostModel
from repro.plans.hints import HintSet, NO_HINTS
from repro.plans.physical import JoinNode, PlanNode
from repro.sql.binder import BoundQuery


def require_inner_only(query: BoundQuery, caller: str) -> None:
    """Reject queries with outer-join edges in inner-only enumerators.

    Outer edges pin their operand order, so the raw enumerators would
    silently mistreat their predicates as reorderable inner joins; callers
    must enumerate ``query.core_query()`` and fold the edges afterwards (as
    the planner and :func:`enumerate_join_trees` do).
    """
    if query.outer_edges:
        raise OptimizerError(
            f"{caller} only enumerates inner joins; plan the core query and "
            "fold the outer-join edges in syntax order instead"
        )


def _connected(graph: nx.Graph, aliases: frozenset[str]) -> bool:
    if len(aliases) <= 1:
        return True
    sub = graph.subgraph(aliases)
    return nx.is_connected(sub)


def left_deep_plan_from_order(
    query: BoundQuery,
    cost_model: CostModel,
    order: Sequence[str],
    hints: HintSet = NO_HINTS,
) -> PlanNode:
    """Build a left-deep plan joining relations in the given order.

    Scan and join methods are chosen by the cost model unless the hint set
    forces them.  Cross products are allowed (they simply cost a lot), which
    lets GEQO evaluate arbitrary permutations.
    """
    require_inner_only(query, "left_deep_plan_from_order")
    if not order:
        raise OptimizerError("cannot build a plan for an empty join order")
    missing = set(order) - set(query.aliases)
    if missing:
        raise OptimizerError(f"join order references unknown aliases {sorted(missing)}")
    plan: PlanNode = cost_model.best_scan(query, order[0], hints)
    for alias in order[1:]:
        right = cost_model.best_scan(query, alias, hints)
        plan = cost_model.best_join(query, plan, right, hints)
    return plan


def greedy_plan(
    query: BoundQuery,
    cost_model: CostModel,
    hints: HintSet = NO_HINTS,
) -> PlanNode:
    """Greedy enumeration: repeatedly merge the cheapest joinable pair of sub-plans.

    Produces bushy plans when beneficial.  Used for very large queries when
    dynamic programming is infeasible and GEQO is disabled.
    """
    require_inner_only(query, "greedy_plan")
    plans: list[PlanNode] = [cost_model.best_scan(query, alias, hints) for alias in query.aliases]
    if not plans:
        raise OptimizerError("query has no relations")
    while len(plans) > 1:
        connected_pairs: list[tuple[int, int]] = []
        all_pairs: list[tuple[int, int]] = []
        for i, j in combinations(range(len(plans)), 2):
            all_pairs.append((i, j))
            if query.joins_between(plans[i].aliases, plans[j].aliases):
                connected_pairs.append((i, j))
        candidates = connected_pairs or all_pairs
        best_pair: tuple[int, int] | None = None
        best_join: JoinNode | None = None
        for i, j in candidates:
            predicates = query.joins_between(plans[i].aliases, plans[j].aliases)
            join = cost_model.best_join(query, plans[i], plans[j], hints, predicates)
            if best_join is None or join.estimated_cost < best_join.estimated_cost:
                best_join = join
                best_pair = (i, j)
        assert best_pair is not None and best_join is not None
        i, j = best_pair
        remaining = [p for k, p in enumerate(plans) if k not in (i, j)]
        remaining.append(best_join)
        plans = remaining
    return plans[0]


class DPEnumerator:
    """System-R style dynamic programming over connected relation subsets."""

    def __init__(self, cost_model: CostModel, consider_bushy: bool | None = None) -> None:
        self.cost_model = cost_model
        if consider_bushy is None:
            consider_bushy = cost_model.config.enable_bushy_plans
        self.consider_bushy = consider_bushy

    def plan(self, query: BoundQuery, hints: HintSet = NO_HINTS) -> PlanNode:
        """Return the cheapest plan found by dynamic programming."""
        require_inner_only(query, "DPEnumerator")
        aliases = list(query.aliases)
        n = len(aliases)
        if n == 0:
            raise OptimizerError("query has no relations")
        if n == 1:
            return self.cost_model.best_scan(query, aliases[0], hints)
        if n > 14:
            # 2^n subsets becomes impractical in pure Python; callers should
            # route such queries to GEQO or the greedy enumerator.
            raise OptimizerError(
                f"dynamic programming over {n} relations is not supported; use GEQO"
            )

        graph = query.join_graph()
        fully_connected = query.is_connected()
        index_of = {alias: i for i, alias in enumerate(aliases)}

        best: dict[int, PlanNode] = {}
        for alias in aliases:
            mask = 1 << index_of[alias]
            best[mask] = self.cost_model.best_scan(query, alias, hints)

        def mask_aliases(mask: int) -> frozenset[str]:
            return frozenset(aliases[i] for i in range(n) if mask & (1 << i))

        for size in range(2, n + 1):
            for combo in combinations(range(n), size):
                mask = 0
                for i in combo:
                    mask |= 1 << i
                subset = mask_aliases(mask)
                if fully_connected and not _connected(graph, subset):
                    continue
                best_plan: PlanNode | None = None
                # Enumerate proper, non-empty splits of the subset.
                sub = (mask - 1) & mask
                seen_connected_split = False
                candidates: list[tuple[int, int]] = []
                while sub:
                    other = mask ^ sub
                    if sub in best and other in best:
                        candidates.append((sub, other))
                    sub = (sub - 1) & mask
                # First pass: splits connected by at least one join predicate.
                for sub_mask, other_mask in candidates:
                    if not self.consider_bushy and bin(other_mask).count("1") != 1:
                        # Left-deep only: the inner (right) input must be a base
                        # relation.  Both orientations of every split are
                        # enumerated, so no plans are lost.
                        continue
                    left = best[sub_mask]
                    right = best[other_mask]
                    predicates = query.joins_between(left.aliases, right.aliases)
                    if not predicates:
                        continue
                    seen_connected_split = True
                    join = self.cost_model.best_join(query, left, right, hints, predicates)
                    if best_plan is None or join.estimated_cost < best_plan.estimated_cost:
                        best_plan = join
                # Second pass (only if necessary): allow cross products.
                if best_plan is None and not seen_connected_split:
                    for sub_mask, other_mask in candidates:
                        if not self.consider_bushy:
                            if bin(sub_mask).count("1") != 1 and bin(other_mask).count("1") != 1:
                                continue
                        left = best[sub_mask]
                        right = best[other_mask]
                        join = self.cost_model.best_join(query, left, right, hints, [])
                        if best_plan is None or join.estimated_cost < best_plan.estimated_cost:
                            best_plan = join
                if best_plan is not None:
                    best[mask] = best_plan

        full_mask = (1 << n) - 1
        if full_mask not in best:
            # The join graph is disconnected in a way the DP table did not
            # cover; fall back to the greedy enumerator.
            return greedy_plan(query, self.cost_model, hints)
        return best[full_mask]


def enumerate_join_trees(
    query: BoundQuery,
    cost_model: CostModel,
    hints: HintSet = NO_HINTS,
    max_relations: int = 7,
    allow_cross_products: bool = False,
) -> Iterator[PlanNode]:
    """Exhaustively enumerate every join-tree shape of a small query.

    Every yielded plan covers all relations; scan and join methods are picked
    by the cost model per node.  Shapes include left-deep, right-deep, zigzag
    and bushy trees — exactly the space analysed in Section 8.7.

    Outer-join edges never reorder: only the inner-join core is enumerated,
    and every yielded core shape is wrapped by the pinned outer folds in
    syntax order (the nullable side always on the right).
    """
    if query.outer_edges:
        core_query = query.core_query()
        for core_plan in enumerate_join_trees(
            core_query, cost_model, hints, max_relations, allow_cross_products
        ):
            plan = core_plan
            for edge in query.outer_edges:
                right = cost_model.best_scan(query, edge.nullable_alias, hints)
                plan = cost_model.best_outer_join(query, edge, plan, right, hints)
            yield plan
        return

    aliases = list(query.aliases)
    n = len(aliases)
    if n > max_relations:
        raise OptimizerError(
            f"refusing to exhaustively enumerate {n} relations (max {max_relations})"
        )
    if n == 0:
        raise OptimizerError("query has no relations")

    scans = {alias: cost_model.best_scan(query, alias, hints) for alias in aliases}

    def build(subset: frozenset[str]) -> Iterator[PlanNode]:
        if len(subset) == 1:
            (alias,) = subset
            yield scans[alias]
            return
        members = sorted(subset)
        # Enumerate unordered splits by always keeping the first (anchor)
        # member on the left: only subsets of the remaining members may move
        # to the right side.
        rest = members[1:]
        for r in range(0, len(rest) + 1):
            for right_members in combinations(rest, r):
                right_set = frozenset(right_members)
                left_set = subset - right_set
                if not right_set or not left_set:
                    continue
                predicates = query.joins_between(left_set, right_set)
                if not predicates and not allow_cross_products:
                    continue
                for left_plan in build(left_set):
                    for right_plan in build(right_set):
                        yield cost_model.best_join(query, left_plan, right_plan, hints, predicates)
                        # Also yield the mirrored orientation: inner/outer roles
                        # matter for nested-loop and hash joins.
                        yield cost_model.best_join(query, right_plan, left_plan, hints, predicates)

    yield from build(frozenset(aliases))


def count_join_tree_shapes(n_relations: int) -> int:
    """Number of ordered binary join trees over ``n`` distinct relations.

    Equals ``n! * Catalan(n - 1)`` — the quantity behind the paper's remark
    that there are far more bushy than left-deep plans.
    """
    if n_relations <= 0:
        return 0
    catalan = 1
    for i in range(2, n_relations):
        catalan = catalan * (n_relations - 1 + i) // i
    factorial = 1
    for i in range(2, n_relations + 1):
        factorial *= i
    return factorial * catalan


def count_left_deep_orders(n_relations: int) -> int:
    """Number of left-deep join orders (simply ``n!``)."""
    total = 1
    for i in range(2, n_relations + 1):
        total *= i
    return total
