"""The top-level planner of the simulated DBMS.

The planner ties together cardinality estimation, the cost model and the
enumeration strategies, honouring the configuration knobs the paper studies:

* ``join_collapse_limit = 1`` forces the join order written in the FROM list,
* ``geqo`` / ``geqo_threshold`` switch between dynamic programming and the
  genetic optimizer,
* ``enable_*`` switches and hint toggles restrict the operator families,
* hint sets (pg_hint_plan analogue) can force the entire join order, the scan
  method per relation and the join method per intermediate result.

The planner also reports a simulated planning time so the benchmarking
framework can decompose end-to-end latency exactly like the paper does
(inference + planning + execution).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.config import GB, PostgresConfig
from repro.errors import OptimizerError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost_model import CostModel
from repro.optimizer.enumeration import (
    DPEnumerator,
    greedy_plan,
    left_deep_plan_from_order,
)
from repro.optimizer.geqo import GeqoEnumerator, GeqoParameters
from repro.plans.hints import HintSet, NO_HINTS, split_leading_for_outer
from repro.plans.physical import AggregateNode, PlanNode, SortNode
from repro.runtime.plan_cache import PlanCache
from repro.sql.binder import BoundQuery
from repro.storage.database import Database

#: Enumeration strategy labels used in :class:`PlannerResult`.
STRATEGY_DP = "dynamic-programming"
STRATEGY_GEQO = "geqo"
STRATEGY_GREEDY = "greedy"
STRATEGY_FORCED = "forced-order"
STRATEGY_COLLAPSED = "from-order"


@dataclass
class PlannerResult:
    """A produced plan together with planning metadata."""

    plan: PlanNode
    planning_time_ms: float
    strategy: str
    estimated_cost: float
    estimated_rows: float

    @property
    def used_geqo(self) -> bool:
        return self.strategy == STRATEGY_GEQO


class Planner:
    """Cost-based planner honouring configuration knobs and hints."""

    def __init__(
        self,
        database: Database,
        config: PostgresConfig | None = None,
        geqo_parameters: GeqoParameters | None = None,
        plan_cache: PlanCache | None = None,
    ) -> None:
        self.database = database
        self.config = config or database.config
        self.estimator = CardinalityEstimator(database)
        self.cost_model = CostModel(database, self.config, self.estimator)
        self._dp = DPEnumerator(self.cost_model)
        self._geqo = GeqoEnumerator(self.cost_model, geqo_parameters)
        # Plans are deterministic for a given (query, hints, config, database,
        # GEQO parameters), so planner results are cached — keyed by content
        # fingerprint plus this planner's scope digest, which makes the cache
        # safely shareable across planners, repetitions and ablations (any
        # knob, hint or database change maps to a different key).
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self._cache_scope = hashlib.sha256(
            f"{database.name}:{database.total_rows()}|{self._geqo.parameters!r}".encode("utf-8")
        ).hexdigest()[:16]

    # ------------------------------------------------------------------ caching
    @property
    def cache_scope(self) -> str:
        """This planner's cache-scope digest (database identity + GEQO parameters)."""
        return self._cache_scope

    def cache_key(self, query: BoundQuery, hints: HintSet = NO_HINTS) -> tuple:
        """The shared-cache key a plan request would use right now.

        Includes the scope's current generation, so a key computed before an
        :meth:`invalidate_cached_plans` bump never matches an entry stored
        after it (and vice versa).  The serving layer uses this to probe the
        cache without planning.
        """
        return self.plan_cache.key_for(query, self.config, hints, self._cache_scope)

    def invalidate_cached_plans(self) -> int:
        """Retire every cached plan of this planner's scope (bump-on-change).

        Call after the underlying catalog or statistics change in a way the
        fingerprints cannot see (an ANALYZE refresh, regenerated tables);
        returns the scope's new generation.
        """
        return self.plan_cache.invalidate_scope(self._cache_scope)

    # ------------------------------------------------------------------ planning
    def plan(self, query: BoundQuery, hints: HintSet = NO_HINTS) -> PlanNode:
        """Plan a query and return the physical plan (no metadata)."""
        return self.plan_with_info(query, hints).plan

    def plan_with_info(self, query: BoundQuery, hints: HintSet = NO_HINTS) -> PlannerResult:
        """Plan a query and return the plan plus planning metadata."""
        hints.validate(query.aliases)
        n = query.num_relations
        if n == 0:
            raise OptimizerError("cannot plan a query without relations")

        cache_key = self.cache_key(query, hints)
        cached = self.plan_cache.get(cache_key)
        if cached is not None:
            return cached

        strategy, core = self._plan_core(query, hints)
        core = self._add_decorations(query, core)
        planning_time = self._simulated_planning_time_ms(query, strategy)
        result = PlannerResult(
            plan=core,
            planning_time_ms=planning_time,
            strategy=strategy,
            estimated_cost=core.estimated_cost,
            estimated_rows=core.estimated_rows,
        )
        self.plan_cache.put(cache_key, result)
        return result

    def _plan_core(self, query: BoundQuery, hints: HintSet) -> tuple[str, PlanNode]:
        n = query.num_relations
        if n == 1:
            return STRATEGY_DP, self.cost_model.best_scan(query, query.aliases[0], hints)

        if query.outer_edges:
            return self._plan_with_outer_edges(query, hints)

        if hints.forces_join_order and len(hints.leading) == n:
            plan = self._plan_forced_order(query, hints)
            return STRATEGY_FORCED, plan

        if hints.leading and not hints.join_order_exact:
            plan = self._plan_with_leading_prefix(query, hints)
            return STRATEGY_GREEDY, plan

        if self.config.join_collapse_limit <= 1:
            order = query.aliases
            plan = left_deep_plan_from_order(query, self.cost_model, order, hints)
            return STRATEGY_COLLAPSED, plan

        if self.config.geqo_enabled_for(n):
            return STRATEGY_GEQO, self._geqo.plan(query, hints)

        if n > 12:
            # GEQO is disabled but exhaustive DP over this many relations is
            # impractical in pure Python; fall back to the greedy enumerator.
            return STRATEGY_GREEDY, greedy_plan(query, self.cost_model, hints)

        return STRATEGY_DP, self._dp.plan(query, hints)

    def _plan_with_outer_edges(self, query: BoundQuery, hints: HintSet) -> tuple[str, PlanNode]:
        """Plan the freely reorderable inner core, then fold the outer edges.

        Outer-join edges pin their operand order, so they never enter the
        enumerators: the inner-join core is planned by the regular strategy
        dispatch, and each edge is folded on top in syntax order with the
        nullable side as a fresh scan on the right.  Hints that would force
        a reordering across an outer edge raise :class:`HintError`.
        """
        outer_order = [edge.nullable_alias for edge in query.outer_edges]
        core_hints = split_leading_for_outer(hints, query.core_aliases, outer_order)
        strategy, plan = self._plan_core(query.core_query(), core_hints)
        for edge in query.outer_edges:
            right = self.cost_model.best_scan(query, edge.nullable_alias, hints)
            plan = self.cost_model.best_outer_join(query, edge, plan, right, hints)
        return strategy, plan

    def _plan_forced_order(self, query: BoundQuery, hints: HintSet) -> PlanNode:
        """Build a plan that follows an exact, hint-provided left-deep join order."""
        plan: PlanNode = self.cost_model.best_scan(query, hints.leading[0], hints)
        for alias in hints.leading[1:]:
            right = self.cost_model.best_scan(query, alias, hints)
            predicates = query.joins_between(plan.aliases, right.aliases)
            forced_join = hints.join_method_for(plan.aliases | right.aliases)
            if forced_join is not None:
                plan = self.cost_model.join_node(query, forced_join, plan, right, predicates)
            else:
                plan = self.cost_model.best_join(query, plan, right, hints, predicates)
        return plan

    def _plan_with_leading_prefix(self, query: BoundQuery, hints: HintSet) -> PlanNode:
        """Honour a HybridQO-style prefix hint, then extend greedily."""
        prefix = list(hints.leading)
        plan: PlanNode = self.cost_model.best_scan(query, prefix[0], hints)
        for alias in prefix[1:]:
            right = self.cost_model.best_scan(query, alias, hints)
            plan = self.cost_model.best_join(query, plan, right, hints)
        remaining = [alias for alias in query.aliases if alias not in prefix]
        while remaining:
            best_alias = None
            best_join = None
            connected = [
                alias
                for alias in remaining
                if query.joins_between(plan.aliases, {alias})
            ] or remaining
            for alias in connected:
                right = self.cost_model.best_scan(query, alias, hints)
                join = self.cost_model.best_join(query, plan, right, hints)
                if best_join is None or join.estimated_cost < best_join.estimated_cost:
                    best_join = join
                    best_alias = alias
            assert best_alias is not None and best_join is not None
            plan = best_join
            remaining.remove(best_alias)
        return plan

    # -------------------------------------------------------------- decorations
    def _add_decorations(self, query: BoundQuery, plan: PlanNode) -> PlanNode:
        """Attach sort / aggregate nodes required by the SELECT statement."""
        statement = query.statement
        if statement is None:
            return plan
        if statement.order_by:
            keys = []
            for item in statement.order_by:
                alias = item.column.alias or query.aliases[0]
                keys.append((alias, item.column.column))
            plan = SortNode(child=plan, sort_keys=tuple(keys)).with_estimates(
                plan.estimated_rows,
                plan.estimated_cost
                + plan.estimated_rows * self.config.cpu_operator_cost * 2.0,
            )
        has_aggregate = any(item.function for item in statement.select_items)
        if has_aggregate or statement.group_by:
            group_by = tuple(
                (col.alias or query.aliases[0], col.column) for col in statement.group_by
            )
            aggregates = tuple(str(item) for item in statement.select_items if item.function)
            out_rows = 1.0 if not group_by else max(plan.estimated_rows * 0.1, 1.0)
            plan = AggregateNode(
                child=plan, group_by=group_by, aggregates=aggregates
            ).with_estimates(
                out_rows,
                plan.estimated_cost + plan.estimated_rows * self.config.cpu_operator_cost,
            )
        return plan

    # ------------------------------------------------------------ planning time
    def _simulated_planning_time_ms(self, query: BoundQuery, strategy: str) -> float:
        """Deterministic simulated planning time.

        Planning time grows with the number of relations; dynamic programming
        grows faster than GEQO (which exists precisely to bound planning time)
        and a small ``effective_cache_size`` produces the outlier planning
        times the paper observed before raising it to 32 GB (Section 7.1).
        """
        n = query.num_relations
        base = 0.4 + 0.12 * n + 0.02 * len(query.filters)
        if strategy == STRATEGY_DP:
            base += 0.015 * (2 ** min(n, 12)) / 100.0 * n
        elif strategy == STRATEGY_GEQO:
            base += 0.35 * n
        elif strategy in (STRATEGY_GREEDY, STRATEGY_COLLAPSED):
            base += 0.05 * n
        elif strategy == STRATEGY_FORCED:
            base += 0.03 * n
        if self.config.effective_cache_size < 16 * GB and n >= 10:
            base += 120.0 * (n - 9)
        return base
