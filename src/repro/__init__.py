"""repro — an end-to-end benchmarking framework for learned query optimizers.

This package reproduces "Is Your Learned Query Optimizer Behaving As You
Expect?  A Machine Learning Perspective" (Lehmann, Sulimov, Stockinger, VLDB
2024): a PostgreSQL-style simulated DBMS substrate, the JOB/STACK workloads,
implementations of the evaluated learned query optimizers (Neo, Bao, Balsa,
LEON, HybridQO, plus RTOS/Lero/LOGER), and the paper's benchmarking framework
(dataset splits, measurement protocol, timing decomposition, ablations).

Quick start::

    from repro import quickstart_environment
    from repro.lqo import create_optimizer
    from repro.core import generate_split

    context, env = quickstart_environment(scale=0.5)
    split = generate_split(context.workload, "random", seed=0)
    bao = create_optimizer("bao", env)
    bao.fit(split.train_queries(context.workload))
    planned = bao.plan_query(context.workload.by_id(split.test_ids[0]))
    print(planned.plan.pretty())
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.config import (
    CONFIG_PRESETS,
    DEFAULT_CONFIG,
    OUR_FRAMEWORK_CONFIG,
    SIMULATION_CONFIG,
    PostgresConfig,
)
from repro.errors import ReproError


def quickstart_environment(scale: float = 0.5, seed: int = 42):
    """Build a synthetic IMDB, the JOB workload and an optimizer environment.

    Returns ``(context, env)`` where ``context`` bundles the database and the
    workload and ``env`` is an :class:`repro.lqo.LQOEnvironment` ready to be
    handed to any optimizer.
    """
    from repro.experiments.common import job_context
    from repro.lqo.base import LQOEnvironment

    context = job_context(scale=scale, seed=seed)
    env = LQOEnvironment(context.database)
    return context, env


__all__ = [
    "__version__",
    "ReproError",
    "PostgresConfig",
    "DEFAULT_CONFIG",
    "SIMULATION_CONFIG",
    "OUR_FRAMEWORK_CONFIG",
    "CONFIG_PRESETS",
    "quickstart_environment",
]
