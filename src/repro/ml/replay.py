"""Experience replay buffers for the RL-flavoured learned optimizers.

Neo samples training batches from its entire replay buffer, while Balsa trains
only on data produced by the most recent model state (Section 2 of the
paper).  :class:`ReplayBuffer` supports both regimes via ``recent_only``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np


@dataclass
class Experience:
    """One executed plan: its features, measured latency and provenance."""

    query_id: str
    features: np.ndarray
    latency_ms: float
    iteration: int = 0
    timed_out: bool = False
    metadata: dict = field(default_factory=dict)


class ReplayBuffer:
    """A bounded buffer of :class:`Experience` records."""

    def __init__(self, capacity: int = 50_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: list[Experience] = []

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Experience]:
        return iter(self._items)

    def add(self, experience: Experience) -> None:
        self._items.append(experience)
        if len(self._items) > self.capacity:
            # Drop the oldest entries first.
            overflow = len(self._items) - self.capacity
            self._items = self._items[overflow:]

    def add_many(self, experiences: list[Experience]) -> None:
        for experience in experiences:
            self.add(experience)

    def clear(self) -> None:
        self._items.clear()

    def latest_iteration(self) -> int:
        return max((e.iteration for e in self._items), default=0)

    def training_matrix(
        self,
        recent_only: bool = False,
        log_target: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack experiences into (features, targets) arrays.

        ``recent_only`` restricts to the latest iteration (Balsa-style
        on-policy training); otherwise the full buffer is used (Neo-style).
        """
        items = self._items
        if recent_only and items:
            last = self.latest_iteration()
            items = [e for e in items if e.iteration == last]
        if not items:
            return np.empty((0, 0)), np.empty(0)
        features = np.vstack([e.features for e in items])
        latencies = np.asarray([max(e.latency_ms, 0.01) for e in items], dtype=float)
        targets = np.log(latencies) if log_target else latencies
        return features, targets

    def per_query_best(self) -> dict[str, float]:
        """Best (lowest) observed latency per query id — used for Balsa's timeouts."""
        best: dict[str, float] = {}
        for experience in self._items:
            if experience.timed_out:
                continue
            current = best.get(experience.query_id)
            if current is None or experience.latency_ms < current:
                best[experience.query_id] = experience.latency_ms
        return best
