"""Tree-structured plan encoders: tree convolution and a Tree-LSTM-style cell.

The paper's LQOs process plan trees either with tree convolutions (Neo, Bao,
Balsa, Lero, LEON) or Tree-LSTMs (RTOS, LOGER, HybridQO).  Here both are
implemented as *fixed-weight* recursive composition functions: the composition
matrices are drawn once from a seeded random generator and never trained,
while the downstream MLP head (``repro.ml.nn``) is the trainable part.

This is a deliberate, documented simplification (DESIGN.md §2): it preserves
what matters for the paper's analysis — the representation is a function of
the *tree structure* and of the per-node operator/table/cardinality features —
while keeping the backpropagation machinery limited to the MLP head.  The same
simplification is applied to every method, so comparisons stay apples to
apples.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.plan_encoding import EncodedPlanTree, PlanTreeEncoder
from repro.errors import ModelError
from repro.plans.physical import PlanNode


class TreeConvolutionEncoder:
    """Recursive tree-convolution-style composition with max-pooling readout.

    Each node's hidden state is ``tanh(W_root x + W_left h_left + W_right
    h_right)``; the plan representation is the concatenation of the root state
    and the element-wise max over all node states (dynamic pooling).
    """

    def __init__(
        self,
        plan_encoder: PlanTreeEncoder,
        hidden_size: int = 64,
        seed: int = 17,
    ) -> None:
        if hidden_size <= 0:
            raise ModelError("hidden size must be positive")
        self.plan_encoder = plan_encoder
        self.hidden_size = hidden_size
        rng = np.random.default_rng(seed)
        feature_size = plan_encoder.node_feature_size
        scale_x = 1.0 / np.sqrt(feature_size)
        scale_h = 1.0 / np.sqrt(hidden_size)
        self._w_root = rng.normal(0.0, scale_x, size=(feature_size, hidden_size))
        self._w_left = rng.normal(0.0, scale_h, size=(hidden_size, hidden_size))
        self._w_right = rng.normal(0.0, scale_h, size=(hidden_size, hidden_size))
        self._bias = rng.normal(0.0, 0.01, size=hidden_size)

    @property
    def output_size(self) -> int:
        return 2 * self.hidden_size

    def encode_tree(self, tree: EncodedPlanTree) -> np.ndarray:
        """Encode an already-vectorized plan tree."""
        states: list[np.ndarray] = []

        def compose(node: EncodedPlanTree) -> np.ndarray:
            left = compose(node.left) if node.left is not None else np.zeros(self.hidden_size)
            right = compose(node.right) if node.right is not None else np.zeros(self.hidden_size)
            state = np.tanh(
                node.features @ self._w_root + left @ self._w_left + right @ self._w_right + self._bias
            )
            states.append(state)
            return state

        root = compose(tree)
        pooled = np.max(np.vstack(states), axis=0)
        return np.concatenate([root, pooled]).astype(np.float64)

    def encode_plan(self, plan: PlanNode) -> np.ndarray:
        """Encode a physical plan directly."""
        return self.encode_tree(self.plan_encoder.encode(plan))


class TreeLSTMEncoder:
    """A child-sum Tree-LSTM-style composition with fixed random gates.

    Hidden and cell states are composed bottom-up; the representation is the
    concatenation of the root hidden state and the mean hidden state over all
    nodes (the "pooling" aggregation listed for the Tree-LSTM methods in
    Table 1).
    """

    def __init__(
        self,
        plan_encoder: PlanTreeEncoder,
        hidden_size: int = 64,
        seed: int = 23,
    ) -> None:
        if hidden_size <= 0:
            raise ModelError("hidden size must be positive")
        self.plan_encoder = plan_encoder
        self.hidden_size = hidden_size
        rng = np.random.default_rng(seed)
        feature_size = plan_encoder.node_feature_size
        scale_x = 1.0 / np.sqrt(feature_size)
        scale_h = 1.0 / np.sqrt(hidden_size)

        def w_x():
            return rng.normal(0.0, scale_x, size=(feature_size, hidden_size))

        def w_h():
            return rng.normal(0.0, scale_h, size=(hidden_size, hidden_size))

        self._wi_x, self._wi_h = w_x(), w_h()
        self._wf_x, self._wf_h = w_x(), w_h()
        self._wo_x, self._wo_h = w_x(), w_h()
        self._wu_x, self._wu_h = w_x(), w_h()

    @property
    def output_size(self) -> int:
        return 2 * self.hidden_size

    @staticmethod
    def _sigmoid(x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))

    def encode_tree(self, tree: EncodedPlanTree) -> np.ndarray:
        hidden_states: list[np.ndarray] = []

        def compose(node: EncodedPlanTree) -> tuple[np.ndarray, np.ndarray]:
            children = [child for child in (node.left, node.right) if child is not None]
            if children:
                child_states = [compose(child) for child in children]
                h_sum = np.sum([h for h, _ in child_states], axis=0)
                c_children = [c for _, c in child_states]
            else:
                h_sum = np.zeros(self.hidden_size)
                c_children = []
            x = node.features
            i = self._sigmoid(x @ self._wi_x + h_sum @ self._wi_h)
            o = self._sigmoid(x @ self._wo_x + h_sum @ self._wo_h)
            u = np.tanh(x @ self._wu_x + h_sum @ self._wu_h)
            c = i * u
            for c_child in c_children:
                f = self._sigmoid(x @ self._wf_x + c_child @ self._wf_h)
                c = c + f * c_child
            h = o * np.tanh(c)
            hidden_states.append(h)
            return h, c

        root_h, _ = compose(tree)
        mean_h = np.mean(np.vstack(hidden_states), axis=0)
        return np.concatenate([root_h, mean_h]).astype(np.float64)

    def encode_plan(self, plan: PlanNode) -> np.ndarray:
        return self.encode_tree(self.plan_encoder.encode(plan))
