"""A small, pure-numpy machine-learning substrate for the learned optimizers.

The paper's LQOs use PyTorch models (tree convolutions, Tree-LSTMs, MLP
heads).  This package provides the equivalents without a DL framework:

* :mod:`repro.ml.nn` — a multi-layer perceptron with ReLU, dropout, Adam and
  early stopping on a *fixed* validation set (the training practice the paper
  recommends in Section 5.1),
* :mod:`repro.ml.tree_models` — tree-structured plan encoders (tree
  convolution and a Tree-LSTM-style composition) with fixed random
  composition weights feeding the trainable MLP head,
* :mod:`repro.ml.losses` — regression (MSE on log latency) and pairwise
  learning-to-rank losses,
* :mod:`repro.ml.replay` — the experience buffer used by the RL-flavoured
  methods.
"""

from repro.ml.nn import MLPRegressor, PairwiseRanker, TrainingHistory
from repro.ml.tree_models import TreeConvolutionEncoder, TreeLSTMEncoder
from repro.ml.losses import mse_loss, q_error, pairwise_accuracy
from repro.ml.replay import Experience, ReplayBuffer

__all__ = [
    "MLPRegressor",
    "PairwiseRanker",
    "TrainingHistory",
    "TreeConvolutionEncoder",
    "TreeLSTMEncoder",
    "mse_loss",
    "q_error",
    "pairwise_accuracy",
    "Experience",
    "ReplayBuffer",
]
