"""Pure-numpy neural networks: an MLP regressor and a pairwise ranker.

Both models share the same fully-connected backbone with ReLU activations,
inverted dropout, Adam updates and early stopping on a fixed validation split
— the training hygiene Section 5.1 of the paper recommends (fixed holdout
rather than rolling/cross-validated model selection).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError, NotTrainedError


@dataclass
class TrainingHistory:
    """Per-epoch training/validation losses plus early-stopping metadata."""

    train_losses: list[float] = field(default_factory=list)
    validation_losses: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_losses)


class _MLPCore:
    """Shared fully-connected backbone with manual backprop and Adam."""

    def __init__(
        self,
        input_size: int,
        hidden_sizes: tuple[int, ...],
        output_size: int,
        seed: int,
        dropout: float,
        learning_rate: float,
        weight_decay: float,
    ) -> None:
        if input_size <= 0:
            raise ModelError("input size must be positive")
        self.input_size = input_size
        self.hidden_sizes = tuple(hidden_sizes)
        self.output_size = output_size
        self.dropout = dropout
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        rng = np.random.default_rng(seed)
        sizes = [input_size, *hidden_sizes, output_size]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)).astype(np.float64))
            self.biases.append(np.zeros(fan_out, dtype=np.float64))
        # Adam state.
        self._m_w = [np.zeros_like(w) for w in self.weights]
        self._v_w = [np.zeros_like(w) for w in self.weights]
        self._m_b = [np.zeros_like(b) for b in self.biases]
        self._v_b = [np.zeros_like(b) for b in self.biases]
        self._adam_t = 0
        self._rng = rng

    # -- forward / backward -------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False):
        """Forward pass; returns (output, cache) where cache feeds backward()."""
        activations = [x]
        masks = []
        h = x
        n_layers = len(self.weights)
        for layer, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            if layer < n_layers - 1:
                h = np.maximum(z, 0.0)
                if training and self.dropout > 0.0:
                    mask = (self._rng.random(h.shape) >= self.dropout) / (1.0 - self.dropout)
                    h = h * mask
                else:
                    mask = None
                masks.append(mask)
            else:
                h = z
            activations.append(h)
        return h, (activations, masks)

    def backward(self, cache, grad_output: np.ndarray) -> None:
        """Backprop ``grad_output`` (dL/d output) and apply one Adam step."""
        activations, masks = cache
        grads_w = [np.zeros_like(w) for w in self.weights]
        grads_b = [np.zeros_like(b) for b in self.biases]
        grad = grad_output
        n_layers = len(self.weights)
        for layer in reversed(range(n_layers)):
            h_prev = activations[layer]
            grads_w[layer] = h_prev.T @ grad + self.weight_decay * self.weights[layer]
            grads_b[layer] = grad.sum(axis=0)
            if layer > 0:
                grad = grad @ self.weights[layer].T
                mask = masks[layer - 1]
                if mask is not None:
                    grad = grad * mask
                grad = grad * (activations[layer] > 0.0)
        self._adam_step(grads_w, grads_b)

    def _adam_step(self, grads_w, grads_b, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8) -> None:
        self._adam_t += 1
        lr_t = self.learning_rate * np.sqrt(1 - beta2**self._adam_t) / (1 - beta1**self._adam_t)
        for i in range(len(self.weights)):
            self._m_w[i] = beta1 * self._m_w[i] + (1 - beta1) * grads_w[i]
            self._v_w[i] = beta2 * self._v_w[i] + (1 - beta2) * grads_w[i] ** 2
            self.weights[i] -= lr_t * self._m_w[i] / (np.sqrt(self._v_w[i]) + eps)
            self._m_b[i] = beta1 * self._m_b[i] + (1 - beta1) * grads_b[i]
            self._v_b[i] = beta2 * self._v_b[i] + (1 - beta2) * grads_b[i] ** 2
            self.biases[i] -= lr_t * self._m_b[i] / (np.sqrt(self._v_b[i]) + eps)

    def snapshot(self) -> list[np.ndarray]:
        return [w.copy() for w in self.weights] + [b.copy() for b in self.biases]

    def restore(self, snapshot: list[np.ndarray]) -> None:
        n = len(self.weights)
        for i in range(n):
            self.weights[i] = snapshot[i].copy()
            self.biases[i] = snapshot[n + i].copy()


class MLPRegressor:
    """An MLP trained with MSE on (feature, target) pairs.

    Targets are typically log latencies; :meth:`predict` returns the raw model
    output (callers decide whether to exponentiate).
    """

    def __init__(
        self,
        input_size: int,
        hidden_sizes: tuple[int, ...] = (64, 32),
        seed: int = 0,
        dropout: float = 0.1,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
    ) -> None:
        self._core = _MLPCore(
            input_size, hidden_sizes, 1, seed, dropout, learning_rate, weight_decay
        )
        self._trained = False
        self.history = TrainingHistory()

    @property
    def input_size(self) -> int:
        return self._core.input_size

    @property
    def is_trained(self) -> bool:
        return self._trained

    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        epochs: int = 60,
        batch_size: int = 32,
        validation_fraction: float = 0.2,
        patience: int = 8,
        seed: int = 0,
    ) -> TrainingHistory:
        """Train with mini-batch Adam, early-stopping on a fixed validation split."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64).reshape(-1, 1)
        if features.ndim != 2 or features.shape[0] != targets.shape[0]:
            raise ModelError("features and targets have incompatible shapes")
        n = features.shape[0]
        if n == 0:
            raise ModelError("cannot train on an empty dataset")

        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
        n_val = max(1, int(n * validation_fraction)) if n >= 5 else 0
        val_idx = order[:n_val]
        train_idx = order[n_val:] if n_val else order
        x_train, y_train = features[train_idx], targets[train_idx]
        x_val, y_val = features[val_idx], targets[val_idx]

        history = TrainingHistory()
        best_val = np.inf
        best_snapshot = self._core.snapshot()
        bad_epochs = 0

        for epoch in range(epochs):
            perm = rng.permutation(len(x_train))
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(x_train), batch_size):
                idx = perm[start:start + batch_size]
                xb, yb = x_train[idx], y_train[idx]
                pred, cache = self._core.forward(xb, training=True)
                diff = pred - yb
                loss = float(np.mean(diff**2))
                grad = (2.0 / len(xb)) * diff
                self._core.backward(cache, grad)
                epoch_loss += loss
                batches += 1
            history.train_losses.append(epoch_loss / max(batches, 1))

            if n_val:
                val_pred, _ = self._core.forward(x_val, training=False)
                val_loss = float(np.mean((val_pred - y_val) ** 2))
            else:
                val_loss = history.train_losses[-1]
            history.validation_losses.append(val_loss)

            if val_loss < best_val - 1e-6:
                best_val = val_loss
                best_snapshot = self._core.snapshot()
                history.best_epoch = epoch
                bad_epochs = 0
            else:
                bad_epochs += 1
                if bad_epochs >= patience:
                    history.stopped_early = True
                    break

        self._core.restore(best_snapshot)
        self._trained = True
        self.history = history
        return history

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._trained:
            raise NotTrainedError("MLPRegressor.predict called before fit")
        features = np.asarray(features, dtype=np.float64)
        single = features.ndim == 1
        if single:
            features = features.reshape(1, -1)
        out, _ = self._core.forward(features, training=False)
        out = out.reshape(-1)
        return out[0:1] if single else out

    def predict_one(self, features: np.ndarray) -> float:
        return float(self.predict(np.asarray(features).reshape(1, -1))[0])


class PairwiseRanker:
    """A learning-to-rank model: scores plans, trained on ordered pairs.

    Given pairs ``(better, worse)`` the model is trained with a logistic
    pairwise loss so that ``score(better) < score(worse)`` (lower is better,
    consistent with latency).  Used by the LTR methods (Lero, LEON).
    """

    def __init__(
        self,
        input_size: int,
        hidden_sizes: tuple[int, ...] = (64, 32),
        seed: int = 0,
        dropout: float = 0.1,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-5,
    ) -> None:
        self._core = _MLPCore(
            input_size, hidden_sizes, 1, seed, dropout, learning_rate, weight_decay
        )
        self._trained = False
        self.history = TrainingHistory()

    @property
    def is_trained(self) -> bool:
        return self._trained

    def fit_pairs(
        self,
        better: np.ndarray,
        worse: np.ndarray,
        epochs: int = 60,
        batch_size: int = 32,
        validation_fraction: float = 0.2,
        patience: int = 8,
        seed: int = 0,
    ) -> TrainingHistory:
        """Train on aligned arrays of (better, worse) feature rows."""
        better = np.asarray(better, dtype=np.float64)
        worse = np.asarray(worse, dtype=np.float64)
        if better.shape != worse.shape or better.ndim != 2:
            raise ModelError("better/worse feature matrices must have identical 2-D shapes")
        n = better.shape[0]
        if n == 0:
            raise ModelError("cannot train a ranker on zero pairs")
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
        n_val = max(1, int(n * validation_fraction)) if n >= 5 else 0
        val_idx, train_idx = order[:n_val], order[n_val:] if n_val else order

        history = TrainingHistory()
        best_val = np.inf
        best_snapshot = self._core.snapshot()
        bad_epochs = 0

        def pair_loss_and_grad(b_rows, w_rows, training):
            scores_b, cache_b = self._core.forward(b_rows, training=training)
            scores_w, cache_w = self._core.forward(w_rows, training=training)
            margin = scores_b - scores_w  # want negative
            loss = float(np.mean(np.log1p(np.exp(margin))))
            sigma = 1.0 / (1.0 + np.exp(-margin))
            grad = sigma / len(b_rows)
            return loss, (cache_b, grad), (cache_w, -grad)

        for epoch in range(epochs):
            perm = rng.permutation(len(train_idx))
            epoch_loss, batches = 0.0, 0
            for start in range(0, len(train_idx), batch_size):
                idx = train_idx[perm[start:start + batch_size]]
                loss, (cache_b, grad_b), (cache_w, grad_w) = pair_loss_and_grad(
                    better[idx], worse[idx], training=True
                )
                self._core.backward(cache_b, grad_b)
                self._core.backward(cache_w, grad_w)
                epoch_loss += loss
                batches += 1
            history.train_losses.append(epoch_loss / max(batches, 1))

            if n_val:
                val_loss, _, _ = pair_loss_and_grad(better[val_idx], worse[val_idx], False)
            else:
                val_loss = history.train_losses[-1]
            history.validation_losses.append(val_loss)

            if val_loss < best_val - 1e-6:
                best_val = val_loss
                best_snapshot = self._core.snapshot()
                history.best_epoch = epoch
                bad_epochs = 0
            else:
                bad_epochs += 1
                if bad_epochs >= patience:
                    history.stopped_early = True
                    break

        self._core.restore(best_snapshot)
        self._trained = True
        self.history = history
        return history

    def score(self, features: np.ndarray) -> np.ndarray:
        """Lower scores mean "predicted faster"."""
        if not self._trained:
            raise NotTrainedError("PairwiseRanker.score called before fit_pairs")
        features = np.asarray(features, dtype=np.float64)
        single = features.ndim == 1
        if single:
            features = features.reshape(1, -1)
        out, _ = self._core.forward(features, training=False)
        out = out.reshape(-1)
        return out[0:1] if single else out

    def prefer(self, features_a: np.ndarray, features_b: np.ndarray) -> bool:
        """True when plan A is predicted to be faster than plan B."""
        return float(self.score(features_a)[0]) <= float(self.score(features_b)[0])
