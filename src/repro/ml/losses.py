"""Loss and evaluation metrics shared by the learned optimizers."""

from __future__ import annotations

import numpy as np


def mse_loss(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Mean squared error."""
    predictions = np.asarray(predictions, dtype=float).reshape(-1)
    targets = np.asarray(targets, dtype=float).reshape(-1)
    if predictions.size != targets.size:
        raise ValueError("predictions and targets must have the same length")
    if predictions.size == 0:
        return 0.0
    return float(np.mean((predictions - targets) ** 2))


def q_error(predicted: np.ndarray, actual: np.ndarray, epsilon: float = 1e-9) -> np.ndarray:
    """Per-sample Q-error ``max(pred/actual, actual/pred)`` (cardinality/latency metric)."""
    predicted = np.maximum(np.asarray(predicted, dtype=float).reshape(-1), epsilon)
    actual = np.maximum(np.asarray(actual, dtype=float).reshape(-1), epsilon)
    if predicted.size != actual.size:
        raise ValueError("predicted and actual must have the same length")
    return np.maximum(predicted / actual, actual / predicted)


def pairwise_accuracy(scores_better: np.ndarray, scores_worse: np.ndarray) -> float:
    """Fraction of pairs ranked correctly (better scored lower than worse)."""
    scores_better = np.asarray(scores_better, dtype=float).reshape(-1)
    scores_worse = np.asarray(scores_worse, dtype=float).reshape(-1)
    if scores_better.size != scores_worse.size:
        raise ValueError("score arrays must have the same length")
    if scores_better.size == 0:
        return 0.0
    return float(np.mean(scores_better < scores_worse))


def log_latency(latency_ms: float, floor_ms: float = 0.01) -> float:
    """Log-transform a latency target (the regression target every LQO uses)."""
    return float(np.log(max(latency_ms, floor_ms)))


def from_log_latency(value: float) -> float:
    """Inverse of :func:`log_latency`."""
    return float(np.exp(value))
