"""The covariate-shift study (Section 8.3): Bao-Full vs. Bao-50 on IMDB-50%.

The experiment trains one Bao model on the full IMDB database and a second one
on IMDB-50% (the ``title`` table Bernoulli-sampled to 50% with referential
cascade), then evaluates *both* models on the full database using the same
base-query split.  A cardinality-only encoding that cannot tell the two data
regimes apart degrades on several queries and improves on a few — the paper's
evidence that refreshed DBMS statistics alone are not enough for an LQO to
survive covariate shift.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import MethodRunResult
from repro.core.splits import DatasetSplit
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.lqo.bao import BaoOptimizer
from repro.lqo.base import LQOEnvironment
from repro.storage.database import Database
from repro.workloads.workload import Workload


@dataclass
class CovariateShiftResult:
    """Per-query latencies of the two Bao models evaluated on the full database."""

    split_name: str
    full_model: MethodRunResult
    shifted_model: MethodRunResult
    slowdown_factors: dict[str, float] = field(default_factory=dict)

    def top_regressions(self, k: int = 5) -> list[tuple[str, float]]:
        """Queries where the shifted model is most slowed down vs. Bao-Full."""
        items = sorted(self.slowdown_factors.items(), key=lambda kv: kv[1], reverse=True)
        return items[:k]

    def top_improvements(self, k: int = 5) -> list[tuple[str, float]]:
        """Queries where the shifted model happens to be faster than Bao-Full."""
        items = sorted(self.slowdown_factors.items(), key=lambda kv: kv[1])
        return [(qid, factor) for qid, factor in items[:k] if factor < 1.0]


def run_covariate_shift_study(
    full_database: Database,
    shifted_database: Database,
    workload: Workload,
    split: DatasetSplit,
    experiment_config: ExperimentConfig | None = None,
    bao_kwargs: dict | None = None,
) -> CovariateShiftResult:
    """Train Bao on both databases, evaluate both models on the full database."""
    experiment_config = experiment_config or ExperimentConfig()
    bao_kwargs = bao_kwargs or {}
    train_queries = split.train_queries(workload)
    test_queries = split.test_queries(workload)

    # --- Bao-Full: trained and evaluated on the full database. -----------------
    full_runner = ExperimentRunner(full_database, workload, experiment_config=experiment_config)
    full_result = full_runner.run_method("bao", split)
    full_result.method = "bao-full"

    # --- Bao-50: trained on IMDB-50%, evaluated on the full database. -----------
    shifted_env = LQOEnvironment(
        shifted_database,
        training_runs_per_plan=experiment_config.training_runs_per_plan,
        evaluation_runs_per_plan=experiment_config.executions_per_query,
        seed=experiment_config.seed,
    )
    shifted_bao = BaoOptimizer(shifted_env, **bao_kwargs)
    shifted_report = shifted_bao.fit(train_queries)

    evaluation_env = full_runner.build_environment()
    shifted_result = MethodRunResult(
        method="bao-50",
        split_name=split.name,
        workload_name=workload.name,
        training_time_s=shifted_report.training_time_s,
        executed_training_plans=shifted_report.executed_plans,
    )
    # The shifted model plans against the *full* database at evaluation time —
    # its encoding only sees the refreshed cardinalities, which is the point.
    shifted_bao.env = evaluation_env
    from repro.lqo.registry import method_info  # local import to avoid cycle at module load

    info = method_info("bao")
    for query in test_queries:
        shifted_result.timings.append(
            full_runner._evaluate_query(shifted_bao, evaluation_env, query, info)
        )

    slowdowns: dict[str, float] = {}
    for timing in shifted_result.timings:
        try:
            reference = full_result.timing_for(timing.query_id)
        except KeyError:
            continue
        slowdowns[timing.query_id] = timing.execution_time_ms / max(
            reference.execution_time_ms, 1e-6
        )

    return CovariateShiftResult(
        split_name=split.name,
        full_model=full_result,
        shifted_model=shifted_result,
        slowdown_factors=slowdowns,
    )
