"""The end-to-end benchmarking framework — the paper's primary contribution.

The framework equalizes every stage of the ML pipeline around learned query
optimizers:

* :mod:`repro.core.splits` — the three dataset-split sampling strategies
  (leave-one-out, random, base-query; Section 7.2 / Figure 3),
* :mod:`repro.core.execution_protocol` — the hot-cache measurement protocol
  (execute k times, report the third run; Sections 7.3 and 8.6 / Figure 7),
* :mod:`repro.core.experiment` — training and evaluating optimizers under
  identical conditions with the paper's timing decomposition (inference,
  planning, execution, end-to-end; Section 8.2),
* :mod:`repro.core.metrics` / :mod:`repro.core.stats` — aggregation and the
  statistical tests used throughout Section 8,
* :mod:`repro.core.covariate_shift` — the IMDB-50% study (Section 8.3),
* :mod:`repro.core.ablations` — scan-type, GEQO and plan-shape ablations
  (Sections 8.4, 8.5, 8.7),
* :mod:`repro.core.report` — plain-text/markdown rendering of result tables.
"""

from repro.core.splits import DatasetSplit, SplitSampling, generate_split, generate_splits
from repro.core.metrics import QueryTiming, MethodRunResult, workload_summary
from repro.core.execution_protocol import ExecutionProtocol, RobustnessMeasurement
from repro.core.experiment import ExperimentRunner
from repro.core.stats import (
    bootstrap_confidence_interval,
    linear_regression_r2,
    mann_whitney_u_test,
)
from repro.core.report import format_table, to_markdown

__all__ = [
    "DatasetSplit",
    "SplitSampling",
    "generate_split",
    "generate_splits",
    "QueryTiming",
    "MethodRunResult",
    "workload_summary",
    "ExecutionProtocol",
    "RobustnessMeasurement",
    "ExperimentRunner",
    "bootstrap_confidence_interval",
    "linear_regression_r2",
    "mann_whitney_u_test",
    "format_table",
    "to_markdown",
]
