"""Ablation studies of the classical optimizer's toolkit (Sections 8.4, 8.5, 8.7).

* :func:`scan_type_ablation` — disable bitmap and tid scans and compare
  per-query execution times against the baseline configuration (Section 8.4),
* :func:`geqo_ablation` — disable the genetic query optimizer (Section 8.5),
* :func:`plan_shape_analysis` — exhaustively enumerate the join trees of small
  queries, execute them and compare bushy vs. left-deep plans with a
  Mann-Whitney U test overall and at the fast tail (Section 8.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import PostgresConfig
from repro.core.stats import MannWhitneyResult, mann_whitney_u_test
from repro.executor.engine import create_engine
from repro.optimizer.enumeration import enumerate_join_trees
from repro.optimizer.planner import Planner
from repro.plans.properties import PlanShape, classify_plan_shape
from repro.storage.database import Database
from repro.workloads.workload import BenchmarkQuery, Workload


@dataclass
class QueryAblationOutcome:
    """Baseline vs. ablated execution times of one query."""

    query_id: str
    baseline_ms: float
    ablated_ms: float
    baseline_samples: list[float]
    ablated_samples: list[float]
    p_value: float

    @property
    def difference_ms(self) -> float:
        return self.ablated_ms - self.baseline_ms

    @property
    def speedup_factor(self) -> float:
        """> 1 means the ablated configuration is *faster* for this query."""
        return self.baseline_ms / max(self.ablated_ms, 1e-9)

    @property
    def slowdown_factor(self) -> float:
        """> 1 means the ablated configuration is *slower* for this query."""
        return self.ablated_ms / max(self.baseline_ms, 1e-9)

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


@dataclass
class AblationStudyResult:
    """All per-query outcomes of one configuration ablation."""

    name: str
    outcomes: list[QueryAblationOutcome] = field(default_factory=list)

    def affected_queries(self, threshold_ms: float = 0.25) -> list[QueryAblationOutcome]:
        """Queries whose execution time changes by more than ``threshold_ms``."""
        return [o for o in self.outcomes if abs(o.difference_ms) > threshold_ms]

    def significant_queries(self, threshold_ms: float = 0.25, alpha: float = 0.05):
        return [o for o in self.affected_queries(threshold_ms) if o.significant(alpha)]

    def top_speedups(self, k: int = 3) -> list[QueryAblationOutcome]:
        return sorted(self.outcomes, key=lambda o: o.speedup_factor, reverse=True)[:k]

    def top_slowdowns(self, k: int = 3) -> list[QueryAblationOutcome]:
        return sorted(self.outcomes, key=lambda o: o.slowdown_factor, reverse=True)[:k]


def _measure_config(
    database: Database,
    config: PostgresConfig,
    queries: list[BenchmarkQuery],
    hot_samples: int,
) -> dict[str, list[float]]:
    """Hot-cache execution-time samples of every query under one configuration."""
    db = database.with_config(config)
    planner = Planner(db, config)
    engine = create_engine(db, config)
    samples: dict[str, list[float]] = {}
    for query in queries:
        planned = planner.plan_with_info(query.bound)
        db.drop_caches()
        # One warm-up run, then `hot_samples` measured hot-cache runs.
        engine.execute(query.bound, planned.plan)
        samples[query.query_id] = [
            engine.execute(query.bound, planned.plan).execution_time_ms
            for _ in range(hot_samples)
        ]
    return samples


def _ablation(
    name: str,
    database: Database,
    workload: Workload,
    baseline_config: PostgresConfig,
    ablated_config: PostgresConfig,
    hot_samples: int,
    query_ids: list[str] | None,
) -> AblationStudyResult:
    queries = (
        [workload.by_id(qid) for qid in query_ids] if query_ids is not None else workload.queries
    )
    baseline = _measure_config(database, baseline_config, queries, hot_samples)
    ablated = _measure_config(database, ablated_config, queries, hot_samples)
    result = AblationStudyResult(name=name)
    for query in queries:
        base_samples = baseline[query.query_id]
        abl_samples = ablated[query.query_id]
        test: MannWhitneyResult = mann_whitney_u_test(
            np.asarray(base_samples), np.asarray(abl_samples)
        )
        result.outcomes.append(
            QueryAblationOutcome(
                query_id=query.query_id,
                baseline_ms=float(np.median(base_samples)),
                ablated_ms=float(np.median(abl_samples)),
                baseline_samples=base_samples,
                ablated_samples=abl_samples,
                p_value=test.p_value,
            )
        )
    return result


def scan_type_ablation(
    database: Database,
    workload: Workload,
    baseline_config: PostgresConfig | None = None,
    hot_samples: int = 5,
    query_ids: list[str] | None = None,
) -> AblationStudyResult:
    """Section 8.4: disable bitmap and tid scans and measure the per-query impact."""
    baseline_config = baseline_config or database.config
    ablated_config = baseline_config.with_overrides(
        enable_bitmapscan=False, enable_tidscan=False
    )
    return _ablation(
        "disable bitmap/tid scans",
        database,
        workload,
        baseline_config,
        ablated_config,
        hot_samples,
        query_ids,
    )


def geqo_ablation(
    database: Database,
    workload: Workload,
    baseline_config: PostgresConfig | None = None,
    hot_samples: int = 5,
    query_ids: list[str] | None = None,
) -> AblationStudyResult:
    """Section 8.5: disable the genetic query optimizer and measure the impact."""
    baseline_config = baseline_config or database.config
    ablated_config = baseline_config.with_overrides(geqo=False)
    return _ablation(
        "disable GEQO",
        database,
        workload,
        baseline_config,
        ablated_config,
        hot_samples,
        query_ids,
    )


# ---------------------------------------------------------------------------
# Plan-shape analysis (Section 8.7)
# ---------------------------------------------------------------------------

@dataclass
class PlanShapeSample:
    """One enumerated plan, its shape and its measured execution time."""

    query_id: str
    shape: PlanShape
    execution_time_ms: float
    estimated_cost: float


@dataclass
class PlanShapeStudyResult:
    """Shape-wise execution time distributions plus the statistical comparison."""

    samples: list[PlanShapeSample] = field(default_factory=list)
    overall_test: MannWhitneyResult | None = None
    fast_tail_test: MannWhitneyResult | None = None
    fast_tail_quantile: float = 0.25

    def times_for(self, bushy: bool) -> np.ndarray:
        wanted = (
            {PlanShape.BUSHY}
            if bushy
            else {PlanShape.LEFT_DEEP, PlanShape.RIGHT_DEEP, PlanShape.ZIGZAG}
        )
        return np.asarray(
            [s.execution_time_ms for s in self.samples if s.shape in wanted], dtype=float
        )

    def shape_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for sample in self.samples:
            counts[sample.shape.value] = counts.get(sample.shape.value, 0) + 1
        return counts


def plan_shape_analysis(
    database: Database,
    workload: Workload,
    max_joins: int = 5,
    max_plans_per_query: int = 48,
    fast_tail_quantile: float = 0.25,
    seed: int = 0,
) -> PlanShapeStudyResult:
    """Section 8.7: enumerate all join-tree shapes of small queries and execute them.

    As in the paper, all queries with at most ``max_joins`` joins are analysed,
    the DBMS's own cardinality estimator drives operator selection (rather than
    true cardinalities) and all join methods are allowed.  When a query has
    more enumerable trees than ``max_plans_per_query`` a deterministic sample
    is executed to bound the study's runtime.
    """
    planner = Planner(database)
    engine = create_engine(database)
    rng = np.random.default_rng(seed)
    result = PlanShapeStudyResult(fast_tail_quantile=fast_tail_quantile)

    for query in workload:
        if query.num_joins > max_joins:
            continue
        try:
            plans = list(
                enumerate_join_trees(query.bound, planner.cost_model, max_relations=max_joins + 1)
            )
        except Exception:
            continue
        if not plans:
            continue
        if len(plans) > max_plans_per_query:
            indices = rng.choice(len(plans), size=max_plans_per_query, replace=False)
            plans = [plans[i] for i in sorted(indices)]
        database.drop_caches()
        # Warm the caches once with the first plan so every enumerated plan is
        # measured under comparable (hot) conditions.
        engine.execute(query.bound, plans[0])
        for plan in plans:
            execution = engine.execute(query.bound, plan)
            result.samples.append(
                PlanShapeSample(
                    query_id=query.query_id,
                    shape=classify_plan_shape(plan),
                    execution_time_ms=execution.execution_time_ms,
                    estimated_cost=plan.estimated_cost,
                )
            )

    bushy = result.times_for(bushy=True)
    linear = result.times_for(bushy=False)
    if bushy.size and linear.size:
        result.overall_test = mann_whitney_u_test(bushy, linear, alternative="two-sided")
        threshold = np.quantile(
            np.concatenate([bushy, linear]), fast_tail_quantile
        )
        bushy_tail = bushy[bushy <= threshold]
        linear_tail = linear[linear <= threshold]
        if bushy_tail.size and linear_tail.size:
            result.fast_tail_test = mann_whitney_u_test(
                bushy_tail, linear_tail, alternative="less"
            )
    return result
