"""Statistical tools used by the evaluation (Sections 6.1, 8.4-8.7).

* Mann-Whitney U test — the non-parametric test the paper uses for comparing
  execution-time distributions (bushy vs. left-deep plans, scan ablations),
* linear regression R² — the "number of joins is an irrelevant proxy for
  execution time" analysis behind Figure 2,
* bootstrap confidence intervals — the error bars of Figures 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class MannWhitneyResult:
    """Outcome of a Mann-Whitney U test."""

    statistic: float
    p_value: float
    alternative: str

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def mann_whitney_u_test(
    sample_a: np.ndarray,
    sample_b: np.ndarray,
    alternative: str = "two-sided",
) -> MannWhitneyResult:
    """Mann-Whitney U test between two samples (no normality assumption)."""
    sample_a = np.asarray(sample_a, dtype=float)
    sample_b = np.asarray(sample_b, dtype=float)
    if sample_a.size == 0 or sample_b.size == 0:
        return MannWhitneyResult(statistic=0.0, p_value=1.0, alternative=alternative)
    result = scipy_stats.mannwhitneyu(sample_a, sample_b, alternative=alternative)
    return MannWhitneyResult(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        alternative=alternative,
    )


@dataclass(frozen=True)
class RegressionResult:
    """Simple linear regression summary (slope, intercept, R²)."""

    slope: float
    intercept: float
    r_squared: float
    n: int


def linear_regression_r2(x: np.ndarray, y: np.ndarray) -> RegressionResult:
    """Least-squares fit of ``y`` on ``x`` with the out-of-sample-style R².

    Following the paper's Figure 2 analysis, R² is computed as
    ``1 - SS_res / SS_tot`` and can therefore be negative when the predictor
    explains less variance than the mean — which is exactly the paper's point
    about using the number of joins as a proxy for execution time.
    """
    x = np.asarray(x, dtype=float).reshape(-1)
    y = np.asarray(y, dtype=float).reshape(-1)
    if x.size != y.size or x.size < 2:
        return RegressionResult(slope=0.0, intercept=float(np.mean(y) if y.size else 0.0), r_squared=0.0, n=int(x.size))
    # Leave-one-out residuals give an honest (possibly negative) R² even when
    # the fit is evaluated on the same small sample it was computed from.
    residuals = np.empty_like(y)
    for i in range(x.size):
        mask = np.ones(x.size, dtype=bool)
        mask[i] = False
        slope_i, intercept_i = np.polyfit(x[mask], y[mask], 1)
        residuals[i] = y[i] - (slope_i * x[i] + intercept_i)
    slope, intercept = np.polyfit(x, y, 1)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 0.0
    return RegressionResult(slope=float(slope), intercept=float(intercept), r_squared=float(r_squared), n=int(x.size))


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap confidence interval around a sample mean."""

    mean: float
    low: float
    high: float
    confidence: float

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0


def bootstrap_confidence_interval(
    values: np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI of the mean of ``values``."""
    values = np.asarray(values, dtype=float).reshape(-1)
    if values.size == 0:
        return ConfidenceInterval(mean=0.0, low=0.0, high=0.0, confidence=confidence)
    if values.size == 1:
        v = float(values[0])
        return ConfidenceInterval(mean=v, low=v, high=v, confidence=confidence)
    rng = np.random.default_rng(seed)
    resamples = rng.choice(values, size=(n_resamples, values.size), replace=True)
    means = resamples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        mean=float(values.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def relative_difference(before: float, after: float) -> float:
    """Signed relative difference ``(before - after) / before`` (Figure 7's metric)."""
    if before == 0:
        return 0.0
    return (before - after) / before


def slowdown_factor(new_ms: float, reference_ms: float) -> float:
    """How many times slower ``new_ms`` is than ``reference_ms`` (≥ 1 means slower)."""
    return float(new_ms / max(reference_ms, 1e-9))
