"""Timing metrics and aggregation used by the experiment runner.

The paper decomposes end-to-end latency into inference time (LQO work before
the query reaches the DBMS), planning time (the DBMS planner), and execution
time, and treats the end-to-end sum as the primary objective (Section 8.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

import numpy as np


@dataclass
class QueryTiming:
    """Timing decomposition of one evaluated query."""

    query_id: str
    method: str
    inference_time_ms: float
    planning_time_ms: float
    execution_time_ms: float
    timed_out: bool = False
    num_joins: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def end_to_end_ms(self) -> float:
        """Inference + planning + execution (the paper's primary objective)."""
        return self.inference_time_ms + self.planning_time_ms + self.execution_time_ms

    @property
    def pre_execution_ms(self) -> float:
        """Inference + planning — what Figure 4's left panel shows."""
        return self.inference_time_ms + self.planning_time_ms

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "query_id": self.query_id,
            "method": self.method,
            "inference_time_ms": self.inference_time_ms,
            "planning_time_ms": self.planning_time_ms,
            "execution_time_ms": self.execution_time_ms,
            "timed_out": self.timed_out,
            "num_joins": self.num_joins,
            "metadata": _jsonable(self.metadata),
        }

    @staticmethod
    def from_dict(payload: dict) -> "QueryTiming":
        return QueryTiming(
            query_id=payload["query_id"],
            method=payload["method"],
            inference_time_ms=float(payload["inference_time_ms"]),
            planning_time_ms=float(payload["planning_time_ms"]),
            execution_time_ms=float(payload["execution_time_ms"]),
            timed_out=bool(payload.get("timed_out", False)),
            num_joins=int(payload.get("num_joins", 0)),
            metadata=dict(payload.get("metadata", {})),
        )


def _jsonable(value):
    """Best-effort conversion of metadata values into JSON-serializable types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass
class MethodRunResult:
    """All per-query timings of one method on one split, plus training accounting."""

    method: str
    split_name: str
    workload_name: str
    timings: list[QueryTiming] = field(default_factory=list)
    training_time_s: float = 0.0
    executed_training_plans: int = 0

    # -- aggregates ---------------------------------------------------------------
    @property
    def total_execution_ms(self) -> float:
        return float(sum(t.execution_time_ms for t in self.timings))

    @property
    def total_inference_ms(self) -> float:
        return float(sum(t.inference_time_ms for t in self.timings))

    @property
    def total_planning_ms(self) -> float:
        return float(sum(t.planning_time_ms for t in self.timings))

    @property
    def total_end_to_end_ms(self) -> float:
        return float(sum(t.end_to_end_ms for t in self.timings))

    @property
    def timed_out_queries(self) -> list[str]:
        return [t.query_id for t in self.timings if t.timed_out]

    def timing_for(self, query_id: str) -> QueryTiming:
        for timing in self.timings:
            if timing.query_id == query_id:
                return timing
        raise KeyError(f"no timing recorded for query {query_id!r}")

    def execution_times(self) -> np.ndarray:
        return np.asarray([t.execution_time_ms for t in self.timings], dtype=float)

    def end_to_end_times(self) -> np.ndarray:
        return np.asarray([t.end_to_end_ms for t in self.timings], dtype=float)

    def to_dict(self) -> dict:
        """JSON-serializable form, including every per-query timing."""
        return {
            "method": self.method,
            "split_name": self.split_name,
            "workload_name": self.workload_name,
            "training_time_s": self.training_time_s,
            "executed_training_plans": self.executed_training_plans,
            "timings": [t.to_dict() for t in self.timings],
        }

    @staticmethod
    def from_dict(payload: dict) -> "MethodRunResult":
        return MethodRunResult(
            method=payload["method"],
            split_name=payload["split_name"],
            workload_name=payload["workload_name"],
            training_time_s=float(payload.get("training_time_s", 0.0)),
            executed_training_plans=int(payload.get("executed_training_plans", 0)),
            timings=[QueryTiming.from_dict(t) for t in payload.get("timings", [])],
        )

    def summary_row(self) -> dict[str, object]:
        """One row of the Figure 4/5 style summary table."""
        return {
            "method": self.method,
            "split": self.split_name,
            "queries": len(self.timings),
            "inference_ms": round(self.total_inference_ms, 2),
            "planning_ms": round(self.total_planning_ms, 2),
            "execution_ms": round(self.total_execution_ms, 2),
            "end_to_end_ms": round(self.total_end_to_end_ms, 2),
            "timeouts": len(self.timed_out_queries),
            "training_time_s": round(self.training_time_s, 2),
        }


def workload_summary(results: list[MethodRunResult]) -> list[dict[str, object]]:
    """Summary rows for a list of method runs (Figure 4/5 table form)."""
    return [result.summary_row() for result in results]


def geometric_mean_speedup(
    baseline: MethodRunResult, contender: MethodRunResult
) -> float:
    """Geometric mean of per-query end-to-end speedups of ``contender`` over ``baseline``."""
    ratios = []
    for timing in baseline.timings:
        try:
            other = contender.timing_for(timing.query_id)
        except KeyError:
            continue
        ratios.append(max(timing.end_to_end_ms, 1e-6) / max(other.end_to_end_ms, 1e-6))
    if not ratios:
        return 1.0
    return float(np.exp(np.mean(np.log(ratios))))


def mean_end_to_end_ms(results: list[MethodRunResult]) -> float:
    """Mean total end-to-end workload time across several runs of the same method."""
    if not results:
        return 0.0
    return float(mean(result.total_end_to_end_ms for result in results))
