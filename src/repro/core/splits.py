"""Dataset splits: leave-one-out, random and base-query sampling (Section 7.2).

The three strategies probe different levels of generalization:

* **Leave One Out Sampling** puts exactly one variant of every base query into
  the test set; maximal information leakage from the training set, expected to
  be the easiest split.
* **Random Sampling** ignores families entirely (80/20 by default).
* **Base Query Sampling** keeps whole families on one side of the split, so no
  intra-family structure can leak; expected to be the hardest split.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

import numpy as np

from repro.errors import SplitError
from repro.workloads.workload import BenchmarkQuery, Workload


class SplitSampling(enum.Enum):
    """The three sampling strategies of Figure 3."""

    LEAVE_ONE_OUT = "leave_one_out"
    RANDOM = "random"
    BASE_QUERY = "base_query"


@dataclass(frozen=True)
class DatasetSplit:
    """A train/test split of a workload, by query id."""

    workload_name: str
    sampling: SplitSampling
    split_index: int
    train_ids: tuple[str, ...]
    test_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        overlap = set(self.train_ids) & set(self.test_ids)
        if overlap:
            raise SplitError(f"train/test overlap: {sorted(overlap)}")
        if not self.train_ids or not self.test_ids:
            raise SplitError("both train and test sets must be non-empty")

    @property
    def name(self) -> str:
        return f"{self.sampling.value}-{self.split_index}"

    def train_queries(self, workload: Workload) -> list[BenchmarkQuery]:
        return [workload.by_id(qid) for qid in self.train_ids]

    def test_queries(self, workload: Workload) -> list[BenchmarkQuery]:
        return [workload.by_id(qid) for qid in self.test_ids]

    def fingerprint(self) -> str:
        """Stable digest of the split's *membership*, not just its name.

        Two splits can share a name (``random-0``) while holding different
        query sets (different generation seeds); anything cached per split —
        notably the result store — must key on this, not on :attr:`name`.
        """
        payload = "|".join(
            (
                self.workload_name,
                self.sampling.value,
                str(self.split_index),
                ",".join(self.train_ids),
                ",".join(self.test_ids),
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        return (
            f"{self.workload_name}/{self.name}: "
            f"{len(self.train_ids)} train / {len(self.test_ids)} test queries"
        )


def leave_one_out_split(workload: Workload, seed: int = 0, split_index: int = 0) -> DatasetSplit:
    """Exactly one randomly chosen variant of every family goes to the test set."""
    rng = np.random.default_rng(seed)
    train: list[str] = []
    test: list[str] = []
    for family, queries in workload.families().items():
        if len(queries) == 1:
            # A single-variant family cannot lose its only member to the test
            # set without disappearing from training entirely; keep it in train.
            train.append(queries[0].query_id)
            continue
        held_out = int(rng.integers(len(queries)))
        for position, query in enumerate(queries):
            (test if position == held_out else train).append(query.query_id)
    return DatasetSplit(
        workload_name=workload.name,
        sampling=SplitSampling.LEAVE_ONE_OUT,
        split_index=split_index,
        train_ids=tuple(train),
        test_ids=tuple(test),
    )


def random_split(
    workload: Workload,
    test_fraction: float = 0.2,
    seed: int = 0,
    split_index: int = 0,
) -> DatasetSplit:
    """Uniformly random 80/20 split ignoring family membership."""
    if not 0.0 < test_fraction < 1.0:
        raise SplitError("test_fraction must lie strictly between 0 and 1")
    rng = np.random.default_rng(seed)
    ids = workload.query_ids()
    order = rng.permutation(len(ids))
    n_test = max(1, int(round(len(ids) * test_fraction)))
    test = {ids[i] for i in order[:n_test]}
    return DatasetSplit(
        workload_name=workload.name,
        sampling=SplitSampling.RANDOM,
        split_index=split_index,
        train_ids=tuple(q for q in ids if q not in test),
        test_ids=tuple(q for q in ids if q in test),
    )


def base_query_split(
    workload: Workload,
    test_fraction: float = 0.2,
    seed: int = 0,
    split_index: int = 0,
) -> DatasetSplit:
    """Whole families are assigned to either the training or the test set."""
    if not 0.0 < test_fraction < 1.0:
        raise SplitError("test_fraction must lie strictly between 0 and 1")
    rng = np.random.default_rng(seed)
    families = workload.families()
    family_ids = list(families)
    order = rng.permutation(len(family_ids))
    total = len(workload)
    target_test = total * test_fraction
    test_families: set[str] = set()
    test_count = 0
    for index in order:
        family = family_ids[index]
        if test_count >= target_test:
            break
        test_families.add(family)
        test_count += len(families[family])
    if len(test_families) == len(family_ids):
        test_families.pop()
    train, test = [], []
    for query in workload:
        (test if query.family in test_families else train).append(query.query_id)
    return DatasetSplit(
        workload_name=workload.name,
        sampling=SplitSampling.BASE_QUERY,
        split_index=split_index,
        train_ids=tuple(train),
        test_ids=tuple(test),
    )


def generate_split(
    workload: Workload,
    sampling: SplitSampling | str,
    seed: int = 0,
    split_index: int = 0,
    test_fraction: float = 0.2,
) -> DatasetSplit:
    """Generate one split of the requested sampling type."""
    if isinstance(sampling, str):
        sampling = SplitSampling(sampling)
    if sampling is SplitSampling.LEAVE_ONE_OUT:
        return leave_one_out_split(workload, seed=seed, split_index=split_index)
    if sampling is SplitSampling.RANDOM:
        return random_split(
            workload, test_fraction=test_fraction, seed=seed, split_index=split_index
        )
    if sampling is SplitSampling.BASE_QUERY:
        return base_query_split(
            workload, test_fraction=test_fraction, seed=seed, split_index=split_index
        )
    raise SplitError(f"unknown sampling {sampling!r}")


def generate_splits(
    workload: Workload,
    sampling: SplitSampling | str,
    n_splits: int = 3,
    base_seed: int = 0,
    test_fraction: float = 0.2,
) -> list[DatasetSplit]:
    """Generate ``n_splits`` independent splits of one sampling type.

    The paper evaluates three independent splits per sampling strategy and
    shows that results are *not* comparable across splits of the same type —
    precisely why the splits must be fixed and shared across all methods.
    """
    return [
        generate_split(
            workload,
            sampling,
            seed=base_seed + index * 101,
            split_index=index,
            test_fraction=test_fraction,
        )
        for index in range(n_splits)
    ]
