"""The experiment runner: train and evaluate optimizers under equal conditions.

``ExperimentRunner`` is the orchestration layer behind Figures 4, 5 and 6: for
every (method, split) combination it

1. builds a fresh :class:`LQOEnvironment` on the shared database,
2. trains the method on the split's training queries (wall-clock accounted as
   the end-to-end training time of Figure 6),
3. plans every test query, recording the method's inference time and the
   DBMS's planning time, and
4. executes the produced plan under the hot-cache protocol (three executions,
   third one reported), recording timeouts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import Iterable, Sequence, Union

from repro.config import PostgresConfig
from repro.core.metrics import MethodRunResult, QueryTiming
from repro.core.splits import DatasetSplit
from repro.errors import ExperimentError
from repro.lqo.base import LQOEnvironment
from repro.lqo.registry import create_optimizer, method_info
from repro.runtime.fingerprint import stable_hash
from repro.runtime.plan_cache import PlanCache
from repro.runtime.result_store import ResultStore, TaskKey
from repro.storage.database import Database
from repro.storage.registry import resolve_database
from repro.storage.spec import DatabaseSpec
from repro.workloads.workload import BenchmarkQuery, Workload

#: Timeout applied to evaluation executions (milliseconds); generous enough
#: that only pathological plans hit it, mirroring the paper's handling of
#: timed-out queries (e.g. LEON on 26b/32b).
DEFAULT_EVALUATION_TIMEOUT_MS = 60_000.0


@dataclass
class ExperimentConfig:
    """Knobs of the experiment runner (sized for simulation-scale runs)."""

    executions_per_query: int = 3
    evaluation_timeout_ms: float = DEFAULT_EVALUATION_TIMEOUT_MS
    cold_start_per_query: bool = True
    training_runs_per_plan: int = 1
    optimizer_kwargs: dict[str, dict] = field(default_factory=dict)
    seed: int = 0
    #: Replace wall-clock inference/training measurements with deterministic
    #: simulated times.  Required by the parallel runtime: wall clocks depend
    #: on scheduling and GIL contention, simulated times do not, so results
    #: stay byte-identical between serial and parallel execution.
    deterministic_timing: bool = False
    #: Execution-engine kind ("columnar" or "row", see
    #: :data:`repro.config.ENGINE_KINDS`).  The engines are byte-equivalent —
    #: identical results, cardinalities and simulated timings — so this knob
    #: only trades wall-clock speed ("columnar") against the simpler oracle
    #: implementation ("row").  Overridable via the REPRO_ENGINE environment
    #: variable for whole-process experiments.
    engine: str = field(default_factory=lambda: os.environ.get("REPRO_ENGINE", "columnar"))

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)

    def fingerprint(self) -> str:
        """Stable content fingerprint over every experiment knob.

        The ``seed`` is excluded: it identifies the run (and is part of every
        result-store :class:`~repro.runtime.result_store.TaskKey`), not the
        experimental conditions.
        """
        parts = []
        for f in fields(self):
            if f.name == "seed":
                continue
            value = getattr(self, f.name)
            if isinstance(value, dict):
                value = sorted((k, sorted(v.items())) for k, v in value.items())
            parts.append(f"{f.name}={value!r}")
        return stable_hash(";".join(parts))


class ExperimentRunner:
    """Runs methods over dataset splits and collects the paper's timing decomposition."""

    def __init__(
        self,
        database: Union[Database, DatabaseSpec],
        workload: Workload,
        config: PostgresConfig | None = None,
        experiment_config: ExperimentConfig | None = None,
        result_store: ResultStore | None = None,
        plan_cache: PlanCache | None = None,
    ) -> None:
        # A DatabaseSpec is accepted everywhere a Database is: it materializes
        # through the per-process registry, so repeated runners over the same
        # recipe share one build.
        database = resolve_database(database)
        if workload.schema.name != database.schema.name:
            raise ExperimentError(
                "workload and database use different schemas "
                f"({workload.schema.name!r} vs {database.schema.name!r})"
            )
        self.database = database
        self.workload = workload
        self.db_config = config or database.config
        self.config = experiment_config or ExperimentConfig()
        #: Optional resumable store: completed (method, split) runs are loaded
        #: instead of re-executed, and fresh runs are persisted on completion.
        self.result_store = result_store
        #: Optional shared plan cache handed to every environment this runner
        #: builds (hot-cache repetitions and ablations re-plan identical
        #: queries; sharing makes those plans near-free).
        self.plan_cache = plan_cache

    # ------------------------------------------------------------------ plumbing
    def build_environment(self) -> LQOEnvironment:
        """A fresh optimizer environment bound to the shared database."""
        return LQOEnvironment(
            self.database,
            config=self.db_config,
            training_runs_per_plan=self.config.training_runs_per_plan,
            evaluation_runs_per_plan=self.config.executions_per_query,
            seed=self.config.seed,
            deterministic_timing=self.config.deterministic_timing,
            plan_cache=self.plan_cache,
            engine=self.config.engine,
        )

    def context_fingerprint(self) -> str:
        """Fingerprint binding stored results to this exact setup.

        The database participates through its spec fingerprint when it has
        one: the name alone ("imdb") is identical at every scale and data
        seed, and a persistent store shared across multi-scale sweeps must
        never serve a small-scale result as a large-scale one.  Spec-less
        (hand-built) databases fall back to the name, as before.
        """
        database_identity = (
            self.database.spec.fingerprint()
            if self.database.spec is not None
            else self.database.name
        )
        return stable_hash(
            "|".join(
                (
                    self.workload.name,
                    self.database.name,
                    database_identity,
                    self.db_config.fingerprint(),
                    self.config.fingerprint(),
                )
            )
        )

    def task_fingerprint(self, split: DatasetSplit) -> str:
        """Context fingerprint extended with the split's *membership*.

        Two splits may share a name while holding different query sets (e.g.
        ``random-0`` generated under different seeds); folding the membership
        digest in keeps stored results from leaking across them.
        """
        return stable_hash(self.context_fingerprint() + "|" + split.fingerprint())

    def task_key(self, method: str, split: DatasetSplit | str) -> TaskKey:
        """The result-store key of one (method, split) run under this runner."""
        split_name = split if isinstance(split, str) else split.name
        return TaskKey(
            workload=self.workload.name,
            split_name=split_name,
            method=method,
            seed=self.config.seed,
        )

    # ------------------------------------------------------------------ execution
    def run_method(
        self,
        method: str,
        split: DatasetSplit,
        train: bool = True,
    ) -> MethodRunResult:
        """Train (optionally) and evaluate one method on one split.

        With a result store attached, a previously completed run of the same
        (method, split, seed) under the same configuration is loaded from disk
        instead of re-executed, and fresh runs are persisted on completion.
        """
        if self.result_store is None:
            return self._run_method_uncached(method, split, train)
        key = self.task_key(method, split)
        fingerprint = self.task_fingerprint(split)
        result, _ = self.result_store.load_or_run(
            key, lambda: self._run_method_uncached(method, split, train), fingerprint
        )
        return result

    def _run_method_uncached(
        self,
        method: str,
        split: DatasetSplit,
        train: bool = True,
    ) -> MethodRunResult:
        info = method_info(method)
        env = self.build_environment()
        kwargs = self.config.optimizer_kwargs.get(method, {})
        optimizer = create_optimizer(method, env, **kwargs)

        train_queries = split.train_queries(self.workload)
        test_queries = split.test_queries(self.workload)

        if train and optimizer.requires_training:
            report = optimizer.fit(train_queries)
        else:
            report = optimizer.fit([]) if not optimizer.requires_training else None

        result = MethodRunResult(
            method=method,
            split_name=split.name,
            workload_name=self.workload.name,
            training_time_s=report.training_time_s if report else 0.0,
            executed_training_plans=report.executed_plans if report else 0,
        )

        for query in test_queries:
            result.timings.append(self._evaluate_query(optimizer, env, query, info))
        return result

    def _evaluate_query(self, optimizer, env: LQOEnvironment, query: BenchmarkQuery, info) -> QueryTiming:
        planned = optimizer.plan_query(query)
        measured = env.execute_plan(
            query.bound,
            planned.plan,
            runs=self.config.executions_per_query,
            timeout_ms=self.config.evaluation_timeout_ms,
            cold_start=self.config.cold_start_per_query,
        )
        inference_ms = planned.inference_time_ms
        planning_ms = planned.planning_time_ms
        if optimizer.integrates_with_dbms:
            # Methods running inside PostgreSQL (Bao, Lero) report their
            # inference as part of the planning time, as the paper notes for
            # Figure 4's left panel.
            planning_ms += inference_ms
            inference_ms = 0.0
        return QueryTiming(
            query_id=query.query_id,
            method=optimizer.name,
            inference_time_ms=inference_ms,
            planning_time_ms=planning_ms,
            execution_time_ms=measured.reported_ms,
            timed_out=measured.timed_out,
            num_joins=query.num_joins,
            metadata=dict(planned.metadata),
        )

    def run_comparison(
        self,
        methods: Sequence[str],
        splits: Iterable[DatasetSplit],
    ) -> list[MethodRunResult]:
        """Run every method on every split (the Figure 4/5 experiment grid)."""
        results: list[MethodRunResult] = []
        for split in splits:
            for method in methods:
                results.append(self.run_method(method, split))
        return results

    # ------------------------------------------------------------------ baselines
    def run_postgres_only(self, queries: Sequence[BenchmarkQuery] | None = None) -> MethodRunResult:
        """Evaluate the PostgreSQL baseline on an arbitrary query list (no split)."""
        env = self.build_environment()
        optimizer = create_optimizer("postgres", env)
        optimizer.fit([])
        queries = list(queries) if queries is not None else self.workload.queries
        result = MethodRunResult(
            method="postgres",
            split_name="full-workload",
            workload_name=self.workload.name,
        )
        info = method_info("postgres")
        for query in queries:
            result.timings.append(self._evaluate_query(optimizer, env, query, info))
        return result
