"""Plain-text and Markdown rendering of result tables.

Every experiment driver produces lists of dictionaries (one per row); these
helpers render them in aligned plain text (for terminals and the
``*_output.txt`` artefacts) or Markdown (for EXPERIMENTS.md style reports).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.result_store import ResultStore


def _stringify(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def _columns(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None) -> list[str]:
    if columns is not None:
        return list(columns)
    seen: list[str] = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    return seen


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = _columns(rows, columns)
    rendered = [[_stringify(row.get(col)) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(cols))))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def to_markdown(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as a Markdown table."""
    if not rows:
        return f"### {title}\n\n(no rows)" if title else "(no rows)"
    cols = _columns(rows, columns)
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(cols) + " |")
    lines.append("|" + "|".join(["---"] * len(cols)) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row.get(col)) for col in cols) + " |")
    return "\n".join(lines)


def format_key_values(values: Mapping[str, object], title: str | None = None) -> str:
    """Render a flat mapping as aligned ``key: value`` lines."""
    lines = [title] if title else []
    if not values:
        lines.append("(empty)")
        return "\n".join(lines)
    width = max(len(str(key)) for key in values)
    for key, value in values.items():
        lines.append(f"{str(key).ljust(width)} : {_stringify(value)}")
    return "\n".join(lines)


def summary_rows_from_store(store: "ResultStore") -> list[dict[str, object]]:
    """Summary rows (Figure 4/5 table form) of every run persisted in a store.

    Lets a report be regenerated from a (possibly partially) completed sweep
    without re-running anything — the reporting half of the resume story.
    """
    from repro.core.metrics import MethodRunResult

    rows: list[dict[str, object]] = []
    for path in store.completed_files():
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict) or "result" not in payload:
            continue  # artifacts and foreign JSON files are not method runs
        rows.append(MethodRunResult.from_dict(payload["result"]).summary_row())
    return rows


def store_report(store: "ResultStore", title: str | None = None) -> str:
    """Plain-text table over every method run persisted in ``store``."""
    return format_table(summary_rows_from_store(store), title=title)


def bullet_list(items: Iterable[object], title: str | None = None) -> str:
    """Render items as a plain-text bullet list."""
    lines = [title] if title else []
    for item in items:
        lines.append(f"  - {item}")
    if title and len(lines) == 1:
        lines.append("  (none)")
    return "\n".join(lines)
