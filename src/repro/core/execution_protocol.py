"""The measurement protocol: repeated executions under a controlled cache state.

Section 7.3 of the paper argues for a *hot cache* protocol: execute the same
query ``k`` times in a row and report the k-th execution; Section 8.6 / Figure
7 determine empirically that ``k = 3`` balances robustness and cost (a ~15%
drop from the 1st to the 2nd execution, ~1% from the 2nd to the 3rd, then
flat).  :class:`ExecutionProtocol` implements that protocol and the
robustness study that justifies it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.executor.engine import ExecutionEngine, create_engine
from repro.optimizer.planner import Planner
from repro.plans.hints import NO_HINTS, HintSet
from repro.plans.physical import PlanNode
from repro.sql.binder import BoundQuery
from repro.storage.database import Database
from repro.storage.registry import resolve_database
from repro.storage.spec import DatabaseSpec
from repro.workloads.workload import BenchmarkQuery, Workload

#: The paper's recommended number of repeated executions.
DEFAULT_EXECUTIONS = 3


@dataclass
class MeasuredQuery:
    """Timings of one query measured under the protocol."""

    query_id: str
    planning_time_ms: float
    execution_times_ms: list[float]
    timed_out: bool = False

    @property
    def reported_execution_ms(self) -> float:
        """The k-th (last) execution — the number the framework reports."""
        return self.execution_times_ms[-1]

    @property
    def first_execution_ms(self) -> float:
        return self.execution_times_ms[0]


@dataclass
class RobustnessMeasurement:
    """Successive-execution analysis of one query (Figure 7 raw data)."""

    query_id: str
    execution_times_ms: list[float]

    def normalized_differences(self) -> list[float]:
        """Relative difference between the k-th and (k+1)-th execution,
        normalized by the first execution (the paper's Figure 7 metric)."""
        times = self.execution_times_ms
        if len(times) < 2 or times[0] <= 0:
            return []
        return [(times[k] - times[k + 1]) / times[0] for k in range(len(times) - 1)]


class ExecutionProtocol:
    """Plans and measures queries under the paper's measurement protocol."""

    def __init__(
        self,
        database: "Database | DatabaseSpec",
        planner: Planner | None = None,
        engine: ExecutionEngine | str | None = None,
        executions_per_query: int = DEFAULT_EXECUTIONS,
        cold_start: bool = True,
    ) -> None:
        if executions_per_query < 1:
            raise ExperimentError("executions_per_query must be at least 1")
        database = resolve_database(database)
        self.database = database
        self.planner = planner or Planner(database)
        # ``engine`` accepts a ready-made engine instance or a kind string
        # from ENGINE_KINDS ("columnar"/"row"); the default is the columnar
        # engine, which is byte-equivalent to the row oracle but faster.
        if engine is None or isinstance(engine, str):
            self.engine = create_engine(
                database, self.planner.config, kind=engine or "columnar"
            )
        else:
            self.engine = engine
        self.executions_per_query = executions_per_query
        self.cold_start = cold_start

    # ------------------------------------------------------------------ measuring
    def measure_plan(
        self,
        query: BoundQuery,
        plan: PlanNode,
        planning_time_ms: float = 0.0,
        executions: int | None = None,
        timeout_ms: float | None = None,
    ) -> MeasuredQuery:
        """Execute an already-built plan ``executions`` times and record all runs."""
        runs = executions or self.executions_per_query
        if self.cold_start:
            self.database.drop_caches()
        times: list[float] = []
        timed_out = False
        for _ in range(runs):
            result = self.engine.execute(query, plan, timeout_ms=timeout_ms)
            times.append(result.execution_time_ms)
            if result.timed_out:
                timed_out = True
                break
        return MeasuredQuery(
            query_id=query.name or "",
            planning_time_ms=planning_time_ms,
            execution_times_ms=times,
            timed_out=timed_out,
        )

    def measure_query(
        self,
        query: BenchmarkQuery,
        hints: HintSet = NO_HINTS,
        executions: int | None = None,
        timeout_ms: float | None = None,
    ) -> MeasuredQuery:
        """Plan a query with the classical optimizer (optionally hinted) and measure it."""
        planned = self.planner.plan_with_info(query.bound, hints)
        measured = self.measure_plan(
            query.bound,
            planned.plan,
            planning_time_ms=planned.planning_time_ms,
            executions=executions,
            timeout_ms=timeout_ms,
        )
        measured.query_id = query.query_id
        return measured

    # ------------------------------------------------------------------ robustness
    def robustness_study(
        self,
        workload: Workload,
        executions: int = 50,
        query_ids: list[str] | None = None,
    ) -> list[RobustnessMeasurement]:
        """Execute every query ``executions`` times in succession (Section 8.6).

        Queries are executed in order (1a, 1a, ..., 1a, 1b, 1b, ...) exactly as
        the paper describes, so each query's first run reflects whatever cache
        state the previous query left behind plus its own cold pages.
        """
        queries = (
            [workload.by_id(qid) for qid in query_ids]
            if query_ids is not None
            else workload.queries
        )
        measurements: list[RobustnessMeasurement] = []
        self.database.drop_caches()
        for query in queries:
            planned = self.planner.plan_with_info(query.bound)
            times = []
            for _ in range(executions):
                result = self.engine.execute(query.bound, planned.plan)
                times.append(result.execution_time_ms)
            measurements.append(
                RobustnessMeasurement(query_id=query.query_id, execution_times_ms=times)
            )
        return measurements

    @staticmethod
    def aggregate_robustness(
        measurements: list[RobustnessMeasurement], max_k: int = 10
    ) -> dict[int, dict[str, float]]:
        """Aggregate Figure 7: distribution of normalized differences per k."""
        per_k: dict[int, list[float]] = {}
        for measurement in measurements:
            for k, diff in enumerate(measurement.normalized_differences(), start=1):
                if k > max_k:
                    break
                per_k.setdefault(k, []).append(diff)
        out: dict[int, dict[str, float]] = {}
        for k, values in sorted(per_k.items()):
            arr = np.asarray(values)
            out[k] = {
                "mean": float(arr.mean()),
                "median": float(np.median(arr)),
                "p25": float(np.quantile(arr, 0.25)),
                "p75": float(np.quantile(arr, 0.75)),
                "n": int(arr.size),
            }
        return out
