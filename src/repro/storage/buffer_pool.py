"""Page-level buffer pool with LRU eviction.

The buffer pool is the mechanism behind the paper's cold-vs-hot cache
discussion (Sections 3.3.2, 7.3, 8.6): the first execution of a query reads
most pages "from disk", subsequent executions hit the pool and are faster.
The executor asks the pool to *access* page ranges of tables and indexes and
receives back how many of those accesses were hits vs. misses, which the
timing model converts into simulated milliseconds.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class BufferPoolStats:
    """Cumulative hit/miss counters of a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


@dataclass
class PageAccessResult:
    """Outcome of accessing a contiguous range of pages of one relation."""

    requested: int
    hits: int
    misses: int

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requested if self.requested else 1.0


class BufferPool:
    """An LRU cache of ``(relation, page_number)`` keys with a fixed capacity.

    The pool does not store page *contents* — data always lives in the
    columnar arrays — it only tracks which pages would be resident so that the
    timing model can distinguish cached from uncached reads.
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool capacity must be at least one page")
        self.capacity_pages = int(capacity_pages)
        self._pages: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.stats = BufferPoolStats()

    # -- basic properties ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._pages)

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def contains(self, relation: str, page: int) -> bool:
        return (relation, page) in self._pages

    def resident_pages_of(self, relation: str) -> int:
        return sum(1 for rel, _ in self._pages if rel == relation)

    # -- access --------------------------------------------------------------
    def access_pages(
        self,
        relation: str,
        n_pages: int,
        start_page: int = 0,
        sequential: bool = True,
    ) -> PageAccessResult:
        """Access ``n_pages`` pages of ``relation`` and update residency.

        ``sequential`` is informational (random accesses are charged a higher
        per-miss cost by the timing model); residency tracking is identical.
        """
        n_pages = max(0, int(n_pages))
        hits = 0
        misses = 0
        for page in range(start_page, start_page + n_pages):
            key = (relation, page)
            if key in self._pages:
                hits += 1
                self._pages.move_to_end(key)
            else:
                misses += 1
                self._pages[key] = None
                if len(self._pages) > self.capacity_pages:
                    self._pages.popitem(last=False)
                    self.stats.evictions += 1
        self.stats.hits += hits
        self.stats.misses += misses
        return PageAccessResult(requested=n_pages, hits=hits, misses=misses)

    def access_fraction(
        self, relation: str, total_pages: int, fraction: float, sequential: bool = True
    ) -> PageAccessResult:
        """Access a fraction of a relation's pages (used by index/bitmap scans)."""
        fraction = min(max(fraction, 0.0), 1.0)
        n_pages = int(round(total_pages * fraction))
        return self.access_pages(relation, n_pages, sequential=sequential)

    # -- management ------------------------------------------------------------
    def invalidate(self, relation: str | None = None) -> None:
        """Drop cached pages (all pages, or only those of ``relation``).

        This is how the benchmarking framework produces a *cold cache* before
        a measurement (Section 7.3).
        """
        if relation is None:
            self._pages.clear()
        else:
            for key in [k for k in self._pages if k[0] == relation]:
                del self._pages[key]

    def warm(self, relation: str, n_pages: int) -> None:
        """Pre-load pages of a relation without counting hits or misses."""
        for page in range(int(n_pages)):
            key = (relation, page)
            self._pages[key] = None
            self._pages.move_to_end(key)
            if len(self._pages) > self.capacity_pages:
                self._pages.popitem(last=False)

    def snapshot(self) -> dict[str, int]:
        """Mapping of relation name to number of resident pages."""
        out: dict[str, int] = {}
        for rel, _ in self._pages:
            out[rel] = out.get(rel, 0) + 1
        return out
