"""Per-process registry of materialized databases, keyed by spec fingerprint.

The registry is the receiving end of spec-based dispatch: a worker process
handed a :class:`~repro.storage.spec.DatabaseSpec` asks its process-local
registry for the database and gets either the already-materialized instance
(zero-copy reuse — every task of a grid shares one build) or a freshly built
one.  Concurrent requests for the same spec are serialized per fingerprint, so
a database is built *at most once* per process no matter how many threads race
on it, while different specs build concurrently.

Capacity is bounded: least-recently-used databases are evicted once
``max_entries`` distinct specs have been materialized, which keeps multi-scale
sweeps (e.g. the covariate-shift study building IMDB and IMDB-50% at several
scales) from accumulating every instance ever touched.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.errors import StorageError
from repro.storage.spec import DatabaseSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.database import Database

#: Environment knob for the process registry capacity.
REGISTRY_ENTRIES_ENV = "REPRO_DB_REGISTRY_ENTRIES"

#: Default number of distinct materialized databases kept per process.
DEFAULT_REGISTRY_ENTRIES = 8


@dataclass
class RegistryStats:
    """Build/reuse accounting of one registry."""

    hits: int = 0
    builds: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.builds

    def describe(self) -> str:
        return f"{self.requests} requests: {self.hits} reused, {self.builds} built, {self.evictions} evicted"


class DatabaseRegistry:
    """Spec-fingerprint -> :class:`Database` cache with build-once locking."""

    def __init__(self, max_entries: int = DEFAULT_REGISTRY_ENTRIES) -> None:
        if max_entries < 1:
            raise StorageError("DatabaseRegistry needs room for at least one database")
        self.max_entries = max_entries
        self.stats = RegistryStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Database]" = OrderedDict()
        #: One lock per in-flight fingerprint so concurrent get() calls for the
        #: same spec build once while different specs build in parallel.
        self._building: dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------ access
    def get(self, spec: DatabaseSpec) -> "Database":
        """The materialized database for ``spec`` (built on first request)."""
        fingerprint = spec.fingerprint()
        with self._lock:
            cached = self._entries.get(fingerprint)
            if cached is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.hits += 1
                return cached
            build_lock = self._building.setdefault(fingerprint, threading.Lock())
        with build_lock:
            # Double-check: the thread that held the lock first has built it.
            with self._lock:
                cached = self._entries.get(fingerprint)
                if cached is not None:
                    self._entries.move_to_end(fingerprint)
                    self.stats.hits += 1
                    return cached
            database = spec.build()
            database.spec = spec
            with self._lock:
                self.stats.builds += 1
                self._entries[fingerprint] = database
                self._entries.move_to_end(fingerprint)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
                self._building.pop(fingerprint, None)
            return database

    def contains(self, spec: DatabaseSpec) -> bool:
        with self._lock:
            return spec.fingerprint() in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> int:
        """Drop every materialized database; returns the number removed."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            return removed

    def describe(self) -> str:
        with self._lock:
            held = len(self._entries)
        return f"DatabaseRegistry({held}/{self.max_entries} held, {self.stats.describe()})"


# ---------------------------------------------------------------------------
# The per-process singleton used by spec-based dispatch.
# ---------------------------------------------------------------------------

_PROCESS_REGISTRY: DatabaseRegistry | None = None
_PROCESS_REGISTRY_LOCK = threading.Lock()


def get_process_registry() -> DatabaseRegistry:
    """The process-wide registry (created lazily, capacity from the environment).

    Forked worker processes inherit the parent's registry contents — already
    materialized databases are reused via copy-on-write without rebuild or
    pickling; spawned workers start empty and build on first use.
    """
    global _PROCESS_REGISTRY
    if _PROCESS_REGISTRY is None:
        with _PROCESS_REGISTRY_LOCK:
            if _PROCESS_REGISTRY is None:
                capacity = int(os.environ.get(REGISTRY_ENTRIES_ENV, DEFAULT_REGISTRY_ENTRIES))
                _PROCESS_REGISTRY = DatabaseRegistry(max_entries=max(capacity, 1))
    return _PROCESS_REGISTRY


def reset_process_registry() -> None:
    """Drop the process registry (tests and long-lived sessions only)."""
    global _PROCESS_REGISTRY
    with _PROCESS_REGISTRY_LOCK:
        _PROCESS_REGISTRY = None


def resolve_database(source: Union["Database", DatabaseSpec]) -> "Database":
    """Materialize ``source`` if it is a spec; pass databases through."""
    if isinstance(source, DatabaseSpec):
        return get_process_registry().get(source)
    return source
