"""Columnar storage, ordered indexes and the buffer pool of the simulated DBMS.

The storage layer keeps every table as dictionary-encoded numpy columns
(:class:`TableData`), maintains ordered per-column indexes for index scans and
index nested-loop joins, and models a page-level buffer pool
(:class:`BufferPool`) whose hit/miss behaviour drives the cold-vs-hot cache
latency effects studied in Sections 3.3.2, 7.3 and 8.6 of the paper.
"""

from repro.storage.table_data import TableData
from repro.storage.buffer_pool import BufferPool, BufferPoolStats
from repro.storage.index import OrderedIndex
from repro.storage.database import Database

__all__ = [
    "TableData",
    "BufferPool",
    "BufferPoolStats",
    "OrderedIndex",
    "Database",
]
