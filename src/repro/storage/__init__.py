"""Columnar storage, ordered indexes and the buffer pool of the simulated DBMS.

The storage layer keeps every table as dictionary-encoded numpy columns
(:class:`TableData`), maintains ordered per-column indexes for index scans and
index nested-loop joins, and models a page-level buffer pool
(:class:`BufferPool`) whose hit/miss behaviour drives the cold-vs-hot cache
latency effects studied in Sections 3.3.2, 7.3 and 8.6 of the paper.

Databases themselves are addressable by *recipe*: a :class:`DatabaseSpec`
(generator id + scale + seed + configuration) deterministically rebuilds an
instance, and the per-process :class:`DatabaseRegistry` memoizes those builds
so spec-based dispatch across worker processes never re-pickles table data.
"""

from repro.storage.table_data import TableData
from repro.storage.buffer_pool import BufferPool, BufferPoolStats
from repro.storage.index import OrderedIndex
from repro.storage.database import Database
from repro.storage.spec import DatabaseSpec
from repro.storage.registry import (
    DatabaseRegistry,
    RegistryStats,
    get_process_registry,
    reset_process_registry,
    resolve_database,
)

__all__ = [
    "TableData",
    "BufferPool",
    "BufferPoolStats",
    "OrderedIndex",
    "Database",
    "DatabaseSpec",
    "DatabaseRegistry",
    "RegistryStats",
    "get_process_registry",
    "reset_process_registry",
    "resolve_database",
]
