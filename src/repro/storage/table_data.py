"""Columnar, dictionary-encoded table storage.

Each table is stored as a mapping ``column name -> numpy int64 array``.  Text
columns are dictionary-encoded: the array holds codes into a per-column list
of strings.  NULLs are stored as :data:`repro.catalog.statistics.NULL_SENTINEL`.

The representation is intentionally simple — the executor operates on whole
columns with vectorized numpy operations, and the cost/timing model charges
simulated I/O based on page counts derived from row counts and widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.catalog.schema import Table
from repro.catalog.statistics import NULL_SENTINEL
from repro.config import PAGE_SIZE_BYTES
from repro.errors import StorageError


@dataclass
class TableData:
    """In-memory contents of one table.

    Attributes:
        table: the schema definition this data conforms to.
        columns: mapping of column name to an int64 numpy array of codes.
        dictionaries: mapping of text column name to the list of strings such
            that ``dictionaries[col][code]`` is the original value.
    """

    table: Table
    columns: dict[str, np.ndarray]
    dictionaries: dict[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {name: len(col) for name, col in self.columns.items()}
        if lengths:
            counts = set(lengths.values())
            if len(counts) != 1:
                raise StorageError(
                    f"inconsistent column lengths in table {self.table.name!r}: {lengths}"
                )
        for name in self.columns:
            if not self.table.has_column(name):
                raise StorageError(
                    f"data column {name!r} is not defined in table {self.table.name!r}"
                )
        for name, col in self.columns.items():
            if col.dtype != np.int64:
                self.columns[name] = col.astype(np.int64)

    # -- basic geometry ------------------------------------------------------
    @property
    def name(self) -> str:
        """Name of the table this data belongs to."""
        return self.table.name

    @property
    def row_count(self) -> int:
        """Number of rows stored (0 for a table without materialized columns)."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def page_count(self) -> int:
        """Number of 8 KB heap pages the table would occupy on disk."""
        rows_per_page = max(1, PAGE_SIZE_BYTES // max(self.table.row_width_bytes, 1))
        return max(1, -(-self.row_count // rows_per_page))

    # -- column access --------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Full code array of one column (the canonical columnar accessor)."""
        try:
            return self.columns[name]
        except KeyError as exc:
            raise StorageError(
                f"table {self.table.name!r} has no materialized column {name!r}"
            ) from exc

    def gather(self, name: str, row_ids: np.ndarray) -> np.ndarray:
        """Codes of ``column[row_ids]`` — one vectorized gather.

        This is the batch accessor the executor uses to materialize a column
        for an intermediate result: ``row_ids`` may repeat and reorder rows
        freely (as join results do).
        """
        return self.column(name)[row_ids]

    def has_column(self, name: str) -> bool:
        """Whether ``name`` is a materialized column of this table."""
        return name in self.columns

    def column_names(self) -> list[str]:
        """Names of every materialized column, in storage order."""
        return list(self.columns)

    def dictionary(self, name: str) -> list[str]:
        """Return the string dictionary of a text column (empty for numerics)."""
        return self.dictionaries.get(name, [])

    def decode(self, name: str, code: int) -> object:
        """Decode a stored code back to its user-facing value."""
        if code == NULL_SENTINEL:
            return None
        dictionary = self.dictionaries.get(name)
        if dictionary is not None:
            if 0 <= code < len(dictionary):
                return dictionary[code]
            return None
        return int(code)

    def decode_many(self, name: str, codes: np.ndarray) -> list[object]:
        """Decode a whole code array back to user-facing values in one pass.

        Element-for-element identical to calling :meth:`decode` in a loop
        (``None`` for NULL sentinels and out-of-dictionary codes, dictionary
        strings for text columns, plain ``int`` otherwise) but works off a
        single ``tolist()`` conversion instead of per-element numpy indexing.
        """
        values = np.asarray(codes, dtype=np.int64).tolist()
        dictionary = self.dictionaries.get(name)
        if dictionary is None:
            return [None if code == NULL_SENTINEL else code for code in values]
        size = len(dictionary)
        return [dictionary[code] if 0 <= code < size else None for code in values]

    def encode(self, name: str, value: object) -> int:
        """Encode a user-facing literal into the stored code space.

        Unknown text literals encode to ``-1`` which matches no row — the same
        observable behaviour as filtering on a value not present in the data.
        """
        if value is None:
            return NULL_SENTINEL
        dictionary = self.dictionaries.get(name)
        if dictionary is not None and isinstance(value, str):
            try:
                return dictionary.index(value)
            except ValueError:
                return -1
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, float):
            return int(round(value))
        raise StorageError(
            f"cannot encode literal {value!r} for column {self.table.name}.{name}"
        )

    def codes_matching_pattern(self, name: str, pattern: str) -> np.ndarray:
        """Dictionary codes whose string matches a SQL ``LIKE`` pattern."""
        dictionary = self.dictionaries.get(name)
        if dictionary is None:
            return np.empty(0, dtype=np.int64)
        needle = pattern.replace("%", "")
        starts = pattern.endswith("%") and not pattern.startswith("%")
        ends = pattern.startswith("%") and not pattern.endswith("%")
        matches = []
        for code, value in enumerate(dictionary):
            if starts:
                ok = value.startswith(needle)
            elif ends:
                ok = value.endswith(needle)
            else:
                ok = needle in value
            if ok:
                matches.append(code)
        return np.asarray(matches, dtype=np.int64)

    # -- mutation -------------------------------------------------------------
    def select_rows(self, row_ids: np.ndarray) -> "TableData":
        """Return a new :class:`TableData` containing only ``row_ids``."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        new_columns = {name: col[row_ids] for name, col in self.columns.items()}
        return TableData(
            table=self.table,
            columns=new_columns,
            dictionaries={k: list(v) for k, v in self.dictionaries.items()},
        )

    def sample_rows(self, fraction: float, seed: int = 0) -> "TableData":
        """Bernoulli-sample rows (used to build IMDB-50% for covariate shift)."""
        if not 0.0 < fraction <= 1.0:
            raise StorageError("sample fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        mask = rng.random(self.row_count) < fraction
        return self.select_rows(np.nonzero(mask)[0])

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the stored columns."""
        return int(sum(col.nbytes for col in self.columns.values()))


def build_table_data(
    table: Table,
    columns: Mapping[str, Sequence[int] | np.ndarray],
    dictionaries: Mapping[str, Iterable[str]] | None = None,
) -> TableData:
    """Convenience constructor that coerces python sequences into numpy arrays."""
    np_columns = {
        name: np.asarray(values, dtype=np.int64) for name, values in columns.items()
    }
    dicts = {name: list(values) for name, values in (dictionaries or {}).items()}
    return TableData(table=table, columns=np_columns, dictionaries=dicts)
