"""The :class:`DatabaseSpec`: a cheaply picklable recipe for a :class:`Database`.

A spec captures everything needed to *deterministically* rebuild a database —
the registered generator id, the scale factor, the data seed, the DBMS
configuration and any extra generator parameters — in a value object a few
hundred bytes in size.  It is the unit of dispatch of the process-pool
experiment runtime: instead of re-pickling the whole in-memory database for
every task (cost growing with database scale), workers receive the spec and
rebuild or reuse the database through their per-process
:class:`~repro.storage.registry.DatabaseRegistry`.

Specs are content-addressed: :meth:`DatabaseSpec.fingerprint` is a SHA-256
digest over every field, stable across processes and interpreter restarts
(``hash()`` is per-process salted and is never used).  Equal specs therefore
map to the same registry slot in every worker.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Mapping

from repro.config import PostgresConfig
from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (catalog imports storage)
    from repro.storage.database import Database

#: Parameter value types whose ``repr`` is stable enough to fingerprint.
_SCALAR_TYPES = (bool, int, float, str, bytes, type(None))


def _freeze_params(params: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Canonical (sorted, tuple-of-pairs) rendering of generator kwargs."""
    frozen: list[tuple[str, Any]] = []
    for name in sorted(params):
        value = params[name]
        if isinstance(value, (list, tuple)):
            value = tuple(value)
            if not all(isinstance(item, _SCALAR_TYPES) for item in value):
                raise StorageError(
                    f"spec parameter {name!r} must hold scalars, got {value!r}"
                )
        elif not isinstance(value, _SCALAR_TYPES):
            raise StorageError(
                f"spec parameter {name!r} must be a picklable scalar, got {type(value).__name__}"
            )
        frozen.append((name, value))
    return tuple(frozen)


@dataclass(frozen=True)
class DatabaseSpec:
    """Recipe for deterministically (re)building one database instance.

    Attributes:
        generator: id of a factory registered in :mod:`repro.catalog.factories`
            (``"imdb"``, ``"stack"``, ``"imdb-half"``, ``"synthetic"``, ...).
        scale: generator scale factor (row counts grow roughly linearly).
        seed: seed of the synthetic data generator.
        config: DBMS configuration of the built instance; ``None`` uses the
            generator's default.
        params: extra generator keyword arguments as a sorted tuple of
            ``(name, value)`` pairs (use :meth:`create` to pass a dict).
    """

    generator: str
    scale: float = 1.0
    seed: int = 0
    config: PostgresConfig | None = None
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        generator: str,
        scale: float = 1.0,
        seed: int = 0,
        config: PostgresConfig | None = None,
        **params: Any,
    ) -> "DatabaseSpec":
        """Build a spec, canonicalizing extra generator parameters."""
        return cls(
            generator=generator,
            scale=float(scale),
            seed=int(seed),
            config=config,
            params=_freeze_params(params),
        )

    def __post_init__(self) -> None:
        if not self.generator:
            raise StorageError("DatabaseSpec.generator must be a non-empty id")
        if self.scale <= 0:
            raise StorageError(f"DatabaseSpec.scale must be > 0, got {self.scale}")

    # ------------------------------------------------------------------ identity
    def fingerprint(self) -> str:
        """Stable content fingerprint over every field.

        Two equal specs produce the same fingerprint in any process; changing
        any field (generator, scale, seed, any configuration knob, any extra
        parameter) produces a different one.  The per-process registry and the
        result-store context fingerprints key on this digest.
        """
        config_part = self.config.fingerprint() if self.config is not None else "default"
        payload = "|".join(
            (
                f"generator:{self.generator}",
                f"scale:{self.scale!r}",
                f"seed:{self.seed}",
                f"config:{config_part}",
                "params:" + ";".join(f"{k}={v!r}" for k, v in self.params),
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def params_dict(self) -> dict[str, Any]:
        """Extra generator parameters as a plain keyword dictionary."""
        return {name: value for name, value in self.params}

    # ------------------------------------------------------------------ variants
    def with_config(self, config: PostgresConfig | None) -> "DatabaseSpec":
        """The same recipe under a different DBMS configuration."""
        return replace(self, config=config)

    def with_scale(self, scale: float) -> "DatabaseSpec":
        return replace(self, scale=float(scale))

    def with_seed(self, seed: int) -> "DatabaseSpec":
        return replace(self, seed=int(seed))

    # ------------------------------------------------------------------ building
    def build(self) -> "Database":
        """Materialize a fresh database from this spec (no memoization).

        Most callers should go through
        :func:`repro.storage.registry.get_process_registry` instead, which
        builds each spec at most once per process.
        """
        # Imported lazily: the catalog generators import repro.storage.database,
        # so a module-level import here would be circular.
        from repro.catalog.factories import build_from_spec

        return build_from_spec(self)

    def describe(self) -> str:
        extras = ", ".join(f"{k}={v!r}" for k, v in self.params)
        config_part = "default-config" if self.config is None else f"config:{self.config.fingerprint()}"
        parts = [f"{self.generator} scale={self.scale:g} seed={self.seed}", config_part]
        if extras:
            parts.append(extras)
        return f"DatabaseSpec({', '.join(parts)})"
