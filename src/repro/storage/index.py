"""Ordered single-column indexes (the simulator's B-trees).

An :class:`OrderedIndex` stores the column values in sorted order together
with the row ids that produced them, allowing

* point lookups (``column = value``) in ``O(log n)``,
* range lookups (``column < value`` etc.),
* index nested-loop probes from a join,
* ordered traversal for merge joins and index-only scans.

Page accounting mirrors a shallow B-tree: a lookup touches ``height`` index
pages plus the heap pages of the matching rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import StorageError

#: Number of index entries that fit on one simulated index page.
INDEX_ENTRIES_PER_PAGE = 256


def ragged_ranges(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(lo[i], hi[i])`` for every i, fully vectorized.

    This is the expansion step shared by sort-probe joins and batched index
    probes: ``lo``/``hi`` are per-key ``searchsorted`` bounds into a sorted
    array and the result enumerates every matching offset, grouped by key in
    key order — byte-identical to the naive per-key ``np.arange`` loop.
    """
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Each output element is lo[key] + (position within its key's run).
    cumulative = np.cumsum(counts)
    run_starts = cumulative - counts
    return np.arange(total, dtype=np.int64) + np.repeat(lo - run_starts, counts)


@dataclass
class IndexLookupResult:
    """Row ids returned by an index lookup plus the pages touched to get them."""

    row_ids: np.ndarray
    index_pages: int

    @property
    def count(self) -> int:
        return int(self.row_ids.size)


class OrderedIndex:
    """A sorted-array index over a single integer-coded column."""

    def __init__(self, table: str, column: str, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.int64)
        self.table = table
        self.column = column
        self.name = f"idx_{table}_{column}"
        order = np.argsort(values, kind="stable")
        self._sorted_values = values[order]
        self._row_ids = order.astype(np.int64)
        self.entry_count = int(values.size)

    # -- geometry --------------------------------------------------------------
    @property
    def page_count(self) -> int:
        """Number of simulated index pages (leaf level)."""
        return max(1, -(-self.entry_count // INDEX_ENTRIES_PER_PAGE))

    @property
    def height(self) -> int:
        """Depth of the simulated B-tree (root to leaf)."""
        if self.entry_count <= 1:
            return 1
        return max(1, int(math.ceil(math.log(self.entry_count, INDEX_ENTRIES_PER_PAGE))))

    # -- lookups ----------------------------------------------------------------
    def lookup_eq(self, value: int) -> IndexLookupResult:
        """Row ids where ``column == value``."""
        lo = int(np.searchsorted(self._sorted_values, value, side="left"))
        hi = int(np.searchsorted(self._sorted_values, value, side="right"))
        rows = self._row_ids[lo:hi]
        leaf_pages = max(1, -(-(hi - lo) // INDEX_ENTRIES_PER_PAGE))
        return IndexLookupResult(row_ids=rows, index_pages=self.height + leaf_pages - 1)

    def lookup_in(self, values: np.ndarray) -> IndexLookupResult:
        """Row ids where ``column`` is any of ``values`` (distinct probes)."""
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return IndexLookupResult(row_ids=np.empty(0, dtype=np.int64), index_pages=0)
        pieces = []
        pages = 0
        for value in np.unique(values):
            result = self.lookup_eq(int(value))
            pieces.append(result.row_ids)
            pages += result.index_pages
        rows = np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)
        return IndexLookupResult(row_ids=rows, index_pages=pages)

    def lookup_range(
        self,
        low: int | None = None,
        high: int | None = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> IndexLookupResult:
        """Row ids where ``low <= column <= high`` (bounds optional)."""
        if low is None and high is None:
            raise StorageError("range lookup requires at least one bound")
        lo_idx = 0
        hi_idx = self.entry_count
        if low is not None:
            side = "left" if include_low else "right"
            lo_idx = int(np.searchsorted(self._sorted_values, low, side=side))
        if high is not None:
            side = "right" if include_high else "left"
            hi_idx = int(np.searchsorted(self._sorted_values, high, side=side))
        hi_idx = max(hi_idx, lo_idx)
        rows = self._row_ids[lo_idx:hi_idx]
        leaf_pages = max(1, -(-(hi_idx - lo_idx) // INDEX_ENTRIES_PER_PAGE))
        return IndexLookupResult(row_ids=rows, index_pages=self.height + leaf_pages - 1)

    def probe_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
        """Vectorized index nested-loop probe.

        For every key in ``keys`` find all matching row ids.  Returns
        ``(probe_positions, matched_row_ids, index_pages)`` where
        ``probe_positions[i]`` is the position in ``keys`` that produced
        ``matched_row_ids[i]``.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0 or self.entry_count == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, 0
        lo = np.searchsorted(self._sorted_values, keys, side="left")
        hi = np.searchsorted(self._sorted_values, keys, side="right")
        counts = hi - lo
        total = int(counts.sum())
        probe_positions = np.repeat(np.arange(keys.size, dtype=np.int64), counts)
        if total:
            matched = self._row_ids[ragged_ranges(lo, hi)]
        else:
            matched = np.empty(0, dtype=np.int64)
        index_pages = int(keys.size) * self.height
        return probe_positions, matched, index_pages

    def sorted_row_ids(self) -> np.ndarray:
        """Row ids ordered by the indexed column (for merge joins)."""
        return self._row_ids.copy()

    def sorted_values(self) -> np.ndarray:
        return self._sorted_values.copy()
