"""The :class:`Database` container: schema + data + statistics + buffer pool.

A :class:`Database` is the unit every other subsystem operates on: the
planner reads its statistics, the executor reads its columns and charges its
buffer pool, the covariate-shift experiment derives a down-sampled copy of it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.catalog.schema import Schema
from repro.catalog.statistics import TableStatistics, analyze_table
from repro.config import PostgresConfig, SIMULATION_CONFIG
from repro.errors import CatalogError, StorageError
from repro.storage.buffer_pool import BufferPool
from repro.storage.index import OrderedIndex
from repro.storage.table_data import TableData

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.spec import DatabaseSpec


class Database:
    """A fully materialized simulated database instance."""

    def __init__(
        self,
        schema: Schema,
        tables: Mapping[str, TableData],
        config: PostgresConfig | None = None,
        name: str | None = None,
    ) -> None:
        self.schema = schema
        self.name = name or schema.name
        self.config = config or SIMULATION_CONFIG
        #: The spec this instance was built from, when it came out of a
        #: registered factory (see :mod:`repro.catalog.factories`).  Carrying
        #: it lets the runtime ship the spec instead of the database when
        #: fanning tasks out to worker processes.
        self.spec: "DatabaseSpec | None" = None
        self._tables: dict[str, TableData] = {}
        for tname, data in tables.items():
            if not schema.has_table(tname):
                raise StorageError(f"data provided for unknown table {tname!r}")
            self._tables[tname] = data
        missing = set(schema.table_names()) - set(self._tables)
        if missing:
            raise StorageError(f"missing data for tables: {sorted(missing)}")

        self._indexes: dict[tuple[str, str], OrderedIndex] = {}
        self._statistics: dict[str, TableStatistics] = {}
        self.buffer_pool = BufferPool(self.config.shared_buffer_pages)
        self._build_indexes()
        self.run_analyze()

    # -- construction helpers --------------------------------------------------
    def _build_indexes(self) -> None:
        for tname in self.schema.table_names():
            table = self.schema.table(tname)
            data = self._tables[tname]
            for column in sorted(table.indexed_columns()):
                if data.has_column(column):
                    self._indexes[(tname, column)] = OrderedIndex(
                        tname, column, data.column(column)
                    )

    def run_analyze(self) -> None:
        """Recompute all table statistics (the simulated ``ANALYZE``)."""
        for tname in self.schema.table_names():
            table = self.schema.table(tname)
            data = self._tables[tname]
            self._statistics[tname] = analyze_table(table, data.columns)

    # -- accessors ---------------------------------------------------------------
    def table_data(self, name: str) -> TableData:
        try:
            return self._tables[name]
        except KeyError as exc:
            raise CatalogError(f"database {self.name!r} has no table {name!r}") from exc

    def statistics(self, name: str) -> TableStatistics:
        try:
            return self._statistics[name]
        except KeyError as exc:
            raise CatalogError(f"no statistics for table {name!r}") from exc

    def index(self, table: str, column: str) -> OrderedIndex | None:
        return self._indexes.get((table, column))

    def has_index(self, table: str, column: str) -> bool:
        return (table, column) in self._indexes

    def indexes_of(self, table: str) -> list[OrderedIndex]:
        return [idx for (t, _), idx in self._indexes.items() if t == table]

    def table_names(self) -> list[str]:
        return self.schema.table_names()

    def total_rows(self) -> int:
        return sum(data.row_count for data in self._tables.values())

    def total_pages(self) -> int:
        return sum(data.page_count for data in self._tables.values())

    # -- configuration & cache management ----------------------------------------
    def with_config(self, config: PostgresConfig) -> "Database":
        """Return a database sharing data but using a different configuration.

        The buffer pool is rebuilt at the new ``shared_buffers`` size; table
        data, indexes and statistics are shared (they are read-only).
        """
        clone = object.__new__(Database)
        clone.schema = self.schema
        clone.name = self.name
        clone.config = config
        clone.spec = self.spec.with_config(config) if self.spec is not None else None
        clone._tables = self._tables
        clone._indexes = self._indexes
        clone._statistics = dict(self._statistics)
        clone.buffer_pool = BufferPool(config.shared_buffer_pages)
        return clone

    def drop_caches(self) -> None:
        """Empty the buffer pool — the framework's "cold cache" reset."""
        self.buffer_pool.invalidate()

    def warm_table(self, name: str) -> None:
        """Pre-load a table's heap pages into the buffer pool."""
        data = self.table_data(name)
        self.buffer_pool.warm(name, data.page_count)

    # -- derived databases ---------------------------------------------------------
    def sample_copy(
        self,
        fractions: Mapping[str, float],
        cascade_via_foreign_keys: bool = True,
        seed: int = 0,
        name_suffix: str = "-sampled",
    ) -> "Database":
        """Build a down-sampled copy of this database (e.g. IMDB-50%).

        ``fractions`` maps table names to the Bernoulli keep-fraction of their
        rows.  When ``cascade_via_foreign_keys`` is set, rows of child tables
        whose foreign keys now dangle are removed as well, mimicking
        ``DELETE ... CASCADE`` referential integrity (Section 8.3).
        """
        new_tables: dict[str, TableData] = {}
        kept_keys: dict[str, np.ndarray] = {}

        for tname in self.schema.table_names():
            data = self._tables[tname]
            fraction = fractions.get(tname, 1.0)
            if fraction >= 1.0:
                new_tables[tname] = data
            else:
                new_tables[tname] = data.sample_rows(fraction, seed=seed)
            table = self.schema.table(tname)
            if table.primary_key and new_tables[tname].has_column(table.primary_key):
                kept_keys[tname] = new_tables[tname].column(table.primary_key)

        if cascade_via_foreign_keys:
            changed = True
            passes = 0
            while changed and passes < 5:
                changed = False
                passes += 1
                for fk in self.schema.foreign_keys:
                    parent = fk.parent_table
                    child = fk.child_table
                    if parent not in kept_keys:
                        continue
                    child_data = new_tables[child]
                    if not child_data.has_column(fk.child_column):
                        continue
                    parent_keys = kept_keys[parent]
                    child_col = child_data.column(fk.child_column)
                    keep_mask = np.isin(child_col, parent_keys) | (child_col < 0)
                    if not keep_mask.all():
                        new_tables[child] = child_data.select_rows(np.nonzero(keep_mask)[0])
                        child_table = self.schema.table(child)
                        if child_table.primary_key and new_tables[child].has_column(
                            child_table.primary_key
                        ):
                            kept_keys[child] = new_tables[child].column(
                                child_table.primary_key
                            )
                        changed = True

        return Database(
            schema=self.schema,
            tables=new_tables,
            config=self.config,
            name=self.name + name_suffix,
        )

    def describe(self) -> str:
        """One line per table: rows, pages and index count."""
        lines = [f"database {self.name} ({len(self.schema)} tables)"]
        for tname in self.table_names():
            data = self._tables[tname]
            n_idx = len(self.indexes_of(tname))
            lines.append(
                f"  {tname:<24s} rows={data.row_count:>9d} pages={data.page_count:>7d} indexes={n_idx}"
            )
        return "\n".join(lines)


def build_database(
    schema: Schema,
    tables: Mapping[str, TableData] | Iterable[TableData],
    config: PostgresConfig | None = None,
    name: str | None = None,
) -> Database:
    """Construct a :class:`Database` from a mapping or iterable of table data."""
    if isinstance(tables, Mapping):
        mapping = dict(tables)
    else:
        mapping = {data.table.name: data for data in tables}
    return Database(schema=schema, tables=mapping, config=config, name=name)
