"""StackExchange-style schema and synthetic generator for the STACK workload.

STACK (introduced with Bao) queries a StackExchange dump with tables for
sites, users, accounts, questions, answers, comments, badges, tags and links.
Compared to JOB the queries join fewer tables, which is why the paper observes
e.g. much lower LEON inference times on STACK (Section 8.2.1).
"""

from __future__ import annotations

import numpy as np

from repro.catalog.datagen import (
    categorical_column,
    correlated_foreign_keys,
    dictionary_column,
    foreign_keys,
    numeric_column,
    pooled_name_dictionary,
    primary_keys,
)
from repro.catalog.schema import Column, ColumnType, ForeignKey, Schema, Table
from repro.config import PostgresConfig
from repro.storage.database import Database
from repro.storage.table_data import TableData

INT = ColumnType.INTEGER
TEXT = ColumnType.TEXT

SITE_NAMES = [
    "stackoverflow", "math", "superuser", "askubuntu", "serverfault",
    "english", "physics", "tex", "gis", "apple", "unix", "stats",
]
TAG_NAMES = [
    "python", "javascript", "java", "c#", "postgresql", "sql", "android",
    "c++", "php", "html", "machine-learning", "linux", "git", "docker",
    "numpy", "pandas", "regex", "performance", "optimization", "security",
]
BADGE_NAMES = [
    "Nice Question", "Nice Answer", "Good Answer", "Famous Question",
    "Popular Question", "Notable Question", "Teacher", "Student", "Editor",
    "Supporter", "Critic", "Scholar", "Necromancer", "Yearling",
]


def stack_schema() -> Schema:
    """Build the 10-table StackExchange schema used by the STACK workload."""
    tables = [
        Table("site", [Column("id", INT), Column("site_name", TEXT)]),
        Table("account", [
            Column("id", INT), Column("display_name", TEXT), Column("website_url", TEXT),
        ]),
        Table("so_user", [
            Column("id", INT), Column("site_id", INT), Column("account_id", INT),
            Column("reputation", INT), Column("creation_date", INT),
        ]),
        Table("question", [
            Column("id", INT), Column("site_id", INT), Column("owner_user_id", INT),
            Column("score", INT), Column("view_count", INT),
            Column("favorite_count", INT), Column("creation_date", INT),
        ]),
        Table("answer", [
            Column("id", INT), Column("site_id", INT), Column("question_id", INT),
            Column("owner_user_id", INT), Column("score", INT),
            Column("creation_date", INT),
        ]),
        Table("comment", [
            Column("id", INT), Column("site_id", INT), Column("post_id", INT),
            Column("user_id", INT), Column("score", INT), Column("date", INT),
        ]),
        Table("badge", [
            Column("id", INT), Column("site_id", INT), Column("user_id", INT),
            Column("name", TEXT), Column("date", INT),
        ]),
        Table("tag", [
            Column("id", INT), Column("site_id", INT), Column("name", TEXT),
        ]),
        Table("tag_question", [
            Column("id", INT), Column("site_id", INT), Column("question_id", INT),
            Column("tag_id", INT),
        ]),
        Table("post_link", [
            Column("id", INT), Column("site_id", INT), Column("post_id_from", INT),
            Column("post_id_to", INT), Column("link_type_id", INT), Column("date", INT),
        ]),
    ]
    foreign = [
        ForeignKey("so_user", "site_id", "site", "id"),
        ForeignKey("so_user", "account_id", "account", "id"),
        ForeignKey("question", "site_id", "site", "id"),
        ForeignKey("question", "owner_user_id", "so_user", "id"),
        ForeignKey("answer", "site_id", "site", "id"),
        ForeignKey("answer", "question_id", "question", "id"),
        ForeignKey("answer", "owner_user_id", "so_user", "id"),
        ForeignKey("comment", "site_id", "site", "id"),
        ForeignKey("comment", "post_id", "question", "id"),
        ForeignKey("comment", "user_id", "so_user", "id"),
        ForeignKey("badge", "site_id", "site", "id"),
        ForeignKey("badge", "user_id", "so_user", "id"),
        ForeignKey("tag", "site_id", "site", "id"),
        ForeignKey("tag_question", "site_id", "site", "id"),
        ForeignKey("tag_question", "question_id", "question", "id"),
        ForeignKey("tag_question", "tag_id", "tag", "id"),
        ForeignKey("post_link", "site_id", "site", "id"),
        ForeignKey("post_link", "post_id_from", "question", "id"),
        ForeignKey("post_link", "post_id_to", "question", "id"),
    ]
    schema = Schema("stack", tables, foreign)
    for fk in schema.foreign_keys:
        schema.table(fk.child_table).add_index(fk.child_column)
    schema.table("so_user").add_index("reputation")
    schema.table("question").add_index("score")
    schema.table("question").add_index("creation_date")
    return schema


def generate_stack(
    scale: float = 1.0,
    seed: int = 1337,
    config: PostgresConfig | None = None,
) -> Database:
    """Generate a synthetic StackExchange database.

    ``scale`` = 1.0 produces roughly 1,500 questions / 30,000 total rows.
    Question popularity (answers, comments, votes) is heavily skewed, which
    gives the STACK queries the same "a few hot entities dominate" difficulty
    as the real dump.
    """
    rng = np.random.default_rng(seed)
    schema = stack_schema()

    n_site = len(SITE_NAMES)
    n_account = max(100, int(800 * scale))
    n_user = max(150, int(1200 * scale))
    n_question = max(200, int(1500 * scale))
    n_answer = int(2.2 * n_question)
    n_comment = int(3.5 * n_question)
    n_badge = int(2.0 * n_user)
    n_tag = len(TAG_NAMES)
    n_tag_question = int(2.8 * n_question)
    n_post_link = max(20, int(0.25 * n_question))

    site_ids = primary_keys(n_site)
    account_ids = primary_keys(n_account)
    user_ids = primary_keys(n_user)
    question_ids = primary_keys(n_question)
    tag_ids = primary_keys(n_tag)

    tables: dict[str, TableData] = {}

    def add(name: str, columns: dict[str, np.ndarray], dicts: dict[str, list[str]] | None = None) -> None:
        tables[name] = TableData(
            table=schema.table(name), columns=columns, dictionaries=dicts or {}
        )

    add("site", {
        "id": site_ids,
        "site_name": np.arange(n_site, dtype=np.int64),
    }, {"site_name": list(SITE_NAMES)})

    account_dict = pooled_name_dictionary("user", n_account, ["dev", "coder", "guru", "ninja"])
    add("account", {
        "id": account_ids,
        "display_name": np.arange(n_account, dtype=np.int64),
        "website_url": dictionary_column(rng, ["github.com", "gitlab.com", "personal.blog", ""], n_account, null_frac=0.5),
    }, {"display_name": account_dict, "website_url": ["github.com", "gitlab.com", "personal.blog", ""]})

    add("so_user", {
        "id": user_ids,
        "site_id": categorical_column(rng, n_site, n_user, skew=1.4),
        "account_id": foreign_keys(rng, account_ids, n_user, skew=1.1),
        "reputation": numeric_column(rng, n_user, low=1, high=500000, skew=4.0),
        "creation_date": numeric_column(rng, n_user, low=2008, high=2023),
    })

    add("question", {
        "id": question_ids,
        "site_id": categorical_column(rng, n_site, n_question, skew=1.4),
        "owner_user_id": foreign_keys(rng, user_ids, n_question, skew=1.3),
        "score": numeric_column(rng, n_question, low=-5, high=2000, skew=5.0),
        "view_count": numeric_column(rng, n_question, low=1, high=1000000, skew=5.0),
        "favorite_count": numeric_column(rng, n_question, low=0, high=500, skew=5.0, null_frac=0.3),
        "creation_date": numeric_column(rng, n_question, low=2008, high=2023),
    })

    add("answer", {
        "id": primary_keys(n_answer),
        "site_id": categorical_column(rng, n_site, n_answer, skew=1.4),
        "question_id": correlated_foreign_keys(rng, question_ids, n_answer, skew=1.3, correlation=0.4),
        "owner_user_id": foreign_keys(rng, user_ids, n_answer, skew=1.3),
        "score": numeric_column(rng, n_answer, low=-5, high=3000, skew=5.0),
        "creation_date": numeric_column(rng, n_answer, low=2008, high=2023),
    })

    add("comment", {
        "id": primary_keys(n_comment),
        "site_id": categorical_column(rng, n_site, n_comment, skew=1.4),
        "post_id": correlated_foreign_keys(rng, question_ids, n_comment, skew=1.3, correlation=0.4),
        "user_id": foreign_keys(rng, user_ids, n_comment, skew=1.4),
        "score": numeric_column(rng, n_comment, low=0, high=300, skew=5.0),
        "date": numeric_column(rng, n_comment, low=2008, high=2023),
    })

    add("badge", {
        "id": primary_keys(n_badge),
        "site_id": categorical_column(rng, n_site, n_badge, skew=1.4),
        "user_id": foreign_keys(rng, user_ids, n_badge, skew=1.4),
        "name": dictionary_column(rng, BADGE_NAMES, n_badge, skew=1.2),
        "date": numeric_column(rng, n_badge, low=2008, high=2023),
    }, {"name": list(BADGE_NAMES)})

    add("tag", {
        "id": tag_ids,
        "site_id": categorical_column(rng, n_site, n_tag, skew=1.0),
        "name": np.arange(n_tag, dtype=np.int64),
    }, {"name": list(TAG_NAMES)})

    add("tag_question", {
        "id": primary_keys(n_tag_question),
        "site_id": categorical_column(rng, n_site, n_tag_question, skew=1.4),
        "question_id": correlated_foreign_keys(rng, question_ids, n_tag_question, skew=1.2, correlation=0.4),
        "tag_id": foreign_keys(rng, tag_ids, n_tag_question, skew=1.4),
    })

    add("post_link", {
        "id": primary_keys(n_post_link),
        "site_id": categorical_column(rng, n_site, n_post_link, skew=1.4),
        "post_id_from": foreign_keys(rng, question_ids, n_post_link, skew=1.2),
        "post_id_to": foreign_keys(rng, question_ids, n_post_link, skew=1.2),
        "link_type_id": categorical_column(rng, 2, n_post_link),
        "date": numeric_column(rng, n_post_link, low=2008, high=2023),
    })

    return Database(schema=schema, tables=tables, config=config, name="stack")
