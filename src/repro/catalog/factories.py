"""Registration of database generators for spec-based construction.

Every generator callable registered here can be addressed by a
:class:`~repro.storage.spec.DatabaseSpec`: the spec names the generator id and
carries ``(scale, seed, config)`` plus any extra keyword parameters, and
:func:`build_from_spec` turns it back into a materialized
:class:`~repro.storage.database.Database`.  This indirection is what lets the
experiment runtime ship a few-hundred-byte spec to a worker process instead of
pickling gigabyte-scale table data.

Factories must be **deterministic**: the same spec must produce bit-identical
databases in every process (all bundled generators are driven by seeded numpy
generators, so this holds by construction).
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.catalog.datagen import generate_synthetic
from repro.catalog.imdb import generate_imdb, generate_imdb_half
from repro.catalog.stack import generate_stack
from repro.errors import CatalogError
from repro.storage.database import Database
from repro.storage.spec import DatabaseSpec


class DatabaseFactory(Protocol):
    """A registered generator: ``(scale, seed, config, **params) -> Database``."""

    def __call__(self, scale: float, seed: int, config, **params) -> Database: ...


_FACTORIES: dict[str, Callable[..., Database]] = {}


def register_database_factory(
    name: str, factory: Callable[..., Database], overwrite: bool = False
) -> None:
    """Register ``factory`` under the generator id ``name``.

    Third-party schemas plug in here; afterwards any ``DatabaseSpec`` naming
    ``name`` can be materialized in any process that performed the same
    registration (register at import time of a module both sides load).
    """
    if not overwrite and name in _FACTORIES:
        raise CatalogError(f"database factory {name!r} is already registered")
    _FACTORIES[name] = factory


def database_factory(name: str) -> Callable[..., Database]:
    """Look up a registered factory by generator id."""
    try:
        return _FACTORIES[name]
    except KeyError as exc:
        raise CatalogError(
            f"unknown database generator {name!r}; registered: {registered_generators()}"
        ) from exc


def registered_generators() -> list[str]:
    """Sorted ids of every registered generator."""
    return sorted(_FACTORIES)


def build_from_spec(spec: DatabaseSpec) -> Database:
    """Materialize a database from its spec (fresh build, no memoization).

    The returned instance carries ``database.spec = spec`` so downstream
    layers (the parallel runtime in particular) can recover the recipe from
    the object and ship it instead of the data.
    """
    factory = database_factory(spec.generator)
    database = factory(scale=spec.scale, seed=spec.seed, config=spec.config, **spec.params_dict)
    database.spec = spec
    return database


# ---------------------------------------------------------------------------
# Bundled generators.
# ---------------------------------------------------------------------------

register_database_factory("imdb", generate_imdb)
register_database_factory("imdb-half", generate_imdb_half)
register_database_factory("stack", generate_stack)
register_database_factory("synthetic", generate_synthetic)
