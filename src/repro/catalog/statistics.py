"""Per-column statistics collected by the simulated ``ANALYZE``.

The statistics mirror what PostgreSQL stores in ``pg_statistic``:

* ``null_frac`` — fraction of NULL values,
* ``n_distinct`` — number of distinct non-null values,
* most common values (MCVs) with their frequencies,
* an equi-depth histogram over the remaining values,
* min / max for range selectivity estimation.

They are consumed by :mod:`repro.optimizer.cardinality` to estimate filter and
join selectivities under the usual independence and uniformity assumptions —
which is exactly where interesting optimizer mistakes come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.catalog.schema import ColumnType, Table
from repro.errors import CatalogError

#: Sentinel used to store NULLs inside integer-typed numpy columns.
NULL_SENTINEL = -(2**31)

#: Default number of most-common-values tracked per column (PostgreSQL: 100).
DEFAULT_MCV_TARGET = 32

#: Default number of histogram buckets (PostgreSQL: 100).
DEFAULT_HISTOGRAM_BUCKETS = 32


@dataclass
class ColumnStatistics:
    """Statistics of a single column, as produced by :func:`analyze_column`."""

    column: str
    ctype: ColumnType
    row_count: int
    null_frac: float
    n_distinct: int
    min_value: float | None
    max_value: float | None
    mcv_values: np.ndarray = field(default_factory=lambda: np.empty(0))
    mcv_fractions: np.ndarray = field(default_factory=lambda: np.empty(0))
    histogram_bounds: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def non_null_count(self) -> int:
        return int(round(self.row_count * (1.0 - self.null_frac)))

    @property
    def mcv_total_fraction(self) -> float:
        """Fraction of non-null rows covered by the MCV list."""
        return float(self.mcv_fractions.sum()) if self.mcv_fractions.size else 0.0

    def equality_selectivity(self, value: float) -> float:
        """Estimated fraction of rows with ``column = value``."""
        if self.row_count == 0:
            return 0.0
        if self.mcv_values.size:
            match = np.nonzero(self.mcv_values == value)[0]
            if match.size:
                return float(self.mcv_fractions[match[0]]) * (1.0 - self.null_frac)
        if self.n_distinct <= 0:
            return 0.0
        remaining = max(self.n_distinct - self.mcv_values.size, 1)
        remaining_fraction = max(1.0 - self.mcv_total_fraction, 0.0)
        return (remaining_fraction / remaining) * (1.0 - self.null_frac)

    def range_selectivity(self, op: str, value: float) -> float:
        """Estimated fraction of rows with ``column <op> value`` for ``<``, ``<=``, ``>``, ``>=``.

        Like PostgreSQL's ``scalarineqsel`` the estimate combines the fraction
        of most-common values satisfying the inequality with a histogram
        estimate over the remaining (non-MCV) values.
        """
        if op not in ("<", "<=", ">", ">="):
            raise CatalogError(f"range_selectivity does not handle operator {op!r}")
        if self.row_count == 0 or self.min_value is None or self.max_value is None:
            return 0.0
        lo, hi = float(self.min_value), float(self.max_value)
        if hi <= lo:
            frac_below = 0.5
        elif self.histogram_bounds.size >= 2:
            frac_below = float(
                np.searchsorted(self.histogram_bounds, value, side="right")
            ) / float(self.histogram_bounds.size)
        else:
            frac_below = (float(value) - lo) / (hi - lo)
        frac_below = min(max(frac_below, 0.0), 1.0)
        hist_sel = frac_below if op in ("<", "<=") else 1.0 - frac_below

        mcv_sel = 0.0
        if self.mcv_values.size:
            if op == "<":
                satisfied = self.mcv_values < value
            elif op == "<=":
                satisfied = self.mcv_values <= value
            elif op == ">":
                satisfied = self.mcv_values > value
            else:
                satisfied = self.mcv_values >= value
            mcv_sel = float(self.mcv_fractions[satisfied].sum())

        rest_fraction = max(1.0 - self.mcv_total_fraction, 0.0)
        sel = mcv_sel + rest_fraction * hist_sel
        return min(max(sel, 0.0), 1.0) * (1.0 - self.null_frac)

    def to_dict(self) -> dict[str, object]:
        return {
            "column": self.column,
            "type": self.ctype.value,
            "row_count": self.row_count,
            "null_frac": self.null_frac,
            "n_distinct": self.n_distinct,
            "min": self.min_value,
            "max": self.max_value,
            "n_mcv": int(self.mcv_values.size),
            "n_histogram_bounds": int(self.histogram_bounds.size),
        }


@dataclass
class TableStatistics:
    """Statistics of a whole table: row count, page count and per-column stats."""

    table: str
    row_count: int
    page_count: int
    columns: Mapping[str, ColumnStatistics]

    def column(self, name: str) -> ColumnStatistics:
        try:
            return self.columns[name]
        except KeyError as exc:
            raise CatalogError(
                f"no statistics for column {self.table}.{name}; was ANALYZE run?"
            ) from exc

    def has_column(self, name: str) -> bool:
        return name in self.columns


def analyze_column(
    name: str,
    values: np.ndarray,
    ctype: ColumnType,
    mcv_target: int = DEFAULT_MCV_TARGET,
    histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
) -> ColumnStatistics:
    """Compute :class:`ColumnStatistics` for one column of encoded values.

    ``values`` is the raw numpy column as stored by the storage layer: numeric
    codes for every type, with :data:`NULL_SENTINEL` marking NULLs.
    """
    values = np.asarray(values)
    row_count = int(values.size)
    if row_count == 0:
        return ColumnStatistics(
            column=name,
            ctype=ctype,
            row_count=0,
            null_frac=0.0,
            n_distinct=0,
            min_value=None,
            max_value=None,
        )
    null_mask = values == NULL_SENTINEL
    null_frac = float(null_mask.mean())
    non_null = values[~null_mask]
    if non_null.size == 0:
        return ColumnStatistics(
            column=name,
            ctype=ctype,
            row_count=row_count,
            null_frac=1.0,
            n_distinct=0,
            min_value=None,
            max_value=None,
        )
    uniques, counts = np.unique(non_null, return_counts=True)
    n_distinct = int(uniques.size)

    # Most common values: only keep values that are genuinely "common", i.e.
    # appear more often than the average value would under uniformity.
    order = np.argsort(counts)[::-1]
    avg_count = non_null.size / n_distinct
    keep = order[: min(mcv_target, order.size)]
    keep = keep[counts[keep] > max(avg_count, 1.0)]
    mcv_values = uniques[keep].astype(float)
    mcv_fractions = counts[keep].astype(float) / float(non_null.size)

    # Equi-depth histogram over values not covered by the MCV list.
    if mcv_values.size:
        rest_mask = ~np.isin(non_null, uniques[keep])
        rest = non_null[rest_mask]
    else:
        rest = non_null
    if rest.size >= histogram_buckets:
        quantiles = np.linspace(0.0, 1.0, histogram_buckets + 1)
        bounds = np.quantile(rest.astype(float), quantiles)
    elif rest.size > 0:
        bounds = np.sort(rest.astype(float))
    else:
        bounds = np.empty(0)

    return ColumnStatistics(
        column=name,
        ctype=ctype,
        row_count=row_count,
        null_frac=null_frac,
        n_distinct=n_distinct,
        min_value=float(non_null.min()),
        max_value=float(non_null.max()),
        mcv_values=mcv_values,
        mcv_fractions=mcv_fractions,
        histogram_bounds=np.asarray(bounds, dtype=float),
    )


def analyze_table(
    table: Table,
    columns: Mapping[str, np.ndarray],
    row_width_bytes: int | None = None,
    page_size_bytes: int = 8192,
    mcv_target: int = DEFAULT_MCV_TARGET,
    histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
) -> TableStatistics:
    """Run the simulated ``ANALYZE`` over a table's raw columns."""
    if not columns:
        return TableStatistics(table=table.name, row_count=0, page_count=1, columns={})
    lengths = {name: len(vals) for name, vals in columns.items()}
    row_count = next(iter(lengths.values()))
    if any(length != row_count for length in lengths.values()):
        raise CatalogError(
            f"inconsistent column lengths for table {table.name!r}: {lengths}"
        )
    width = row_width_bytes if row_width_bytes is not None else table.row_width_bytes
    rows_per_page = max(1, page_size_bytes // max(width, 1))
    page_count = max(1, -(-row_count // rows_per_page))

    stats: dict[str, ColumnStatistics] = {}
    for cname, values in columns.items():
        ctype = table.column(cname).ctype if table.has_column(cname) else ColumnType.INTEGER
        stats[cname] = analyze_column(
            cname,
            values,
            ctype,
            mcv_target=mcv_target,
            histogram_buckets=histogram_buckets,
        )
    return TableStatistics(
        table=table.name,
        row_count=row_count,
        page_count=page_count,
        columns=stats,
    )


def scaled_statistics(stats: TableStatistics, scale: float) -> TableStatistics:
    """Return table statistics scaled to ``scale`` times the original rows.

    This is a cheap approximation used by the covariate-shift experiment to
    model what PostgreSQL's statistics would look like after deleting or
    adding rows without re-running a full ANALYZE over raw data.
    """
    if scale <= 0:
        raise CatalogError("scale must be positive")
    new_rows = max(0, int(round(stats.row_count * scale)))
    new_pages = max(1, int(round(stats.page_count * scale)))
    new_columns: dict[str, ColumnStatistics] = {}
    for name, col in stats.columns.items():
        new_columns[name] = ColumnStatistics(
            column=col.column,
            ctype=col.ctype,
            row_count=new_rows,
            null_frac=col.null_frac,
            n_distinct=max(1, int(round(col.n_distinct * min(scale, 1.0))))
            if col.n_distinct
            else 0,
            min_value=col.min_value,
            max_value=col.max_value,
            mcv_values=col.mcv_values.copy(),
            mcv_fractions=col.mcv_fractions.copy(),
            histogram_bounds=col.histogram_bounds.copy(),
        )
    return TableStatistics(
        table=stats.table,
        row_count=new_rows,
        page_count=new_pages,
        columns=new_columns,
    )
