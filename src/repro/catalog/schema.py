"""Relational schema definitions: tables, columns, indexes and foreign keys.

The schema objects are deliberately lightweight, hashable value objects so
that the optimizer and the encoders can use them as dictionary keys.  A
:class:`Schema` is a closed universe of :class:`Table` objects plus the
foreign-key edges between them; the workload generators and the join-graph
builder both consult it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import CatalogError


class ColumnType(enum.Enum):
    """Supported column types of the simulated DBMS."""

    INTEGER = "integer"
    TEXT = "text"
    FLOAT = "float"

    @property
    def width_bytes(self) -> int:
        """Average on-disk width used by the cost model."""
        if self is ColumnType.INTEGER:
            return 4
        if self is ColumnType.FLOAT:
            return 8
        return 24  # average text attribute width


@dataclass(frozen=True)
class Column:
    """A single column of a table."""

    name: str
    ctype: ColumnType = ColumnType.INTEGER
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("column name must be non-empty")


@dataclass(frozen=True)
class Index:
    """A (single-column) ordered index, the analogue of a PostgreSQL B-tree."""

    table: str
    column: str
    name: str = ""
    unique: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", f"idx_{self.table}_{self.column}")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key edge ``child.child_column -> parent.parent_column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str

    @property
    def key(self) -> tuple[str, str, str, str]:
        return (self.child_table, self.child_column, self.parent_table, self.parent_column)


@dataclass
class Table:
    """A table definition: ordered columns, primary key and indexes."""

    name: str
    columns: list[Column]
    primary_key: str | None = "id"
    indexes: list[Index] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("table name must be non-empty")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise CatalogError(f"duplicate column names in table {self.name!r}")
        self._columns_by_name = {c.name: c for c in self.columns}
        if self.primary_key is not None and self.primary_key not in self._columns_by_name:
            raise CatalogError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )

    # -- lookups -----------------------------------------------------------
    def column(self, name: str) -> Column:
        """Return the column definition or raise :class:`CatalogError`."""
        try:
            return self._columns_by_name[name]
        except KeyError as exc:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from exc

    def has_column(self, name: str) -> bool:
        return name in self._columns_by_name

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def indexed_columns(self) -> set[str]:
        """Columns covered by an index (the primary key is always indexed)."""
        covered = {idx.column for idx in self.indexes}
        if self.primary_key is not None:
            covered.add(self.primary_key)
        return covered

    def has_index_on(self, column: str) -> bool:
        return column in self.indexed_columns()

    @property
    def row_width_bytes(self) -> int:
        """Average tuple width, including a fixed per-tuple header."""
        header = 24
        return header + sum(c.ctype.width_bytes for c in self.columns)

    def add_index(self, column: str, unique: bool = False) -> Index:
        """Register an additional index on ``column`` and return it."""
        if not self.has_column(column):
            raise CatalogError(f"cannot index unknown column {self.name}.{column}")
        idx = Index(table=self.name, column=column, unique=unique)
        if idx.name not in {i.name for i in self.indexes}:
            self.indexes.append(idx)
        return idx


class Schema:
    """A database schema: a named collection of tables plus foreign keys."""

    def __init__(
        self,
        name: str,
        tables: Iterable[Table],
        foreign_keys: Iterable[ForeignKey] = (),
    ) -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        for table in tables:
            if table.name in self._tables:
                raise CatalogError(f"duplicate table {table.name!r} in schema {name!r}")
            self._tables[table.name] = table
        self._foreign_keys: list[ForeignKey] = []
        for fk in foreign_keys:
            self.add_foreign_key(fk)

    # -- table access ------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError as exc:
            raise CatalogError(f"schema {self.name!r} has no table {name!r}") from exc

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    @property
    def tables(self) -> Mapping[str, Table]:
        return dict(self._tables)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    # -- foreign keys --------------------------------------------------------
    def add_foreign_key(self, fk: ForeignKey) -> None:
        """Validate and register a foreign-key edge."""
        child = self.table(fk.child_table)
        parent = self.table(fk.parent_table)
        if not child.has_column(fk.child_column):
            raise CatalogError(
                f"foreign key references unknown column {fk.child_table}.{fk.child_column}"
            )
        if not parent.has_column(fk.parent_column):
            raise CatalogError(
                f"foreign key references unknown column {fk.parent_table}.{fk.parent_column}"
            )
        if fk.key not in {existing.key for existing in self._foreign_keys}:
            self._foreign_keys.append(fk)

    @property
    def foreign_keys(self) -> list[ForeignKey]:
        return list(self._foreign_keys)

    def foreign_keys_of(self, table: str) -> list[ForeignKey]:
        """Foreign keys in which ``table`` participates as child or parent."""
        return [
            fk
            for fk in self._foreign_keys
            if fk.child_table == table or fk.parent_table == table
        ]

    def join_columns(self, left: str, right: str) -> list[tuple[str, str]]:
        """Column pairs ``(left_column, right_column)`` joinable via a foreign key."""
        pairs: list[tuple[str, str]] = []
        for fk in self._foreign_keys:
            if fk.child_table == left and fk.parent_table == right:
                pairs.append((fk.child_column, fk.parent_column))
            elif fk.child_table == right and fk.parent_table == left:
                pairs.append((fk.parent_column, fk.child_column))
        return pairs

    def join_graph_edges(self) -> list[tuple[str, str]]:
        """Undirected table-level edges implied by the foreign keys."""
        edges = set()
        for fk in self._foreign_keys:
            edge = tuple(sorted((fk.child_table, fk.parent_table)))
            edges.add(edge)
        return sorted(edges)  # type: ignore[return-value]

    # -- convenience ----------------------------------------------------------
    def table_index(self, name: str) -> int:
        """Stable integer identifier of a table (used by one-hot encoders)."""
        try:
            return self.table_names().index(name)
        except ValueError as exc:
            raise CatalogError(f"schema {self.name!r} has no table {name!r}") from exc

    def column_index(self, table: str, column: str) -> int:
        """Stable integer identifier of a column across the whole schema."""
        offset = 0
        for tname in self.table_names():
            tab = self.table(tname)
            if tname == table:
                names = tab.column_names()
                if column not in names:
                    raise CatalogError(f"schema has no column {table}.{column}")
                return offset + names.index(column)
            offset += len(tab.columns)
        raise CatalogError(f"schema {self.name!r} has no table {table!r}")

    @property
    def total_columns(self) -> int:
        return sum(len(t.columns) for t in self)

    def describe(self) -> str:
        """Multi-line human readable description of the schema."""
        lines = [f"schema {self.name} ({len(self)} tables)"]
        for tname in self.table_names():
            table = self.table(tname)
            cols = ", ".join(f"{c.name}:{c.ctype.value}" for c in table.columns)
            lines.append(f"  {tname}({cols})")
        lines.append(f"  foreign keys: {len(self._foreign_keys)}")
        return "\n".join(lines)
