"""The IMDB schema of the Join Order Benchmark and its synthetic generator.

The schema is the full 21-table layout queried by JOB (Leis et al., VLDB
2015), including the two additional indexes on ``complete_cast.subject_id``
and ``complete_cast.status_id`` that Balsa adds and the paper keeps
(Section 8.1.1).

The generator replaces the real ~3.6 GB IMDB dump with skewed,
foreign-key-consistent synthetic data at a configurable scale factor, while
exposing the exact dimension-table value pools (info types, kind types,
company types, ...) that the JOB-style workload generator filters on.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.datagen import (
    categorical_column,
    correlated_foreign_keys,
    dictionary_column,
    foreign_keys,
    pooled_name_dictionary,
    primary_keys,
    year_column,
)
from repro.catalog.schema import Column, ColumnType, ForeignKey, Schema, Table
from repro.config import PostgresConfig
from repro.storage.database import Database
from repro.storage.table_data import TableData

INT = ColumnType.INTEGER
TEXT = ColumnType.TEXT

# ---------------------------------------------------------------------------
# Dimension value pools shared with the JOB workload generator.
# ---------------------------------------------------------------------------

INFO_TYPES = [
    "budget", "bottom 10 rank", "countries", "genres", "gross", "languages",
    "rating", "release dates", "runtimes", "top 250 rank", "votes",
    "mini biography", "birth notes", "height", "trivia", "quotes",
]
KIND_TYPES = ["movie", "tv movie", "tv series", "video game", "video movie", "episode"]
COMPANY_TYPES = ["distributors", "production companies", "special effects companies", "miscellaneous companies"]
LINK_TYPES = [
    "follows", "followed by", "remake of", "remade as", "references",
    "referenced in", "spoofs", "spoofed in", "features", "featured in",
    "spin off from", "spin off", "version of", "similar to", "edited into",
    "edited from", "alternate language version of", "unknown link",
]
ROLE_TYPES = [
    "actor", "actress", "producer", "writer", "cinematographer", "composer",
    "costume designer", "director", "editor", "miscellaneous crew",
    "production designer", "guest",
]
COMP_CAST_TYPES = ["cast", "crew", "complete", "complete+verified"]
COUNTRY_CODES = ["[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]", "[ca]", "[it]", "[es]", "[se]", "[nl]", "[au]"]
GENDERS = ["m", "f", ""]
GENRES = [
    "Drama", "Comedy", "Documentary", "Action", "Thriller", "Horror",
    "Romance", "Adventure", "Crime", "Sci-Fi", "Family", "Animation",
]
KEYWORD_POOL = [
    "character-name-in-title", "based-on-novel", "murder", "sequel", "love",
    "violence", "independent-film", "revenge", "death", "friendship",
    "marvel-comics", "superhero", "blood", "police", "new-york-city",
    "female-nudity", "father-son-relationship", "based-on-comic", "dog",
    "martial-arts", "hero", "fight", "magnet", "web", "second-part",
]
COMPANY_NOTE_POOL = ["(theatrical)", "(VHS)", "(DVD)", "(TV)", "(worldwide)", "(USA)", "(presents)", "(co-production)"]
CAST_NOTE_POOL = ["(voice)", "(uncredited)", "(archive footage)", "(as himself)", "(credit only)", ""]
MOVIE_INFO_POOL = GENRES + COUNTRY_CODES + ["English", "German", "French", "Japanese", "Spanish", "72", "90", "105", "120", "150"]
TITLE_TOKENS = ["Dark", "Return", "Money", "Champion", "Freddy", "Jason", "Dragon", "Secret", "Night", "Summer", "Winter", "War"]
NAME_TOKENS = ["Tim", "An", "Bert", "Yo", "Smith", "Downey", "Lee", "Kim", "Mueller", "Ivanov"]
CHAR_TOKENS = ["Queen", "King", "Doctor", "Agent", "Captain", "Sheriff", "Mother", "Man", "Woman", "Kid"]

#: Tables whose row counts scale with the ``title`` table (movie-related) or
#: with the ``name`` table (cast-related); listed for the covariate-shift
#: experiment in Section 8.3.
MOVIE_RELATED_TABLES = [
    "title", "movie_companies", "movie_info", "movie_info_idx",
    "movie_keyword", "movie_link", "aka_title",
]
CAST_RELATED_TABLES = ["cast_info", "complete_cast"]


def imdb_schema() -> Schema:
    """Build the 21-table IMDB schema with JOB's indexes and foreign keys."""
    tables = [
        Table("title", [
            Column("id", INT), Column("title", TEXT), Column("kind_id", INT),
            Column("production_year", INT), Column("season_nr", INT),
            Column("episode_nr", INT), Column("imdb_index", TEXT),
        ], indexes=[]),
        Table("kind_type", [Column("id", INT), Column("kind", TEXT)]),
        Table("movie_companies", [
            Column("id", INT), Column("movie_id", INT), Column("company_id", INT),
            Column("company_type_id", INT), Column("note", TEXT),
        ]),
        Table("company_name", [
            Column("id", INT), Column("name", TEXT), Column("country_code", TEXT),
        ]),
        Table("company_type", [Column("id", INT), Column("kind", TEXT)]),
        Table("movie_info", [
            Column("id", INT), Column("movie_id", INT), Column("info_type_id", INT),
            Column("info", TEXT), Column("note", TEXT),
        ]),
        Table("movie_info_idx", [
            Column("id", INT), Column("movie_id", INT), Column("info_type_id", INT),
            Column("info", TEXT),
        ]),
        Table("info_type", [Column("id", INT), Column("info", TEXT)]),
        Table("movie_keyword", [
            Column("id", INT), Column("movie_id", INT), Column("keyword_id", INT),
        ]),
        Table("keyword", [Column("id", INT), Column("keyword", TEXT)]),
        Table("movie_link", [
            Column("id", INT), Column("movie_id", INT), Column("linked_movie_id", INT),
            Column("link_type_id", INT),
        ]),
        Table("link_type", [Column("id", INT), Column("link", TEXT)]),
        Table("cast_info", [
            Column("id", INT), Column("movie_id", INT), Column("person_id", INT),
            Column("person_role_id", INT), Column("role_id", INT), Column("note", TEXT),
            Column("nr_order", INT),
        ]),
        Table("role_type", [Column("id", INT), Column("role", TEXT)]),
        Table("name", [
            Column("id", INT), Column("name", TEXT), Column("gender", TEXT),
            Column("name_pcode_cf", TEXT),
        ]),
        Table("aka_name", [
            Column("id", INT), Column("person_id", INT), Column("name", TEXT),
        ]),
        Table("char_name", [Column("id", INT), Column("name", TEXT)]),
        Table("aka_title", [
            Column("id", INT), Column("movie_id", INT), Column("title", TEXT),
            Column("kind_id", INT),
        ]),
        Table("complete_cast", [
            Column("id", INT), Column("movie_id", INT), Column("subject_id", INT),
            Column("status_id", INT),
        ]),
        Table("comp_cast_type", [Column("id", INT), Column("kind", TEXT)]),
        Table("person_info", [
            Column("id", INT), Column("person_id", INT), Column("info_type_id", INT),
            Column("info", TEXT), Column("note", TEXT),
        ]),
    ]
    foreign = [
        ForeignKey("title", "kind_id", "kind_type", "id"),
        ForeignKey("movie_companies", "movie_id", "title", "id"),
        ForeignKey("movie_companies", "company_id", "company_name", "id"),
        ForeignKey("movie_companies", "company_type_id", "company_type", "id"),
        ForeignKey("movie_info", "movie_id", "title", "id"),
        ForeignKey("movie_info", "info_type_id", "info_type", "id"),
        ForeignKey("movie_info_idx", "movie_id", "title", "id"),
        ForeignKey("movie_info_idx", "info_type_id", "info_type", "id"),
        ForeignKey("movie_keyword", "movie_id", "title", "id"),
        ForeignKey("movie_keyword", "keyword_id", "keyword", "id"),
        ForeignKey("movie_link", "movie_id", "title", "id"),
        ForeignKey("movie_link", "linked_movie_id", "title", "id"),
        ForeignKey("movie_link", "link_type_id", "link_type", "id"),
        ForeignKey("cast_info", "movie_id", "title", "id"),
        ForeignKey("cast_info", "person_id", "name", "id"),
        ForeignKey("cast_info", "person_role_id", "char_name", "id"),
        ForeignKey("cast_info", "role_id", "role_type", "id"),
        ForeignKey("aka_name", "person_id", "name", "id"),
        ForeignKey("aka_title", "movie_id", "title", "id"),
        ForeignKey("aka_title", "kind_id", "kind_type", "id"),
        ForeignKey("complete_cast", "movie_id", "title", "id"),
        ForeignKey("complete_cast", "subject_id", "comp_cast_type", "id"),
        ForeignKey("complete_cast", "status_id", "comp_cast_type", "id"),
        ForeignKey("person_info", "person_id", "name", "id"),
        ForeignKey("person_info", "info_type_id", "info_type", "id"),
    ]
    schema = Schema("imdb", tables, foreign)

    # Index every foreign-key column (as the JOB setup script does) ...
    for fk in schema.foreign_keys:
        schema.table(fk.child_table).add_index(fk.child_column)
    # ... plus Balsa's two additional indexes (already covered above, but kept
    # explicit so the intent survives refactoring).
    schema.table("complete_cast").add_index("subject_id")
    schema.table("complete_cast").add_index("status_id")
    # Secondary attribute indexes used by several JOB filter predicates.
    schema.table("title").add_index("production_year")
    schema.table("title").add_index("kind_id")
    return schema


def generate_imdb(
    scale: float = 1.0,
    seed: int = 42,
    config: PostgresConfig | None = None,
) -> Database:
    """Generate a synthetic IMDB database.

    ``scale`` = 1.0 produces roughly 2,000 titles / 60,000 total rows, which
    keeps the full JOB-style workload executable in seconds while preserving
    skew and fan-out variance.  Increase the scale for larger experiments.
    """
    rng = np.random.default_rng(seed)
    schema = imdb_schema()

    n_title = max(200, int(2000 * scale))
    n_person = max(300, int(3000 * scale))
    n_company = max(60, int(400 * scale))
    n_char = max(200, int(2500 * scale))
    n_keyword = min(1000, max(50, int(400 * scale)))

    title_ids = primary_keys(n_title)
    person_ids = primary_keys(n_person)
    company_ids = primary_keys(n_company)
    char_ids = primary_keys(n_char)
    keyword_ids = primary_keys(n_keyword)

    tables: dict[str, TableData] = {}

    def add(name: str, columns: dict[str, np.ndarray], dicts: dict[str, list[str]] | None = None) -> None:
        tables[name] = TableData(
            table=schema.table(name), columns=columns, dictionaries=dicts or {}
        )

    # -- small dimension tables ------------------------------------------------
    add("kind_type", {
        "id": primary_keys(len(KIND_TYPES)),
        "kind": np.arange(len(KIND_TYPES), dtype=np.int64),
    }, {"kind": list(KIND_TYPES)})
    add("company_type", {
        "id": primary_keys(len(COMPANY_TYPES)),
        "kind": np.arange(len(COMPANY_TYPES), dtype=np.int64),
    }, {"kind": list(COMPANY_TYPES)})
    add("info_type", {
        "id": primary_keys(len(INFO_TYPES)),
        "info": np.arange(len(INFO_TYPES), dtype=np.int64),
    }, {"info": list(INFO_TYPES)})
    add("link_type", {
        "id": primary_keys(len(LINK_TYPES)),
        "link": np.arange(len(LINK_TYPES), dtype=np.int64),
    }, {"link": list(LINK_TYPES)})
    add("role_type", {
        "id": primary_keys(len(ROLE_TYPES)),
        "role": np.arange(len(ROLE_TYPES), dtype=np.int64),
    }, {"role": list(ROLE_TYPES)})
    add("comp_cast_type", {
        "id": primary_keys(len(COMP_CAST_TYPES)),
        "kind": np.arange(len(COMP_CAST_TYPES), dtype=np.int64),
    }, {"kind": list(COMP_CAST_TYPES)})
    add("keyword", {
        "id": keyword_ids,
        "keyword": np.arange(n_keyword, dtype=np.int64) % len(KEYWORD_POOL)
        if n_keyword <= len(KEYWORD_POOL)
        else np.arange(n_keyword, dtype=np.int64),
    }, {
        "keyword": list(KEYWORD_POOL)
        if n_keyword <= len(KEYWORD_POOL)
        else KEYWORD_POOL + [f"keyword-{i:05d}" for i in range(n_keyword - len(KEYWORD_POOL))]
    })
    # make keyword codes point at themselves when the pool was extended
    if n_keyword > len(KEYWORD_POOL):
        tables["keyword"].columns["keyword"] = np.arange(n_keyword, dtype=np.int64)

    # -- entity tables -----------------------------------------------------------
    title_dict = pooled_name_dictionary("Movie", min(n_title, 4000), TITLE_TOKENS)
    add("title", {
        "id": title_ids,
        "title": dictionary_column(rng, title_dict, n_title, skew=0.4),
        "kind_id": categorical_column(rng, len(KIND_TYPES), n_title, skew=1.2),
        "production_year": year_column(rng, n_title),
        "season_nr": np.where(
            rng.random(n_title) < 0.15,
            rng.integers(1, 15, n_title, dtype=np.int64),
            np.full(n_title, -(2**31), dtype=np.int64),
        ),
        "episode_nr": np.where(
            rng.random(n_title) < 0.15,
            rng.integers(1, 40, n_title, dtype=np.int64),
            np.full(n_title, -(2**31), dtype=np.int64),
        ),
        "imdb_index": dictionary_column(rng, ["I", "II", "III", "IV"], n_title, null_frac=0.85),
    }, {"title": title_dict, "imdb_index": ["I", "II", "III", "IV"]})

    company_dict = pooled_name_dictionary("Studio", n_company, ["Film", "Pictures", "Warner", "Polygram", "Entertainment"])
    add("company_name", {
        "id": company_ids,
        "name": np.arange(n_company, dtype=np.int64),
        "country_code": dictionary_column(rng, COUNTRY_CODES, n_company, skew=1.3, null_frac=0.05),
    }, {"name": company_dict, "country_code": list(COUNTRY_CODES)})

    name_dict = pooled_name_dictionary("Person", min(n_person, 6000), NAME_TOKENS)
    add("name", {
        "id": person_ids,
        "name": dictionary_column(rng, name_dict, n_person, skew=0.3),
        "gender": dictionary_column(rng, GENDERS, n_person, skew=0.8, null_frac=0.1),
        "name_pcode_cf": dictionary_column(rng, ["A5362", "B6525", "C6252", "D1234"], n_person, null_frac=0.3),
    }, {"name": name_dict, "gender": list(GENDERS), "name_pcode_cf": ["A5362", "B6525", "C6252", "D1234"]})

    char_dict = pooled_name_dictionary("Character", min(n_char, 5000), CHAR_TOKENS)
    add("char_name", {
        "id": char_ids,
        "name": dictionary_column(rng, char_dict, n_char, skew=0.3),
    }, {"name": char_dict})

    # -- fact tables -------------------------------------------------------------
    n_mc = int(2.5 * n_title)
    add("movie_companies", {
        "id": primary_keys(n_mc),
        "movie_id": correlated_foreign_keys(rng, title_ids, n_mc, skew=1.1, correlation=0.4),
        "company_id": foreign_keys(rng, company_ids, n_mc, skew=1.3),
        "company_type_id": categorical_column(rng, len(COMPANY_TYPES), n_mc, skew=1.1),
        "note": dictionary_column(rng, COMPANY_NOTE_POOL, n_mc, skew=1.2, null_frac=0.3),
    }, {"note": list(COMPANY_NOTE_POOL)})

    n_mi = int(5.0 * n_title)
    add("movie_info", {
        "id": primary_keys(n_mi),
        "movie_id": correlated_foreign_keys(rng, title_ids, n_mi, skew=1.05, correlation=0.5),
        "info_type_id": categorical_column(rng, len(INFO_TYPES), n_mi, skew=1.0),
        "info": dictionary_column(rng, MOVIE_INFO_POOL, n_mi, skew=1.1),
        "note": dictionary_column(rng, COMPANY_NOTE_POOL, n_mi, skew=1.0, null_frac=0.6),
    }, {"info": list(MOVIE_INFO_POOL), "note": list(COMPANY_NOTE_POOL)})

    n_mii = int(2.0 * n_title)
    rating_values = [f"{x / 10:.1f}" for x in range(10, 100)]
    add("movie_info_idx", {
        "id": primary_keys(n_mii),
        "movie_id": correlated_foreign_keys(rng, title_ids, n_mii, skew=1.0, correlation=0.3),
        "info_type_id": categorical_column(rng, len(INFO_TYPES), n_mii, skew=0.9),
        "info": dictionary_column(rng, rating_values, n_mii, skew=0.2),
    }, {"info": list(rating_values)})

    n_mk = int(4.0 * n_title)
    add("movie_keyword", {
        "id": primary_keys(n_mk),
        "movie_id": correlated_foreign_keys(rng, title_ids, n_mk, skew=1.15, correlation=0.5),
        "keyword_id": foreign_keys(rng, keyword_ids, n_mk, skew=1.4),
    })

    n_ml = max(20, int(0.2 * n_title))
    add("movie_link", {
        "id": primary_keys(n_ml),
        "movie_id": foreign_keys(rng, title_ids, n_ml, skew=1.2),
        "linked_movie_id": foreign_keys(rng, title_ids, n_ml, skew=1.2),
        "link_type_id": categorical_column(rng, len(LINK_TYPES), n_ml, skew=1.1),
    })

    n_ci = int(10.0 * n_title)
    add("cast_info", {
        "id": primary_keys(n_ci),
        "movie_id": correlated_foreign_keys(rng, title_ids, n_ci, skew=1.2, correlation=0.6),
        "person_id": foreign_keys(rng, person_ids, n_ci, skew=1.3),
        "person_role_id": foreign_keys(rng, char_ids, n_ci, skew=1.1, null_frac=0.4),
        "role_id": categorical_column(rng, len(ROLE_TYPES), n_ci, skew=1.0),
        "note": dictionary_column(rng, CAST_NOTE_POOL, n_ci, skew=1.0, null_frac=0.4),
        "nr_order": rng.integers(1, 60, n_ci, dtype=np.int64),
    }, {"note": list(CAST_NOTE_POOL)})

    n_cc = max(20, int(0.5 * n_title))
    add("complete_cast", {
        "id": primary_keys(n_cc),
        "movie_id": foreign_keys(rng, title_ids, n_cc, skew=1.0),
        "subject_id": categorical_column(rng, 2, n_cc),  # cast / crew
        "status_id": categorical_column(rng, len(COMP_CAST_TYPES) - 2, n_cc, start=3),
    })

    n_an = max(20, int(0.4 * n_person))
    add("aka_name", {
        "id": primary_keys(n_an),
        "person_id": foreign_keys(rng, person_ids, n_an, skew=1.2),
        "name": dictionary_column(rng, name_dict, n_an, skew=0.3),
    }, {"name": name_dict})

    n_at = max(20, int(0.3 * n_title))
    add("aka_title", {
        "id": primary_keys(n_at),
        "movie_id": foreign_keys(rng, title_ids, n_at, skew=1.1),
        "title": dictionary_column(rng, title_dict, n_at, skew=0.4),
        "kind_id": categorical_column(rng, len(KIND_TYPES), n_at, skew=1.2),
    }, {"title": title_dict})

    n_pi = int(2.0 * n_person)
    add("person_info", {
        "id": primary_keys(n_pi),
        "person_id": foreign_keys(rng, person_ids, n_pi, skew=1.2),
        "info_type_id": categorical_column(rng, len(INFO_TYPES), n_pi, skew=1.0),
        "info": dictionary_column(rng, MOVIE_INFO_POOL, n_pi, skew=1.0),
        "note": dictionary_column(rng, CAST_NOTE_POOL, n_pi, skew=1.0, null_frac=0.5),
    }, {"info": list(MOVIE_INFO_POOL), "note": list(CAST_NOTE_POOL)})

    return Database(schema=schema, tables=tables, config=config, name="imdb")


def generate_imdb_half(
    scale: float = 1.0,
    seed: int = 42,
    config: PostgresConfig | None = None,
    title_fraction: float = 0.5,
    sample_seed: int = 7,
) -> Database:
    """Generate the IMDB-50% database used by the covariate-shift study.

    Rows of ``title`` are Bernoulli-sampled at ``title_fraction`` and the
    removal cascades through every foreign key, so all movie- and cast-related
    tables shrink accordingly while dimension tables stay untouched
    (Section 8.3 of the paper).
    """
    full = generate_imdb(scale=scale, seed=seed, config=config)
    return full.sample_copy(
        {"title": title_fraction},
        cascade_via_foreign_keys=True,
        seed=sample_seed,
        name_suffix="-50",
    )
