"""Schema, statistics and synthetic data generation for the benchmark databases.

The catalog package models what PostgreSQL keeps in ``pg_class`` /
``pg_statistic``: table and column definitions, indexes, foreign keys, and the
per-column statistics collected by ``ANALYZE`` (null fraction, number of
distinct values, most common values, equi-depth histogram).

Two concrete schemas are provided:

* :mod:`repro.catalog.imdb` — the 21-table IMDB schema used by the Join Order
  Benchmark, with a synthetic, skewed, foreign-key-consistent data generator.
* :mod:`repro.catalog.stack` — a StackExchange-style schema used by the STACK
  workload.

Every generator is also registered in :mod:`repro.catalog.factories`, which
lets a :class:`~repro.storage.spec.DatabaseSpec` (generator id + scale + seed
+ configuration) rebuild the database deterministically in any process — the
basis of the runtime's spec-based dispatch.
"""

from repro.catalog.schema import (
    Column,
    ColumnType,
    ForeignKey,
    Index,
    Schema,
    Table,
)
from repro.catalog.statistics import ColumnStatistics, TableStatistics, analyze_table

_FACTORY_EXPORTS = (
    "build_from_spec",
    "database_factory",
    "register_database_factory",
    "registered_generators",
)


def __getattr__(name: str):
    # The factory registry is exported lazily: importing it eagerly would
    # close an import cycle (storage.table_data -> catalog.schema -> this
    # package -> factories -> imdb -> storage.database -> storage.table_data).
    if name in _FACTORY_EXPORTS:
        from repro.catalog import factories

        return getattr(factories, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Column",
    "ColumnType",
    "ForeignKey",
    "Index",
    "Schema",
    "Table",
    "ColumnStatistics",
    "TableStatistics",
    "analyze_table",
    "build_from_spec",
    "database_factory",
    "register_database_factory",
    "registered_generators",
]
