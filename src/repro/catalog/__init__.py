"""Schema, statistics and synthetic data generation for the benchmark databases.

The catalog package models what PostgreSQL keeps in ``pg_class`` /
``pg_statistic``: table and column definitions, indexes, foreign keys, and the
per-column statistics collected by ``ANALYZE`` (null fraction, number of
distinct values, most common values, equi-depth histogram).

Two concrete schemas are provided:

* :mod:`repro.catalog.imdb` — the 21-table IMDB schema used by the Join Order
  Benchmark, with a synthetic, skewed, foreign-key-consistent data generator.
* :mod:`repro.catalog.stack` — a StackExchange-style schema used by the STACK
  workload.
"""

from repro.catalog.schema import (
    Column,
    ColumnType,
    ForeignKey,
    Index,
    Schema,
    Table,
)
from repro.catalog.statistics import ColumnStatistics, TableStatistics, analyze_table

__all__ = [
    "Column",
    "ColumnType",
    "ForeignKey",
    "Index",
    "Schema",
    "Table",
    "ColumnStatistics",
    "TableStatistics",
    "analyze_table",
]
