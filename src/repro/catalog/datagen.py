"""Synthetic data generation primitives used by the IMDB and STACK generators.

The generators build dictionary-encoded numpy columns with the properties that
make the Join Order Benchmark hard for cost-based optimizers:

* **skew** — categorical and foreign-key columns follow Zipf-like
  distributions, so a handful of values dominate,
* **fan-out variance** — some parent rows (popular movies, popular users) have
  orders of magnitude more children than others,
* **cross-column correlation** — e.g. a movie's production year correlates
  with how much metadata exists about it,
* **NULLs** — a configurable fraction of values is missing.

Everything is driven by a seeded :class:`numpy.random.Generator` so databases
are bit-for-bit reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.catalog.statistics import NULL_SENTINEL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import PostgresConfig
    from repro.storage.database import Database


def zipf_weights(n: int, skew: float = 1.1) -> np.ndarray:
    """Normalized Zipf weights for ``n`` ranks with exponent ``skew``."""
    if n <= 0:
        return np.empty(0)
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-abs(skew))
    return weights / weights.sum()


def zipf_choice(
    rng: np.random.Generator,
    values: Sequence[int] | np.ndarray,
    size: int,
    skew: float = 1.1,
    shuffle_ranks: bool = True,
) -> np.ndarray:
    """Sample ``size`` values with Zipf-distributed popularity.

    When ``shuffle_ranks`` is set the popularity ranking is randomly assigned
    to the value domain (so the most popular value is not always the smallest
    one), which avoids artificial correlation between value magnitude and
    frequency.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0 or size <= 0:
        return np.empty(0, dtype=np.int64)
    weights = zipf_weights(values.size, skew)
    if shuffle_ranks:
        perm = rng.permutation(values.size)
        values = values[perm]
    return rng.choice(values, size=size, p=weights)


def uniform_choice(
    rng: np.random.Generator, values: Sequence[int] | np.ndarray, size: int
) -> np.ndarray:
    """Uniformly sample ``size`` values from a domain."""
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0 or size <= 0:
        return np.empty(0, dtype=np.int64)
    return rng.choice(values, size=size)


def primary_keys(n: int, start: int = 1) -> np.ndarray:
    """Dense primary keys ``start, start+1, ..., start+n-1``."""
    return np.arange(start, start + n, dtype=np.int64)


def foreign_keys(
    rng: np.random.Generator,
    parent_ids: np.ndarray,
    size: int,
    skew: float = 1.1,
    null_frac: float = 0.0,
) -> np.ndarray:
    """Foreign-key column referencing ``parent_ids`` with skewed fan-out."""
    column = zipf_choice(rng, parent_ids, size, skew=skew)
    if null_frac > 0.0 and column.size:
        mask = rng.random(column.size) < null_frac
        column = column.copy()
        column[mask] = NULL_SENTINEL
    return column


def correlated_foreign_keys(
    rng: np.random.Generator,
    parent_ids: np.ndarray,
    size: int,
    skew: float = 1.1,
    correlation: float = 0.5,
) -> np.ndarray:
    """Foreign keys whose popularity correlates with the parent id order.

    ``correlation`` in [0, 1] blends between shuffled Zipf popularity (0) and
    popularity aligned with parent-id order (1): with high correlation, larger
    parent ids (e.g. newer movies) receive more children.
    """
    parent_ids = np.asarray(parent_ids, dtype=np.int64)
    if parent_ids.size == 0 or size <= 0:
        return np.empty(0, dtype=np.int64)
    weights = zipf_weights(parent_ids.size, skew)[::-1]  # favour large ids
    uniform = np.full(parent_ids.size, 1.0 / parent_ids.size)
    blended = correlation * weights + (1.0 - correlation) * uniform
    blended = blended / blended.sum()
    return rng.choice(parent_ids, size=size, p=blended)


def categorical_column(
    rng: np.random.Generator,
    n_categories: int,
    size: int,
    skew: float = 1.05,
    null_frac: float = 0.0,
    start: int = 1,
) -> np.ndarray:
    """A skewed categorical column with values in ``[start, start+n_categories)``."""
    domain = np.arange(start, start + n_categories, dtype=np.int64)
    column = zipf_choice(rng, domain, size, skew=skew)
    if null_frac > 0.0 and column.size:
        mask = rng.random(column.size) < null_frac
        column = column.copy()
        column[mask] = NULL_SENTINEL
    return column


def year_column(
    rng: np.random.Generator,
    size: int,
    low: int = 1880,
    high: int = 2023,
    recency_bias: float = 3.0,
    null_frac: float = 0.02,
) -> np.ndarray:
    """Production-year style column biased towards recent years."""
    if size <= 0:
        return np.empty(0, dtype=np.int64)
    u = rng.random(size) ** (1.0 / max(recency_bias, 1e-6))
    years = (low + u * (high - low)).astype(np.int64)
    if null_frac > 0.0:
        mask = rng.random(size) < null_frac
        years[mask] = NULL_SENTINEL
    return years


def numeric_column(
    rng: np.random.Generator,
    size: int,
    low: int = 0,
    high: int = 1000,
    skew: float = 0.0,
    null_frac: float = 0.0,
) -> np.ndarray:
    """Generic bounded integer column, optionally skewed towards ``low``."""
    if size <= 0:
        return np.empty(0, dtype=np.int64)
    if skew > 0:
        u = rng.random(size) ** (1.0 + skew)
    else:
        u = rng.random(size)
    column = (low + u * (high - low)).astype(np.int64)
    if null_frac > 0.0:
        mask = rng.random(size) < null_frac
        column[mask] = NULL_SENTINEL
    return column


def dictionary_column(
    rng: np.random.Generator,
    dictionary: Sequence[str],
    size: int,
    skew: float = 1.05,
    null_frac: float = 0.0,
) -> np.ndarray:
    """Codes into ``dictionary`` with skewed popularity (text column contents)."""
    domain = np.arange(len(dictionary), dtype=np.int64)
    column = zipf_choice(rng, domain, size, skew=skew)
    if null_frac > 0.0 and column.size:
        mask = rng.random(column.size) < null_frac
        column = column.copy()
        column[mask] = NULL_SENTINEL
    return column


def unique_name_dictionary(prefix: str, n: int) -> list[str]:
    """A dictionary of ``n`` distinct synthetic names (``prefix_000001`` ...)."""
    return [f"{prefix}_{i:06d}" for i in range(n)]


def pooled_name_dictionary(prefix: str, n: int, pools: Sequence[str]) -> list[str]:
    """Names that embed tokens from ``pools`` so LIKE filters have matches."""
    out = []
    for i in range(n):
        token = pools[i % len(pools)] if pools else ""
        out.append(f"{prefix} {token} {i:05d}")
    return out


# ---------------------------------------------------------------------------
# A minimal self-contained star schema built from the primitives above.
# ---------------------------------------------------------------------------

#: Category labels of the synthetic dimension table.
SYNTHETIC_CATEGORIES = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]


def generate_synthetic(
    scale: float = 1.0,
    seed: int = 0,
    config: "PostgresConfig | None" = None,
    fanout: float = 8.0,
    null_frac: float = 0.02,
) -> "Database":
    """Generate a small star-schema database (one dimension, one fact table).

    Unlike the IMDB/STACK generators this schema carries no workload; it
    exists to exercise storage, registry and dispatch machinery at arbitrary
    scales without the cost of a 21-table build.  ``scale`` = 1.0 produces
    roughly 500 dimension rows and ``500 * fanout`` fact rows.
    """
    from repro.catalog.schema import Column, ColumnType, ForeignKey, Schema, Table
    from repro.storage.database import Database
    from repro.storage.table_data import TableData

    rng = np.random.default_rng(seed)
    n_dim = max(20, int(500 * scale))
    n_fact = max(50, int(n_dim * max(fanout, 1.0)))

    dim_table = Table("dim", [
        Column("id", ColumnType.INTEGER),
        Column("category", ColumnType.INTEGER),
        Column("label", ColumnType.TEXT),
    ])
    fact_table = Table("fact", [
        Column("id", ColumnType.INTEGER),
        Column("dim_id", ColumnType.INTEGER),
        Column("value", ColumnType.INTEGER),
        Column("year", ColumnType.INTEGER),
    ])
    schema = Schema(
        "synthetic",
        [dim_table, fact_table],
        foreign_keys=[ForeignKey("fact", "dim_id", "dim", "id")],
    )
    schema.table("fact").add_index("dim_id")
    schema.table("fact").add_index("year")

    dim_ids = primary_keys(n_dim)
    labels = pooled_name_dictionary("dim", n_dim, SYNTHETIC_CATEGORIES)
    tables = {
        "dim": TableData(
            table=dim_table,
            columns={
                "id": dim_ids,
                "category": categorical_column(rng, len(SYNTHETIC_CATEGORIES), n_dim),
                "label": np.arange(n_dim, dtype=np.int64),
            },
            dictionaries={"label": labels},
        ),
        "fact": TableData(
            table=fact_table,
            columns={
                "id": primary_keys(n_fact),
                "dim_id": foreign_keys(rng, dim_ids, n_fact, null_frac=null_frac),
                "value": numeric_column(rng, n_fact, skew=1.0, null_frac=null_frac),
                "year": year_column(rng, n_fact),
            },
        ),
    }
    return Database(schema=schema, tables=tables, config=config, name="synthetic")
