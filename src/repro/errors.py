"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch a single base class.  Sub-classes mirror the major subsystems
(catalog, SQL frontend, planner, executor, benchmarking framework).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class CatalogError(ReproError):
    """Schema or statistics problem (unknown table/column, bad definition)."""


class StorageError(ReproError):
    """Problem in the columnar storage or buffer pool layer."""


class SQLError(ReproError):
    """Base class for SQL frontend errors."""


class SQLSyntaxError(SQLError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class BindingError(SQLError):
    """A parsed query references tables or columns not present in the schema."""


class PlanError(ReproError):
    """A physical or logical plan is malformed or cannot be constructed."""


class HintError(PlanError):
    """A hint set references unknown relations or conflicts with itself."""


class OptimizerError(ReproError):
    """The planner could not produce a plan for the query."""


class ExecutionError(ReproError):
    """The executor failed while running a physical plan."""


class QueryTimeoutError(ExecutionError):
    """Simulated execution exceeded the configured statement timeout."""

    def __init__(self, message: str, elapsed_ms: float, timeout_ms: float) -> None:
        super().__init__(message)
        self.elapsed_ms = elapsed_ms
        self.timeout_ms = timeout_ms


class EncodingError(ReproError):
    """A query or plan could not be featurized for an ML model."""


class ModelError(ReproError):
    """A learned optimizer model is misconfigured or not trained."""


class NotTrainedError(ModelError):
    """Inference was requested from a model that has not been trained."""


class SplitError(ReproError):
    """A dataset split is invalid (overlapping sets, unknown queries, ...)."""


class ExperimentError(ReproError):
    """The benchmarking framework was asked to do something inconsistent."""


class PlanServiceError(ExperimentError):
    """The plan-serving control plane failed or rejected a request."""


class PlanRejected(PlanServiceError):
    """The plan server turned a request away under admission control.

    An explicit backpressure signal, never a silent stall: the server is
    alive but at capacity (global or per-client in-flight limit).  Carries
    ``retry_after_s``, the server's backoff suggestion.
    """

    def __init__(self, message: str, retry_after_s: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class WorkloadError(ReproError):
    """A workload or query template is malformed."""
