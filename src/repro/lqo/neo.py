"""Neo: a value-network learned optimizer with greedy bottom-up plan search.

Neo (Marcus et al., VLDB 2019) trains a neural network that, given the query
encoding and the encoding of a (partial) plan, predicts the latency of the
best complete plan containing it.  Plans are constructed bottom-up: starting
from one sub-plan per relation, the search greedily applies the join whose
resulting partial plan has the lowest predicted value.  Training bootstraps
from the expert (PostgreSQL's plans and their measured latencies) and then
iterates: plan the training queries with the current model, execute the plans,
add the observations to the replay buffer, retrain.

Simplifications relative to the original (documented in DESIGN.md): the join
method of each candidate join is chosen by the cost model rather than by the
network, and the value network scores the newly formed sub-plan (plus the
query encoding) rather than the full forest of remaining sub-plans.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.lqo.base import BaseOptimizer, LQOEnvironment, PlannedQuery, TrainingReport
from repro.ml.nn import MLPRegressor
from repro.ml.replay import Experience, ReplayBuffer
from repro.plans.physical import PlanNode, ScanNode
from repro.sql.binder import BoundQuery
from repro.workloads.workload import BenchmarkQuery


class NeoOptimizer(BaseOptimizer):
    """Value-network guided bottom-up plan search, bootstrapped from the DBMS."""

    name = "neo"
    #: Whether the candidate search is restricted to left-deep trees.
    left_deep_only = False
    #: Whether the replay buffer is restricted to the latest iteration when
    #: retraining (Balsa overrides this to be on-policy).
    on_policy = False
    #: Whether training executions are bounded by per-query timeouts (Balsa).
    use_timeouts = False
    #: Whether the initial experience uses cost-model estimates instead of
    #: executed latencies (Balsa's expert-free bootstrap).
    bootstrap_from_cost = False
    #: Whether plan encodings use the Tree-LSTM composition (RTOS).
    use_lstm_encoder = False

    def __init__(
        self,
        env: LQOEnvironment,
        training_iterations: int = 2,
        seed: int = 0,
    ) -> None:
        super().__init__(env)
        self.training_iterations = training_iterations
        self.seed = seed
        self._buffer = ReplayBuffer()
        self._model = MLPRegressor(input_size=env.query_plan_vector_size, seed=seed + 3)
        self._timeout_reference: dict[str, float] = {}

    # ------------------------------------------------------------------ features
    def _features(self, query: BoundQuery, plan: PlanNode) -> np.ndarray:
        return self.env.query_plan_vector(query, plan, use_lstm=self.use_lstm_encoder)

    def _retrain(self, seed_offset: int = 0) -> None:
        features, targets = self._buffer.training_matrix(recent_only=self.on_policy)
        if len(targets) < 8:
            return
        self._model = MLPRegressor(
            input_size=self.env.query_plan_vector_size, seed=self.seed + 3 + seed_offset
        )
        self._model.fit(features, targets, epochs=50, seed=self.seed + seed_offset)

    # ------------------------------------------------------------------- search
    def _candidate_joins(self, query: BoundQuery, subplans: list[PlanNode]):
        cost_model = self.env.planner.cost_model
        candidates = []
        connected = []
        for i, j in combinations(range(len(subplans)), 2):
            predicates = query.joins_between(subplans[i].aliases, subplans[j].aliases)
            if predicates:
                connected.append((i, j, predicates))
        pairs = connected
        if not pairs:
            pairs = [
                (i, j, [])
                for i, j in combinations(range(len(subplans)), 2)
            ]
        for i, j, predicates in pairs:
            if self.left_deep_only:
                orientations = []
                if isinstance(subplans[j], ScanNode):
                    orientations.append((i, j))
                if isinstance(subplans[i], ScanNode):
                    orientations.append((j, i))
                if not orientations:
                    continue
            else:
                orientations = [(i, j), (j, i)]
            for left_index, right_index in orientations:
                join = cost_model.best_join(
                    query, subplans[left_index], subplans[right_index], predicates=predicates
                )
                candidates.append((join, left_index, right_index))
        return candidates

    def search_plan(self, query: BoundQuery) -> PlanNode:
        """Greedy bottom-up construction guided by the value network."""
        cost_model = self.env.planner.cost_model
        subplans: list[PlanNode] = [cost_model.best_scan(query, a) for a in query.aliases]
        if len(subplans) == 1:
            return subplans[0]
        query_vector = self.env.query_vector(query)
        while len(subplans) > 1:
            candidates = self._candidate_joins(query, subplans)
            if not candidates:
                break
            if self._model.is_trained:
                matrix = np.vstack(
                    [
                        np.concatenate(
                            [query_vector, self.env.plan_vector(join, self.use_lstm_encoder)]
                        )
                        for join, _, _ in candidates
                    ]
                )
                scores = self._model.predict(matrix)
            else:
                scores = np.asarray([join.estimated_cost for join, _, _ in candidates])
            best = int(np.argmin(scores))
            join, left_index, right_index = candidates[best]
            subplans = [
                plan for k, plan in enumerate(subplans) if k not in (left_index, right_index)
            ]
            subplans.append(join)
        return subplans[0]

    # -------------------------------------------------------------------- timeouts
    def _training_timeout(self, query: BenchmarkQuery) -> float | None:
        if not self.use_timeouts:
            return None
        reference = self._timeout_reference.get(query.query_id)
        if reference is None:
            return None
        return max(2.0 * reference, 5.0)

    # ------------------------------------------------------------------- training
    def fit(self, train_queries: list[BenchmarkQuery]) -> TrainingReport:
        def body(queries: list[BenchmarkQuery]) -> int:
            self._bootstrap(queries)
            self._retrain(seed_offset=0)
            for iteration in range(1, self.training_iterations + 1):
                for query in queries:
                    plan = self.search_plan(query.bound)
                    latency, timed_out = self.env.training_latency(
                        query.bound, plan, timeout_ms=self._training_timeout(query)
                    )
                    best = self._timeout_reference.get(query.query_id)
                    if not timed_out and (best is None or latency < best):
                        self._timeout_reference[query.query_id] = latency
                    self._buffer.add(
                        Experience(
                            query_id=query.query_id,
                            features=self._features(query.bound, plan),
                            latency_ms=latency,
                            iteration=iteration,
                            timed_out=timed_out,
                        )
                    )
                self._retrain(seed_offset=iteration)
            return self.training_iterations

        return self._timed_fit(body, train_queries)

    def _bootstrap(self, queries: list[BenchmarkQuery]) -> None:
        """Seed the replay buffer from the expert (or the cost model, for Balsa)."""
        for query in queries:
            result = self.env.plan_with_hints(query.bound)
            features = self._features(query.bound, result.plan)
            if self.bootstrap_from_cost:
                # Balsa: no expert demonstrations — pre-train on cost estimates.
                pseudo_latency = max(float(result.plan.estimated_cost), 0.01)
                self._buffer.add(
                    Experience(
                        query_id=query.query_id,
                        features=features,
                        latency_ms=pseudo_latency,
                        iteration=0,
                        metadata={"source": "cost-model"},
                    )
                )
            else:
                latency, timed_out = self.env.training_latency(query.bound, result.plan)
                if not timed_out:
                    self._timeout_reference[query.query_id] = latency
                self._buffer.add(
                    Experience(
                        query_id=query.query_id,
                        features=features,
                        latency_ms=latency,
                        iteration=0,
                        timed_out=timed_out,
                        metadata={"source": "postgres"},
                    )
                )

    # ------------------------------------------------------------------ inference
    def plan_query(self, query: BenchmarkQuery) -> PlannedQuery:
        def body(q: BenchmarkQuery):
            plan = self.search_plan(q.bound)
            hints = self.env.hints_from_plan(q.bound, plan)
            planning_time = self.env.hinted_planning_time_ms(q.bound)
            return plan, hints, planning_time, {"nodes": plan.node_count()}

        return self._timed_inference(body, query)
