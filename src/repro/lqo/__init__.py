"""Learned query optimizers (LQOs) and the classical PostgreSQL baseline.

Every optimizer implements the :class:`repro.lqo.base.BaseOptimizer` contract:
``fit`` on a list of training queries and ``plan_query`` for inference, with
wall-clock inference and training times recorded so the benchmarking framework
can decompose end-to-end latency the way the paper does (inference + planning
+ execution, Section 8.2.1).

Implemented methods (see ``repro.lqo.registry`` for the full inventory):

* :class:`PostgresBaseline` — the simulated DBMS's own cost-based optimizer,
* :class:`BaoOptimizer` — hint-set steering (Marcus et al.),
* :class:`NeoOptimizer` — value-network plan search bootstrapped from the DBMS,
* :class:`BalsaOptimizer` — Neo-style search bootstrapped from the cost model
  with timeouts and on-policy training,
* :class:`LeonOptimizer` — learning-to-rank over enumerated candidate plans,
* :class:`HybridQOOptimizer` — MCTS hint generation plus a learned selector,
* :class:`RtosOptimizer`, :class:`LeroOptimizer`, :class:`LogerOptimizer` —
  simplified implementations of the methods the paper lists but excludes from
  its main experiments.
"""

from repro.lqo.base import (
    BaseOptimizer,
    LQOEnvironment,
    PlannedQuery,
    TrainingReport,
)
from repro.lqo.postgres_baseline import PostgresBaseline
from repro.lqo.bao import BaoOptimizer
from repro.lqo.neo import NeoOptimizer
from repro.lqo.balsa import BalsaOptimizer
from repro.lqo.leon import LeonOptimizer
from repro.lqo.hybridqo import HybridQOOptimizer
from repro.lqo.others import LeroOptimizer, LogerOptimizer, RtosOptimizer
from repro.lqo.registry import MethodInfo, available_methods, create_optimizer, method_info

__all__ = [
    "BaseOptimizer",
    "LQOEnvironment",
    "PlannedQuery",
    "TrainingReport",
    "PostgresBaseline",
    "BaoOptimizer",
    "NeoOptimizer",
    "BalsaOptimizer",
    "LeonOptimizer",
    "HybridQOOptimizer",
    "RtosOptimizer",
    "LeroOptimizer",
    "LogerOptimizer",
    "MethodInfo",
    "available_methods",
    "create_optimizer",
    "method_info",
]
