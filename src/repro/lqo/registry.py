"""Registry of optimizers: construction, metadata and the Table 1 inventory."""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding.featurizers import ENCODING_SPECS, EncodingSpec
from repro.errors import ExperimentError
from repro.lqo.balsa import BalsaOptimizer
from repro.lqo.bao import BaoOptimizer
from repro.lqo.base import BaseOptimizer, LQOEnvironment
from repro.lqo.hybridqo import HybridQOOptimizer
from repro.lqo.leon import LeonOptimizer
from repro.lqo.neo import NeoOptimizer
from repro.lqo.others import LeroOptimizer, LogerOptimizer, RtosOptimizer
from repro.lqo.postgres_baseline import PostgresBaseline


@dataclass(frozen=True)
class MethodInfo:
    """Metadata about one optimizer implementation."""

    name: str
    display_name: str
    cls: type[BaseOptimizer]
    #: Whether the paper includes the method in its main end-to-end evaluation
    #: (Section 8.2); RTOS, Lero and LOGER are excluded there.
    in_main_evaluation: bool
    #: Whether the method is learned (False only for the PostgreSQL baseline).
    is_learned: bool
    #: The Table 1 encoding specification (None for the classical baseline).
    encoding: EncodingSpec | None


_REGISTRY: dict[str, MethodInfo] = {
    "postgres": MethodInfo(
        name="postgres",
        display_name="PostgreSQL",
        cls=PostgresBaseline,
        in_main_evaluation=True,
        is_learned=False,
        encoding=None,
    ),
    "neo": MethodInfo(
        name="neo",
        display_name="Neo",
        cls=NeoOptimizer,
        in_main_evaluation=True,
        is_learned=True,
        encoding=ENCODING_SPECS["neo"],
    ),
    "bao": MethodInfo(
        name="bao",
        display_name="Bao",
        cls=BaoOptimizer,
        in_main_evaluation=True,
        is_learned=True,
        encoding=ENCODING_SPECS["bao"],
    ),
    "balsa": MethodInfo(
        name="balsa",
        display_name="Balsa",
        cls=BalsaOptimizer,
        in_main_evaluation=True,
        is_learned=True,
        encoding=ENCODING_SPECS["balsa"],
    ),
    "leon": MethodInfo(
        name="leon",
        display_name="LEON",
        cls=LeonOptimizer,
        in_main_evaluation=True,
        is_learned=True,
        encoding=ENCODING_SPECS["leon"],
    ),
    "hybridqo": MethodInfo(
        name="hybridqo",
        display_name="HybridQO",
        cls=HybridQOOptimizer,
        in_main_evaluation=True,
        is_learned=True,
        encoding=ENCODING_SPECS["hybridqo"],
    ),
    "rtos": MethodInfo(
        name="rtos",
        display_name="RTOS",
        cls=RtosOptimizer,
        in_main_evaluation=False,
        is_learned=True,
        encoding=ENCODING_SPECS["rtos"],
    ),
    "lero": MethodInfo(
        name="lero",
        display_name="Lero",
        cls=LeroOptimizer,
        in_main_evaluation=False,
        is_learned=True,
        encoding=ENCODING_SPECS["lero"],
    ),
    "loger": MethodInfo(
        name="loger",
        display_name="LOGER",
        cls=LogerOptimizer,
        in_main_evaluation=False,
        is_learned=True,
        encoding=ENCODING_SPECS["loger"],
    ),
}

#: Order in which the paper lists the methods it evaluates end to end.
MAIN_EVALUATION_METHODS: tuple[str, ...] = (
    "postgres", "bao", "hybridqo", "neo", "balsa", "leon",
)


def available_methods(main_evaluation_only: bool = False) -> list[str]:
    """Names of the registered optimizers."""
    if main_evaluation_only:
        return [name for name in MAIN_EVALUATION_METHODS]
    return list(_REGISTRY)


def method_info(name: str) -> MethodInfo:
    """Metadata for one registered method."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ExperimentError(
            f"unknown optimizer {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]


def create_optimizer(name: str, env: LQOEnvironment, **kwargs) -> BaseOptimizer:
    """Instantiate a registered optimizer bound to an environment."""
    info = method_info(name)
    return info.cls(env, **kwargs)
