"""Bao: steering the classical optimizer through hint sets.

Bao (Marcus et al., SIGMOD 2021) does not construct plans itself.  For every
query it considers a small family of hint sets (combinations of the
``enable_*`` operator switches), lets the DBMS plan the query under each hint
set, predicts the latency of each resulting plan with a tree-convolution
regression model — using *only* the plan encoding, no query encoding, exactly
as Table 1 records — and sends the query to the DBMS with the winning hint
set.  Because Bao runs inside PostgreSQL as an extension, its inference time
is accounted as part of the planning time in the paper's figures.

Training follows Bao's "time series" regime: queries arrive in a stream, arms
are chosen with an epsilon-greedy/Thompson-flavoured policy, the observed
latency is appended to the experience and the model is refreshed periodically.
In our framework Bao only sees the training split (Section 8.1.4), which it
may traverse several times.
"""

from __future__ import annotations

import numpy as np

from repro.lqo.base import BaseOptimizer, LQOEnvironment, PlannedQuery, TrainingReport
from repro.ml.nn import MLPRegressor
from repro.ml.replay import Experience, ReplayBuffer
from repro.plans.hints import BAO_HINT_SETS, HintSet
from repro.workloads.workload import BenchmarkQuery


class BaoOptimizer(BaseOptimizer):
    """Hint-set selection with a plan-encoding-only latency model."""

    name = "bao"
    integrates_with_dbms = True

    def __init__(
        self,
        env: LQOEnvironment,
        arms: tuple[HintSet, ...] = BAO_HINT_SETS,
        training_passes: int = 2,
        retrain_every: int = 20,
        epsilon: float = 0.15,
        seed: int = 0,
    ) -> None:
        super().__init__(env)
        self.arms = arms
        self.training_passes = training_passes
        self.retrain_every = retrain_every
        self.epsilon = epsilon
        self._rng = np.random.default_rng(seed)
        self._buffer = ReplayBuffer()
        self._model = MLPRegressor(input_size=env.plan_vector_size, seed=seed + 1)

    # ------------------------------------------------------------------ features
    def _arm_plans(self, query: BenchmarkQuery):
        """Plan the query under every arm; returns list of (arm, planner_result, vector)."""
        out = []
        for arm in self.arms:
            result = self.env.plan_with_hints(query.bound, arm)
            vector = self.env.plan_vector(result.plan)
            out.append((arm, result, vector))
        return out

    def _predict(self, vectors: np.ndarray) -> np.ndarray:
        if not self._model.is_trained:
            return np.zeros(len(vectors))
        return self._model.predict(vectors)

    def _retrain(self, seed_offset: int = 0) -> None:
        features, targets = self._buffer.training_matrix()
        if len(targets) < 8:
            return
        self._model = MLPRegressor(input_size=self.env.plan_vector_size, seed=1 + seed_offset)
        self._model.fit(features, targets, epochs=40, seed=seed_offset)

    # ------------------------------------------------------------------ training
    def fit(self, train_queries: list[BenchmarkQuery]) -> TrainingReport:
        def body(queries: list[BenchmarkQuery]) -> int:
            iteration = 0
            since_retrain = 0
            for sweep in range(self.training_passes):
                for query in queries:
                    iteration += 1
                    arm_plans = self._arm_plans(query)
                    vectors = np.vstack([vec for _, _, vec in arm_plans])
                    if sweep == 0:
                        # First pass: explore every arm once to seed the experience,
                        # the role Bao's 2,500 extra generated queries play originally.
                        chosen_indices = range(len(arm_plans))
                    else:
                        predictions = self._predict(vectors)
                        if self._rng.random() < self.epsilon:
                            chosen_indices = [int(self._rng.integers(len(arm_plans)))]
                        else:
                            chosen_indices = [int(np.argmin(predictions))]
                    for index in chosen_indices:
                        arm, result, vector = arm_plans[index]
                        latency, timed_out = self.env.training_latency(query.bound, result.plan)
                        self._buffer.add(
                            Experience(
                                query_id=query.query_id,
                                features=vector,
                                latency_ms=latency,
                                iteration=sweep,
                                timed_out=timed_out,
                                metadata={"arm": arm.name},
                            )
                        )
                    since_retrain += 1
                    if since_retrain >= self.retrain_every:
                        self._retrain(seed_offset=iteration)
                        since_retrain = 0
            self._retrain(seed_offset=iteration + 1)
            return self.training_passes

        return self._timed_fit(body, train_queries)

    # ------------------------------------------------------------------ inference
    def plan_query(self, query: BenchmarkQuery) -> PlannedQuery:
        def body(q: BenchmarkQuery):
            arm_plans = self._arm_plans(q)
            vectors = np.vstack([vec for _, _, vec in arm_plans])
            predictions = self._predict(vectors)
            best = int(np.argmin(predictions))
            arm, result, _ = arm_plans[best]
            metadata = {
                "chosen_arm": arm.name,
                "predicted_ms": float(np.exp(predictions[best])) if self._model.is_trained else None,
                "strategy": result.strategy,
            }
            return result.plan, arm, result.planning_time_ms, metadata

        return self._timed_inference(body, query)
