"""The classical baseline: the simulated PostgreSQL optimizer itself.

PostgreSQL needs no training (its "model" is the cost-based planner with
up-to-date statistics), so training time is zero (Figure 6) and its inference
time is zero — planning time is the only pre-execution cost (Section 8.2.1).
"""

from __future__ import annotations

from repro.lqo.base import BaseOptimizer, PlannedQuery, TrainingReport
from repro.plans.hints import NO_HINTS
from repro.workloads.workload import BenchmarkQuery


class PostgresBaseline(BaseOptimizer):
    """Plans every query with the built-in cost-based optimizer."""

    name = "postgres"
    requires_training = False
    integrates_with_dbms = True

    def fit(self, train_queries: list[BenchmarkQuery]) -> TrainingReport:
        """No-op: the classical optimizer does not train."""
        report = TrainingReport(
            method=self.name,
            training_time_s=0.0,
            executed_plans=0,
            iterations=0,
            notes="classical optimizer; no training required",
        )
        self.training_report = report
        return report

    def plan_query(self, query: BenchmarkQuery) -> PlannedQuery:
        result = self.env.plan_with_hints(query.bound, NO_HINTS)
        return PlannedQuery(
            query_id=query.query_id,
            plan=result.plan,
            hints=NO_HINTS,
            inference_time_ms=0.0,
            planning_time_ms=result.planning_time_ms,
            method=self.name,
            metadata={"strategy": result.strategy},
        )
