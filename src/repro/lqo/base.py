"""Common infrastructure for learned query optimizers.

:class:`LQOEnvironment` bundles everything an optimizer needs to interact with
the simulated DBMS — planner, execution engine, encoders, measurement helpers —
so that every method trains and is evaluated under identical conditions (the
paper's core requirement for its end-to-end benchmarking framework).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import PostgresConfig
from repro.encoding.plan_encoding import PlanTreeEncoder
from repro.encoding.query_encoding import QueryEncoder
from repro.errors import ExperimentError
from repro.executor.engine import ExecutionResult, create_engine
from repro.ml.tree_models import TreeConvolutionEncoder, TreeLSTMEncoder
from repro.optimizer.planner import Planner, PlannerResult
from repro.plans.hints import NO_HINTS, HintSet
from repro.plans.physical import JoinNode, PlanNode, ScanNode, strip_decorations
from repro.plans.properties import join_order_of
from repro.runtime.fingerprint import stable_seed
from repro.runtime.plan_cache import PlanCache
from repro.sql.binder import BoundQuery
from repro.storage.database import Database
from repro.workloads.workload import BenchmarkQuery


@dataclass
class PlannedQuery:
    """The outcome of asking an optimizer to plan one query."""

    query_id: str
    plan: PlanNode
    hints: HintSet
    inference_time_ms: float
    planning_time_ms: float
    method: str
    metadata: dict = field(default_factory=dict)


@dataclass
class TrainingReport:
    """End-to-end training accounting for one optimizer (Figure 6)."""

    method: str
    training_time_s: float
    executed_plans: int
    iterations: int
    notes: str = ""


@dataclass
class MeasuredExecution:
    """Latency measurements of one executed plan under the hot-cache protocol."""

    execution_times_ms: list[float]
    timed_out: bool
    result: ExecutionResult

    @property
    def reported_ms(self) -> float:
        """The paper's protocol: execute three times, report the third run."""
        return self.execution_times_ms[-1]

    @property
    def first_run_ms(self) -> float:
        return self.execution_times_ms[0]


class LQOEnvironment:
    """Shared DBMS access layer for every optimizer."""

    def __init__(
        self,
        database: Database,
        config: PostgresConfig | None = None,
        training_runs_per_plan: int = 1,
        evaluation_runs_per_plan: int = 3,
        hidden_size: int = 48,
        seed: int = 0,
        deterministic_timing: bool = False,
        plan_cache: PlanCache | None = None,
        engine: str = "columnar",
    ) -> None:
        self.database = database
        self.config = config or database.config
        self.planner = Planner(database, self.config, plan_cache=plan_cache)
        #: Execution engine, selected by kind (see :data:`repro.config.ENGINE_KINDS`).
        #: Both kinds produce byte-identical results and simulated timings.
        self.engine = create_engine(database, self.config, kind=engine)
        self.query_encoder = QueryEncoder(database)
        self.plan_encoder = PlanTreeEncoder(database.schema)
        self.tree_conv = TreeConvolutionEncoder(self.plan_encoder, hidden_size=hidden_size, seed=seed + 17)
        self.tree_lstm = TreeLSTMEncoder(self.plan_encoder, hidden_size=hidden_size, seed=seed + 23)
        self.training_runs_per_plan = training_runs_per_plan
        self.evaluation_runs_per_plan = evaluation_runs_per_plan
        self.seed = seed
        #: When set, inference and training wall-clock measurements are
        #: replaced by deterministic simulated times, so results are
        #: byte-identical across runs and independent of scheduling — the
        #: parallel experiment runtime requires this for reproducible fan-out.
        self.deterministic_timing = deterministic_timing
        #: Count of plans executed against the DBMS (training-data accounting).
        self.executed_plan_count = 0

    # ------------------------------------------------------------------- planning
    def plan_with_hints(self, query: BoundQuery, hints: HintSet = NO_HINTS) -> PlannerResult:
        """Plan a query through the simulated DBMS planner (optionally hinted)."""
        return self.planner.plan_with_info(query, hints)

    def hinted_planning_time_ms(self, query: BoundQuery) -> float:
        """Simulated planning time when an LQO hands the DBMS a fully hinted plan."""
        return 0.4 + 0.03 * query.num_relations + 0.02 * len(query.filters)

    def simulated_inference_ms(self, query: BoundQuery, method: str) -> float:
        """Deterministic stand-in for wall-clock inference time.

        Grows with query size (every LQO featurizes the query and scores
        candidate plans) and is differentiated per method via a stable digest,
        so the decomposition plots keep distinct per-method inference bands.
        """
        method_factor = 1.0 + (stable_seed(method, bits=8) / 255.0)
        return method_factor * (0.6 + 0.15 * query.num_relations + 0.05 * len(query.filters))

    def simulated_training_time_s(self, executed_plans: int, n_queries: int, iterations: int) -> float:
        """Deterministic stand-in for wall-clock training time (Figure 6 axis)."""
        return 0.002 * executed_plans + 0.0005 * n_queries + 0.001 * max(iterations, 0)

    def recost(self, query: BoundQuery, plan: PlanNode) -> PlanNode:
        """Attach planner estimates to an externally constructed plan."""
        return self.planner.cost_model.recost_plan(query, plan)

    # ------------------------------------------------------------------ execution
    def execute_plan(
        self,
        query: BoundQuery,
        plan: PlanNode,
        runs: int | None = None,
        timeout_ms: float | None = None,
        cold_start: bool = False,
    ) -> MeasuredExecution:
        """Execute a plan ``runs`` times under the hot-cache protocol.

        ``cold_start`` drops the buffer pool before the first run (the
        framework's cold-cache reset); subsequent runs re-use the warmed
        caches, so the last run is the hot-cache measurement the paper reports.
        """
        if runs is None:
            runs = self.evaluation_runs_per_plan
        if runs <= 0:
            raise ExperimentError("must execute a plan at least once")
        if cold_start:
            self.database.drop_caches()
        times: list[float] = []
        timed_out = False
        result: ExecutionResult | None = None
        for _ in range(runs):
            result = self.engine.execute(query, plan, timeout_ms=timeout_ms)
            self.executed_plan_count += 1
            times.append(result.execution_time_ms)
            if result.timed_out:
                timed_out = True
                break
        assert result is not None
        return MeasuredExecution(execution_times_ms=times, timed_out=timed_out, result=result)

    def training_latency(
        self,
        query: BoundQuery,
        plan: PlanNode,
        timeout_ms: float | None = None,
    ) -> tuple[float, bool]:
        """Latency used as a training target (single run, as most LQOs do)."""
        measured = self.execute_plan(
            query, plan, runs=self.training_runs_per_plan, timeout_ms=timeout_ms
        )
        return measured.reported_ms, measured.timed_out

    # ------------------------------------------------------------------ featurization
    def query_vector(self, query: BoundQuery) -> np.ndarray:
        return self.query_encoder.encode_vector(query).astype(np.float64)

    def plan_vector(self, plan: PlanNode, use_lstm: bool = False) -> np.ndarray:
        encoder = self.tree_lstm if use_lstm else self.tree_conv
        return encoder.encode_plan(plan)

    def query_plan_vector(self, query: BoundQuery, plan: PlanNode, use_lstm: bool = False) -> np.ndarray:
        return np.concatenate([self.query_vector(query), self.plan_vector(plan, use_lstm)])

    @property
    def query_plan_vector_size(self) -> int:
        return self.query_encoder.encoding_size + self.tree_conv.output_size

    @property
    def plan_vector_size(self) -> int:
        return self.tree_conv.output_size

    # ------------------------------------------------------------------- hints
    def hints_from_plan(self, query: BoundQuery, plan: PlanNode) -> HintSet:
        """Derive a pg_hint_plan-style hint set that pins down a produced plan."""
        core = strip_decorations(plan)
        scan_methods = {}
        join_methods = {}
        for node in core.walk():
            if isinstance(node, ScanNode):
                scan_methods[node.alias] = node.scan_type
            elif isinstance(node, JoinNode):
                join_methods[frozenset(node.aliases)] = node.join_type
        return HintSet(
            leading=join_order_of(core),
            join_order_exact=True,
            join_methods=join_methods,
            scan_methods=scan_methods,
            name="lqo-plan",
        )


class BaseOptimizer(abc.ABC):
    """Contract every (learned) optimizer implements."""

    #: Short machine name (also the registry key).
    name: str = "base"
    #: Whether the method needs a training phase at all.
    requires_training: bool = True
    #: Whether the method runs inside the DBMS (its inference time is reported
    #: as part of the planning time, as Bao's is in Figure 4).
    integrates_with_dbms: bool = False

    def __init__(self, env: LQOEnvironment) -> None:
        self.env = env
        self.training_report: TrainingReport | None = None

    # -- training ---------------------------------------------------------------
    @abc.abstractmethod
    def fit(self, train_queries: list[BenchmarkQuery]) -> TrainingReport:
        """Train on the given queries and return the end-to-end training report."""

    # -- inference ---------------------------------------------------------------
    @abc.abstractmethod
    def plan_query(self, query: BenchmarkQuery) -> PlannedQuery:
        """Produce the plan (and hint set) this method would execute for ``query``."""

    # -- helpers shared by implementations --------------------------------------------
    def _timed_fit(self, body, train_queries: list[BenchmarkQuery]) -> TrainingReport:
        """Run a training body while accounting wall-clock time and executed plans."""
        start_plans = self.env.executed_plan_count
        start = time.perf_counter()
        iterations = body(train_queries)
        elapsed = time.perf_counter() - start
        executed = self.env.executed_plan_count - start_plans
        if self.env.deterministic_timing:
            elapsed = self.env.simulated_training_time_s(
                executed, len(train_queries), int(iterations or 0)
            )
        report = TrainingReport(
            method=self.name,
            training_time_s=elapsed,
            executed_plans=executed,
            iterations=int(iterations or 0),
        )
        self.training_report = report
        return report

    def _timed_inference(self, body, query: BenchmarkQuery) -> PlannedQuery:
        """Run an inference body while measuring wall-clock inference time."""
        start = time.perf_counter()
        plan, hints, planning_time_ms, metadata = body(query)
        inference_ms = (time.perf_counter() - start) * 1000.0
        if self.env.deterministic_timing:
            inference_ms = self.env.simulated_inference_ms(query.bound, self.name)
        return PlannedQuery(
            query_id=query.query_id,
            plan=plan,
            hints=hints,
            inference_time_ms=inference_ms,
            planning_time_ms=planning_time_ms,
            method=self.name,
            metadata=metadata,
        )
