"""RTOS, Lero and LOGER — methods documented in Table 1 but, as in the paper,
excluded from the main end-to-end evaluation.

The paper excludes these three from its experiments because they are either
unavailable, require disabling parallel execution, or need extensive
engineering to parse EXPLAIN output (Section 8.2).  They are still part of the
encoding inventory (Table 1), so functional — but deliberately simplified —
implementations are provided here and flagged accordingly in the registry.
"""

from __future__ import annotations

import numpy as np

from repro.lqo.base import LQOEnvironment, PlannedQuery, TrainingReport
from repro.lqo.bao import BaoOptimizer
from repro.lqo.neo import NeoOptimizer
from repro.ml.nn import PairwiseRanker
from repro.plans.hints import BAO_HINT_SETS, HintSet, OperatorToggles
from repro.workloads.workload import BenchmarkQuery


class RtosOptimizer(NeoOptimizer):
    """RTOS: Tree-LSTM value model restricted to left-deep join trees.

    RTOS builds the join order as a sequence of two-table joins (ignoring scan
    choices) with a graph/Tree-LSTM state representation.  Here it reuses the
    Neo search with two differences recorded in Table 1: the Tree-LSTM plan
    composition and a left-deep-only action space.
    """

    name = "rtos"
    left_deep_only = True
    use_lstm_encoder = True


class LogerOptimizer(BaoOptimizer):
    """LOGER (simplified): learned restriction of *join operators* per query.

    LOGER recommends which join type not to use (plus a join order found by
    ε-beam search).  The simplified implementation keeps the "which join
    operator to disable" decision — a hint-set choice over join-type toggles —
    scored with a Tree-LSTM plan representation, and leaves the join order to
    the DBMS.
    """

    name = "loger"
    integrates_with_dbms = False

    _JOIN_TOGGLE_ARMS: tuple[HintSet, ...] = (
        HintSet(name="all_on"),
        HintSet(toggles=OperatorToggles(nestloop=False), name="no_nestloop"),
        HintSet(toggles=OperatorToggles(mergejoin=False), name="no_mergejoin"),
        HintSet(toggles=OperatorToggles(hashjoin=False), name="no_hashjoin"),
    )

    def __init__(self, env: LQOEnvironment, **kwargs) -> None:
        kwargs.setdefault("arms", self._JOIN_TOGGLE_ARMS)
        super().__init__(env, **kwargs)

    def _arm_plans(self, query: BenchmarkQuery):
        out = []
        for arm in self.arms:
            result = self.env.plan_with_hints(query.bound, arm)
            vector = self.env.plan_vector(result.plan, use_lstm=True)
            out.append((arm, result, vector))
        return out


class LeroOptimizer(BaoOptimizer):
    """Lero (simplified): learning-to-rank over DBMS-generated candidate plans.

    Lero generates candidate plans by perturbing the DBMS's cardinality
    estimates and learns a pairwise comparator to pick between them.  The
    simplified implementation generates its candidate plans through hint-set
    perturbation (the closest lever the simulator exposes) and keeps Lero's
    defining trait: a pairwise plan comparator rather than a latency regressor,
    trained and applied on plan encodings only (Table 1: no query encoding).
    """

    name = "lero"
    integrates_with_dbms = True

    def __init__(self, env: LQOEnvironment, **kwargs) -> None:
        kwargs.setdefault("arms", BAO_HINT_SETS)
        super().__init__(env, **kwargs)
        self._comparator = PairwiseRanker(input_size=env.plan_vector_size, seed=31)

    def fit(self, train_queries: list[BenchmarkQuery]) -> TrainingReport:
        def body(queries: list[BenchmarkQuery]) -> int:
            better_rows: list[np.ndarray] = []
            worse_rows: list[np.ndarray] = []
            for query in queries:
                measured: list[tuple[float, np.ndarray]] = []
                for arm, result, vector in self._arm_plans(query):
                    latency, timed_out = self.env.training_latency(query.bound, result.plan)
                    if timed_out:
                        latency *= 2.0
                    measured.append((latency, vector))
                measured.sort(key=lambda item: item[0])
                for fast in range(len(measured)):
                    for slow in range(fast + 1, len(measured)):
                        if measured[slow][0] <= measured[fast][0] * 1.02:
                            continue
                        better_rows.append(measured[fast][1])
                        worse_rows.append(measured[slow][1])
            if better_rows:
                self._comparator = PairwiseRanker(input_size=self.env.plan_vector_size, seed=31)
                self._comparator.fit_pairs(np.vstack(better_rows), np.vstack(worse_rows), epochs=50)
            return 1

        return self._timed_fit(body, train_queries)

    def plan_query(self, query: BenchmarkQuery) -> PlannedQuery:
        def body(q: BenchmarkQuery):
            arm_plans = self._arm_plans(q)
            if self._comparator.is_trained:
                matrix = np.vstack([vec for _, _, vec in arm_plans])
                scores = self._comparator.score(matrix)
            else:
                scores = np.asarray([result.plan.estimated_cost for _, result, _ in arm_plans])
            best = int(np.argmin(scores))
            arm, result, _ = arm_plans[best]
            return result.plan, arm, result.planning_time_ms, {"chosen_arm": arm.name}

        return self._timed_inference(body, query)
