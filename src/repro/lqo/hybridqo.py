"""HybridQO: cost-based MCTS hint generation plus a learned plan selector.

HybridQO (Yu et al., VLDB 2022) mixes cost and latency signals in two stages
(Section 2 of the paper): a Monte-Carlo tree search over the top of the join
order explores promising "leading" prefixes using the (cheap) cost model as
its target, each prefix is turned into a hint and handed to the DBMS to obtain
a candidate plan, and a learned latency model picks the candidate to execute.
Because only the prefix is constrained, the DBMS still optimizes the rest of
the join order — which is why HybridQO tends to stay close to PostgreSQL and
occasionally beats it (Figures 4 and 5).
"""

from __future__ import annotations

import math

import numpy as np

from repro.lqo.base import BaseOptimizer, LQOEnvironment, PlannedQuery, TrainingReport
from repro.ml.nn import MLPRegressor
from repro.ml.replay import Experience, ReplayBuffer
from repro.optimizer.planner import PlannerResult
from repro.plans.hints import NO_HINTS, HintSet
from repro.sql.binder import BoundQuery
from repro.workloads.workload import BenchmarkQuery


class _MCTSNode:
    """A node of the prefix search tree: a partial join-order prefix."""

    __slots__ = ("prefix", "children", "visits", "total_reward")

    def __init__(self, prefix: tuple[str, ...]) -> None:
        self.prefix = prefix
        self.children: dict[str, "_MCTSNode"] = {}
        self.visits = 0
        self.total_reward = 0.0

    def ucb_score(self, parent_visits: int, exploration: float) -> float:
        if self.visits == 0:
            return float("inf")
        mean = self.total_reward / self.visits
        return mean + exploration * math.sqrt(math.log(max(parent_visits, 1)) / self.visits)


class HybridQOOptimizer(BaseOptimizer):
    """MCTS-generated leading hints with a learned latency-based selector."""

    name = "hybridqo"

    def __init__(
        self,
        env: LQOEnvironment,
        mcts_iterations: int = 40,
        prefix_length: int = 3,
        top_k_prefixes: int = 3,
        exploration: float = 0.7,
        seed: int = 0,
    ) -> None:
        super().__init__(env)
        self.mcts_iterations = mcts_iterations
        self.prefix_length = prefix_length
        self.top_k_prefixes = top_k_prefixes
        self.exploration = exploration
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._buffer = ReplayBuffer()
        self._model = MLPRegressor(input_size=env.query_plan_vector_size, seed=seed + 11)

    # ------------------------------------------------------------------ MCTS
    def _rollout_cost(self, query: BoundQuery, prefix: tuple[str, ...]) -> float:
        """Cost of completing a prefix greedily (the MCTS reward signal)."""
        hints = HintSet.from_leading_prefix(prefix) if prefix else NO_HINTS
        result = self.env.plan_with_hints(query, hints)
        return float(result.plan.estimated_cost)

    def _candidate_prefixes(self, query: BoundQuery) -> list[tuple[str, ...]]:
        """Run MCTS over join-order prefixes and return the most visited ones."""
        aliases = list(query.aliases)
        max_len = min(self.prefix_length, len(aliases))
        root = _MCTSNode(())
        baseline = self._rollout_cost(query, ())

        def expandable(node: _MCTSNode) -> list[str]:
            remaining = [a for a in aliases if a not in node.prefix]
            if not node.prefix:
                return remaining
            graph_connected = [
                a for a in remaining if query.joins_between(set(node.prefix), {a})
            ]
            return graph_connected or remaining

        for _ in range(self.mcts_iterations):
            node = root
            path = [root]
            # Selection / expansion.
            while len(node.prefix) < max_len:
                options = expandable(node)
                if not options:
                    break
                unvisited = [a for a in options if a not in node.children]
                if unvisited:
                    alias = str(self._rng.choice(unvisited))
                    child = _MCTSNode(node.prefix + (alias,))
                    node.children[alias] = child
                    node = child
                    path.append(node)
                    break
                node = max(
                    node.children.values(),
                    key=lambda c: c.ucb_score(node.visits, self.exploration),
                )
                path.append(node)
            # Simulation: relative cost improvement over the unhinted plan.
            cost = self._rollout_cost(query, node.prefix)
            reward = float(np.clip((baseline - cost) / max(baseline, 1e-6), -1.0, 1.0))
            # Backpropagation.
            for visited in path:
                visited.visits += 1
                visited.total_reward += reward

        # Collect the most visited prefixes of maximal depth.
        prefixes: list[tuple[tuple[str, ...], int]] = []

        def collect(node: _MCTSNode) -> None:
            for child in node.children.values():
                prefixes.append((child.prefix, child.visits))
                collect(child)

        collect(root)
        prefixes.sort(key=lambda item: (-len(item[0]), -item[1]))
        chosen = [prefix for prefix, _ in prefixes[: self.top_k_prefixes]]
        if not chosen:
            chosen = [()]
        return chosen

    def _candidate_plans(self, query: BoundQuery) -> list[tuple[HintSet, PlannerResult]]:
        """Turn MCTS prefixes into hints and plan each candidate through the DBMS."""
        candidates: list[tuple[HintSet, PlannerResult]] = [(NO_HINTS, self.env.plan_with_hints(query))]
        for prefix in self._candidate_prefixes(query):
            if not prefix:
                continue
            hints = HintSet.from_leading_prefix(prefix, name=f"lead:{'-'.join(prefix)}")
            candidates.append((hints, self.env.plan_with_hints(query, hints)))
        return candidates

    # ------------------------------------------------------------------ training
    def _retrain(self, seed_offset: int = 0) -> None:
        features, targets = self._buffer.training_matrix()
        if len(targets) < 8:
            return
        self._model = MLPRegressor(
            input_size=self.env.query_plan_vector_size, seed=self.seed + 11 + seed_offset
        )
        self._model.fit(features, targets, epochs=40, seed=self.seed + seed_offset)

    def fit(self, train_queries: list[BenchmarkQuery]) -> TrainingReport:
        def body(queries: list[BenchmarkQuery]) -> int:
            for query in queries:
                candidates = self._candidate_plans(query.bound)
                for hints, result in candidates:
                    latency, timed_out = self.env.training_latency(query.bound, result.plan)
                    self._buffer.add(
                        Experience(
                            query_id=query.query_id,
                            features=self.env.query_plan_vector(query.bound, result.plan),
                            latency_ms=latency,
                            timed_out=timed_out,
                            metadata={"hint": hints.name},
                        )
                    )
            self._retrain()
            return 1

        return self._timed_fit(body, train_queries)

    # ------------------------------------------------------------------ inference
    def plan_query(self, query: BenchmarkQuery) -> PlannedQuery:
        def body(q: BenchmarkQuery):
            candidates = self._candidate_plans(q.bound)
            if self._model.is_trained:
                matrix = np.vstack(
                    [self.env.query_plan_vector(q.bound, result.plan) for _, result in candidates]
                )
                scores = self._model.predict(matrix)
            else:
                scores = np.asarray([result.plan.estimated_cost for _, result in candidates])
            best = int(np.argmin(scores))
            hints, result = candidates[best]
            return result.plan, hints, result.planning_time_ms, {
                "chosen_hint": hints.name or "postgres",
                "n_candidates": len(candidates),
            }

        return self._timed_inference(body, query)
