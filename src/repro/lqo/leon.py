"""LEON: an ML-aided optimizer based on learning-to-rank over enumerated plans.

LEON (Chen et al., VLDB 2023) keeps the DBMS's dynamic-programming enumeration
but replaces pure cost-based pruning with a learned pairwise ranking model:
candidate sub-plans of every equivalence class are scored and only the most
promising are kept.  The approach is accurate but pays for it with extreme
inference times — the paper measures hours per workload on JOB because tens of
thousands of sub-plans are scored per query (Section 8.2.2).  The same
characteristic shows up here: LEON's inference walks a DP lattice (or a wide
beam for very large queries) and scores every candidate with the ranker, so it
is by far the slowest method at inference time, while its executed plans are
often competitive.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.lqo.base import BaseOptimizer, LQOEnvironment, PlannedQuery, TrainingReport
from repro.ml.nn import PairwiseRanker
from repro.plans.hints import BAO_HINT_SETS
from repro.plans.physical import PlanNode
from repro.sql.binder import BoundQuery
from repro.workloads.workload import BenchmarkQuery


class LeonOptimizer(BaseOptimizer):
    """Learning-to-rank guided plan enumeration with per-class pruning."""

    name = "leon"

    def __init__(
        self,
        env: LQOEnvironment,
        candidates_per_class: int = 2,
        max_dp_relations: int = 7,
        beam_width: int = 6,
        executed_candidates_per_query: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__(env)
        self.candidates_per_class = candidates_per_class
        self.max_dp_relations = max_dp_relations
        self.beam_width = beam_width
        self.executed_candidates_per_query = executed_candidates_per_query
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._ranker = PairwiseRanker(input_size=env.query_plan_vector_size, seed=seed + 7)

    # ------------------------------------------------------------------ features
    def _features(self, query: BoundQuery, plan: PlanNode) -> np.ndarray:
        return self.env.query_plan_vector(query, plan)

    def _score(self, query: BoundQuery, plans: list[PlanNode]) -> np.ndarray:
        """Rank candidate plans: learned score when trained, else cost estimates."""
        if not plans:
            return np.empty(0)
        if self._ranker.is_trained:
            matrix = np.vstack([self._features(query, plan) for plan in plans])
            return self._ranker.score(matrix)
        return np.asarray([plan.estimated_cost for plan in plans])

    # ------------------------------------------------------------------ training
    def _candidate_plans_for_training(self, query: BenchmarkQuery) -> list[PlanNode]:
        """Diverse candidate plans: the DBMS plan, hint-set plans and random orders."""
        from repro.optimizer.enumeration import left_deep_plan_from_order

        plans: list[PlanNode] = []
        seen: set[str] = set()

        def add(plan: PlanNode) -> None:
            signature = plan.pretty()
            if signature not in seen:
                seen.add(signature)
                plans.append(plan)

        add(self.env.plan_with_hints(query.bound).plan)
        for arm in BAO_HINT_SETS[1:4]:
            add(self.env.plan_with_hints(query.bound, arm).plan)
        aliases = list(query.bound.aliases)
        for _ in range(2):
            order = list(aliases)
            self._rng.shuffle(order)
            add(left_deep_plan_from_order(query.bound, self.env.planner.cost_model, order))
        return plans

    def fit(self, train_queries: list[BenchmarkQuery]) -> TrainingReport:
        def body(queries: list[BenchmarkQuery]) -> int:
            better_rows: list[np.ndarray] = []
            worse_rows: list[np.ndarray] = []
            for query in queries:
                candidates = self._candidate_plans_for_training(query)
                candidates = candidates[: self.executed_candidates_per_query]
                measured: list[tuple[float, np.ndarray]] = []
                for plan in candidates:
                    latency, timed_out = self.env.training_latency(query.bound, plan)
                    if timed_out:
                        latency = latency * 2.0
                    measured.append((latency, self._features(query.bound, plan)))
                measured.sort(key=lambda item: item[0])
                for (fast_latency, fast_vec), (slow_latency, slow_vec) in combinations(measured, 2):
                    if slow_latency <= fast_latency * 1.02:
                        continue  # skip near-ties; they carry no ranking signal
                    better_rows.append(fast_vec)
                    worse_rows.append(slow_vec)
            if better_rows:
                self._ranker = PairwiseRanker(
                    input_size=self.env.query_plan_vector_size, seed=self.seed + 7
                )
                self._ranker.fit_pairs(
                    np.vstack(better_rows), np.vstack(worse_rows), epochs=50, seed=self.seed
                )
            return 1

        return self._timed_fit(body, train_queries)

    # ------------------------------------------------------------------ inference
    def _dp_enumerate(self, query: BoundQuery) -> PlanNode:
        """DP over connected subsets keeping the top-k ranked candidates per class."""
        cost_model = self.env.planner.cost_model
        aliases = list(query.aliases)
        index_of = {alias: i for i, alias in enumerate(aliases)}
        n = len(aliases)
        table: dict[int, list[PlanNode]] = {}
        for alias in aliases:
            table[1 << index_of[alias]] = [cost_model.best_scan(query, alias)]

        for size in range(2, n + 1):
            for combo in combinations(range(n), size):
                mask = 0
                for i in combo:
                    mask |= 1 << i
                candidates: list[PlanNode] = []
                sub = (mask - 1) & mask
                while sub:
                    other = mask ^ sub
                    if sub in table and other in table:
                        for left in table[sub]:
                            for right in table[other]:
                                predicates = query.joins_between(left.aliases, right.aliases)
                                if not predicates:
                                    continue
                                candidates.append(
                                    cost_model.best_join(query, left, right, predicates=predicates)
                                )
                    sub = (sub - 1) & mask
                if candidates:
                    scores = self._score(query, candidates)
                    order = np.argsort(scores)[: self.candidates_per_class]
                    table[mask] = [candidates[i] for i in order]

        full_mask = (1 << n) - 1
        if full_mask in table:
            finalists = table[full_mask]
            scores = self._score(query, finalists)
            return finalists[int(np.argmin(scores))]
        return self.env.plan_with_hints(query).plan

    def _beam_search(self, query: BoundQuery) -> PlanNode:
        """Ranked beam search over left-deep orders for very large queries."""
        cost_model = self.env.planner.cost_model
        aliases = list(query.aliases)
        beams: list[PlanNode] = [cost_model.best_scan(query, alias) for alias in aliases]
        scores = self._score(query, beams)
        order = np.argsort(scores)[: self.beam_width]
        beams = [beams[i] for i in order]
        for _ in range(len(aliases) - 1):
            expansions: list[PlanNode] = []
            for beam in beams:
                remaining = [alias for alias in aliases if alias not in beam.aliases]
                connected = [
                    alias for alias in remaining if query.joins_between(beam.aliases, {alias})
                ] or remaining
                for alias in connected:
                    right = cost_model.best_scan(query, alias)
                    expansions.append(cost_model.best_join(query, beam, right))
            if not expansions:
                break
            scores = self._score(query, expansions)
            order = np.argsort(scores)[: self.beam_width]
            beams = [expansions[i] for i in order]
        complete = [plan for plan in beams if plan.aliases == frozenset(aliases)]
        if complete:
            scores = self._score(query, complete)
            return complete[int(np.argmin(scores))]
        return self.env.plan_with_hints(query).plan

    def plan_query(self, query: BenchmarkQuery) -> PlannedQuery:
        def body(q: BenchmarkQuery):
            if q.bound.num_relations <= self.max_dp_relations:
                plan = self._dp_enumerate(q.bound)
                strategy = "ranked-dp"
            else:
                plan = self._beam_search(q.bound)
                strategy = "ranked-beam"
            hints = self.env.hints_from_plan(q.bound, plan)
            planning_time = self.env.hinted_planning_time_ms(q.bound)
            return plan, hints, planning_time, {"strategy": strategy}

        return self._timed_inference(body, query)
