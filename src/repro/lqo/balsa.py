"""Balsa: learning a query optimizer without expert demonstrations.

Balsa (Yang et al., SIGMOD 2022) reuses Neo's architecture but changes the
training pipeline in three ways the paper highlights (Section 2):

* it bootstraps from the DBMS **cost model** instead of executed latencies
  (no expert demonstrations),
* it applies **timeouts** to training executions so catastrophically bad plans
  do not stall training,
* it trains **on-policy**: each retraining round uses the data points produced
  by the most recent model state rather than the full replay buffer.
"""

from __future__ import annotations

from repro.lqo.neo import NeoOptimizer


class BalsaOptimizer(NeoOptimizer):
    """Neo-style search with cost bootstrap, training timeouts and on-policy updates."""

    name = "balsa"
    on_policy = True
    use_timeouts = True
    bootstrap_from_cost = True
