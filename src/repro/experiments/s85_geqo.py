"""Section 8.5: the GEQO ablation.

PostgreSQL runs the JOB workload with and without the genetic query optimizer.
Expected shape: fewer affected queries than the scan ablation, but among the
slow, many-join templates the differences are significant in both directions —
so an LQO that merely *steers* PostgreSQL should leave GEQO enabled.
"""

from __future__ import annotations

from repro.core.ablations import AblationStudyResult, geqo_ablation
from repro.core.report import format_table
from repro.experiments.common import job_context


def run(
    scale: float | None = None,
    hot_samples: int = 5,
    query_ids: list[str] | None = None,
) -> AblationStudyResult:
    context = job_context(scale)
    return geqo_ablation(
        context.database, context.workload, hot_samples=hot_samples, query_ids=query_ids
    )


def rows(result: AblationStudyResult) -> list[dict[str, object]]:
    return [
        {
            "query_id": outcome.query_id,
            "geqo_on_ms": round(outcome.baseline_ms, 3),
            "geqo_off_ms": round(outcome.ablated_ms, 3),
            "slowdown_factor": round(outcome.slowdown_factor, 2),
            "p_value": round(outcome.p_value, 4),
            "significant": outcome.significant(),
        }
        for outcome in sorted(result.outcomes, key=lambda o: -abs(o.difference_ms))
    ]


def main(scale: float | None = None) -> str:
    result = run(scale)
    significant = result.significant_queries(threshold_ms=0.25)
    lines = [
        format_table(rows(result)[:30], title="Section 8.5: disabling the genetic query optimizer"),
        "",
        f"statistically significant changes: {len(significant)} queries",
        "top speedups from disabling GEQO: "
        + ", ".join(f"{o.query_id} ({o.speedup_factor:.1f}x)" for o in result.top_speedups(3)),
        "top slowdowns from disabling GEQO: "
        + ", ".join(f"{o.query_id} ({o.slowdown_factor:.1f}x)" for o in result.top_slowdowns(3)),
        "Expected shape (paper): a handful of significant queries; disabling GEQO helps some "
        "(30a: 1.6x) and hurts others (24b: 9.9x slower).",
    ]
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
