"""Shared context construction for the experiment drivers.

Building the synthetic databases and binding the workloads takes a couple of
hundred milliseconds; the experiments and benchmark harness share the results
through this module's memoized constructors.  The default scale keeps a full
figure-4-style run in the minutes range; pass a larger ``scale`` (or set the
``REPRO_SCALE`` environment variable) for bigger databases.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.catalog.imdb import generate_imdb, generate_imdb_half
from repro.catalog.stack import generate_stack
from repro.config import SIMULATION_CONFIG, PostgresConfig
from repro.storage.database import Database
from repro.workloads import build_ext_job_workload, build_job_workload, build_stack_workload
from repro.workloads.workload import Workload

#: Default database scale used by the experiment drivers and benchmarks.
DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.5"))


@dataclass
class BenchmarkContext:
    """A database plus its bound workload."""

    database: Database
    workload: Workload

    @property
    def schema_name(self) -> str:
        return self.database.schema.name


@lru_cache(maxsize=8)
def _imdb(scale: float, seed: int) -> Database:
    return generate_imdb(scale=scale, seed=seed, config=SIMULATION_CONFIG)


@lru_cache(maxsize=4)
def _stack(scale: float, seed: int) -> Database:
    return generate_stack(scale=scale, seed=seed, config=SIMULATION_CONFIG)


def job_context(scale: float | None = None, seed: int = 42) -> BenchmarkContext:
    """Synthetic IMDB plus the 113-query JOB-style workload."""
    database = _imdb(scale if scale is not None else DEFAULT_SCALE, seed)
    return BenchmarkContext(database=database, workload=build_job_workload(database.schema))


def stack_context(scale: float | None = None, seed: int = 1337) -> BenchmarkContext:
    """Synthetic StackExchange plus the down-sampled STACK workload."""
    database = _stack(scale if scale is not None else DEFAULT_SCALE, seed)
    return BenchmarkContext(database=database, workload=build_stack_workload(database.schema))


def ext_job_context(scale: float | None = None, seed: int = 42) -> BenchmarkContext:
    """Synthetic IMDB plus the Ext-JOB-style workload (GROUP BY / ORDER BY)."""
    database = _imdb(scale if scale is not None else DEFAULT_SCALE, seed)
    return BenchmarkContext(database=database, workload=build_ext_job_workload(database.schema))


def imdb_half_database(scale: float | None = None, seed: int = 42) -> Database:
    """IMDB-50% for the covariate-shift study (title Bernoulli-sampled at 50%)."""
    return generate_imdb_half(
        scale=scale if scale is not None else DEFAULT_SCALE, seed=seed, config=SIMULATION_CONFIG
    )


def framework_config() -> PostgresConfig:
    """The configuration the paper's framework uses, scaled to the simulation."""
    return SIMULATION_CONFIG
