"""Shared context construction for the experiment drivers.

Contexts are built *spec-first*: every driver database is addressed by a
:class:`~repro.storage.spec.DatabaseSpec` (generator id + scale + seed +
configuration) and materialized through the per-process
:class:`~repro.storage.registry.DatabaseRegistry`, which memoizes the build.
Drivers therefore share one instance per recipe within a process, and the
parallel runtime can ship the spec — not the data — when fanning tasks out to
worker processes.  The default scale keeps a full figure-4-style run in the
minutes range; pass a larger ``scale`` (or set the ``REPRO_SCALE`` environment
variable) for bigger databases.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.config import SIMULATION_CONFIG, PostgresConfig, RuntimeConfig
from repro.storage.database import Database
from repro.storage.registry import get_process_registry
from repro.storage.spec import DatabaseSpec
from repro.workloads import build_ext_job_workload, build_job_workload, build_stack_workload
from repro.workloads.workload import Workload

#: Default database scale used by the experiment drivers and benchmarks.
DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.5"))


@dataclass
class BenchmarkContext:
    """A database plus its bound workload (and the database's build recipe)."""

    database: Database
    workload: Workload
    spec: DatabaseSpec | None = None

    @property
    def schema_name(self) -> str:
        return self.database.schema.name

    @property
    def dispatch_source(self) -> Database | DatabaseSpec:
        """What to hand the experiment runners: the spec when one exists."""
        return self.spec if self.spec is not None else self.database


def job_spec(scale: float | None = None, seed: int = 42) -> DatabaseSpec:
    """Spec of the synthetic IMDB instance the JOB drivers run on."""
    return DatabaseSpec.create(
        "imdb",
        scale=scale if scale is not None else DEFAULT_SCALE,
        seed=seed,
        config=SIMULATION_CONFIG,
    )


def stack_spec(scale: float | None = None, seed: int = 1337) -> DatabaseSpec:
    """Spec of the synthetic StackExchange instance."""
    return DatabaseSpec.create(
        "stack",
        scale=scale if scale is not None else DEFAULT_SCALE,
        seed=seed,
        config=SIMULATION_CONFIG,
    )


def imdb_half_spec(scale: float | None = None, seed: int = 42) -> DatabaseSpec:
    """Spec of IMDB-50% (title Bernoulli-sampled, cascaded) for Section 8.3."""
    return DatabaseSpec.create(
        "imdb-half",
        scale=scale if scale is not None else DEFAULT_SCALE,
        seed=seed,
        config=SIMULATION_CONFIG,
        title_fraction=0.5,
        sample_seed=7,
    )


def job_context(scale: float | None = None, seed: int = 42) -> BenchmarkContext:
    """Synthetic IMDB plus the 113-query JOB-style workload."""
    spec = job_spec(scale, seed)
    database = get_process_registry().get(spec)
    return BenchmarkContext(
        database=database, workload=build_job_workload(database.schema), spec=spec
    )


def stack_context(scale: float | None = None, seed: int = 1337) -> BenchmarkContext:
    """Synthetic StackExchange plus the down-sampled STACK workload."""
    spec = stack_spec(scale, seed)
    database = get_process_registry().get(spec)
    return BenchmarkContext(
        database=database, workload=build_stack_workload(database.schema), spec=spec
    )


def ext_job_context(scale: float | None = None, seed: int = 42) -> BenchmarkContext:
    """Synthetic IMDB plus the Ext-JOB-style workload (GROUP BY / ORDER BY)."""
    spec = job_spec(scale, seed)
    database = get_process_registry().get(spec)
    return BenchmarkContext(
        database=database, workload=build_ext_job_workload(database.schema), spec=spec
    )


def imdb_half_database(scale: float | None = None, seed: int = 42) -> Database:
    """IMDB-50% for the covariate-shift study (title Bernoulli-sampled at 50%)."""
    return get_process_registry().get(imdb_half_spec(scale, seed))


def framework_config() -> PostgresConfig:
    """The configuration the paper's framework uses, scaled to the simulation."""
    return SIMULATION_CONFIG


def distributed_runtime(
    store_dir: str | os.PathLike,
    workers: int = 2,
    shard_count: int = 4,
    queue_dir: str | os.PathLike | None = None,
    queue_url: str | None = None,
    lease_timeout_s: float = 60.0,
    task_retries: int = 1,
    work_stealing: bool = True,
    progress_interval_s: float | None = None,
    queue_secret: str | None = None,
) -> RuntimeConfig:
    """Runtime configuration of a multi-host distributed sweep.

    The sweep writes a :class:`~repro.runtime.result_store.ShardedResultStore`
    under ``store_dir`` (so concurrent writers never contend on one directory)
    and coordinates through a work queue.  By default that queue is file based
    at ``<store_dir>/queue`` and every worker host must mount the store's
    filesystem; pass ``queue_url="tcp://host:port"`` (port ``0`` for an
    ephemeral port) to serve the queue over TCP instead, in which case workers
    share *nothing* with the coordinator and results are uploaded back over
    the socket into the coordinator-local store.  ``workers`` local worker
    processes are launched by the coordinator; start more with
    ``python -m repro.runtime.worker <queue dir | tcp://...>`` on other hosts.
    Failed tasks are retried up to ``task_retries`` times before the sweep
    aborts.

    Tasks are enqueued with shard affinity matching the store shard their
    result routes to, and the coordinator *steals* pending work for starving
    shards unless ``work_stealing`` is disabled.  ``progress_interval_s``
    emits a machine-readable progress snapshot every that many seconds (also
    delivered to ``ParallelExperimentRunner``'s ``progress_callback``).  On an
    untrusted
    network, set ``queue_secret`` (or export ``REPRO_QUEUE_SECRET`` on every
    host): TCP frames are then HMAC-signed and verified before unpickling.
    """
    return RuntimeConfig(
        workers=workers,
        executor_kind="distributed",
        store_dir=str(store_dir),
        shard_count=shard_count,
        queue_dir=None if queue_dir is None else str(queue_dir),
        queue_url=queue_url,
        lease_timeout_s=lease_timeout_s,
        task_retries=task_retries,
        work_stealing=work_stealing,
        progress_interval_s=progress_interval_s,
        queue_secret=queue_secret,
    )
