"""Figure 5: end-to-end comparison of LQOs vs. PostgreSQL on STACK.

Same protocol as Figure 4 but over the STACK workload; the paper's findings
largely carry over, with LEON's inference an order of magnitude faster than on
JOB because STACK queries join fewer tables.
"""

from __future__ import annotations

from repro.config import RuntimeConfig
from repro.core.experiment import ExperimentConfig
from repro.core.report import format_table
from repro.core.splits import SplitSampling
from repro.experiments.common import stack_context
from repro.experiments.figure4 import DEFAULT_SPLITS_PER_SAMPLING, EndToEndResult, run_for_context
from repro.lqo.registry import MAIN_EVALUATION_METHODS
from repro.runtime.result_store import ResultStore


def run(
    scale: float | None = None,
    methods: tuple[str, ...] = MAIN_EVALUATION_METHODS,
    splits_per_sampling: int = DEFAULT_SPLITS_PER_SAMPLING,
    experiment_config: ExperimentConfig | None = None,
    runtime_config: RuntimeConfig | None = None,
    result_store: ResultStore | None = None,
) -> EndToEndResult:
    """Figure 5: the end-to-end comparison on the STACK workload."""
    return run_for_context(
        stack_context(scale),
        methods=methods,
        splits_per_sampling=splits_per_sampling,
        samplings=(
            SplitSampling.LEAVE_ONE_OUT,
            SplitSampling.RANDOM,
            SplitSampling.BASE_QUERY,
        ),
        experiment_config=experiment_config,
        runtime_config=runtime_config,
        result_store=result_store,
    )


def main(scale: float | None = None, methods: tuple[str, ...] = MAIN_EVALUATION_METHODS) -> str:
    result = run(scale, methods=methods)
    lines = [
        format_table(
            result.rows(),
            title="Figure 5: per-method timing decomposition on STACK test sets",
        ),
        "",
        "best end-to-end method per split: "
        + ", ".join(f"{split}={method}" for split, method in result.best_method_per_split().items()),
    ]
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
