"""Figure 2: execution time vs. number of joins for every JOB query.

The paper's point: the number of joins is an irrelevant proxy for execution
time (R² ≈ -0.11 in their measurement), so splitting queries by join count
(as prior work did) does not align train/test groups with the optimization
target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.report import format_table
from repro.core.stats import RegressionResult, linear_regression_r2
from repro.experiments.common import job_context


@dataclass
class Figure2Result:
    """Scatter data plus the regression summary."""

    points: list[dict[str, object]]
    regression: RegressionResult

    def rows(self) -> list[dict[str, object]]:
        return self.points


def run(scale: float | None = None, query_ids: list[str] | None = None) -> Figure2Result:
    """Execute the JOB workload with PostgreSQL and collect (joins, time) points."""
    context = job_context(scale)
    runner = ExperimentRunner(
        context.dispatch_source,
        context.workload,
        experiment_config=ExperimentConfig(executions_per_query=3),
    )
    queries = (
        [context.workload.by_id(qid) for qid in query_ids] if query_ids else context.workload.queries
    )
    baseline = runner.run_postgres_only(queries)
    points = [
        {
            "query_id": timing.query_id,
            "num_joins": timing.num_joins,
            "execution_time_ms": round(timing.execution_time_ms, 3),
        }
        for timing in baseline.timings
    ]
    regression = linear_regression_r2(
        np.asarray([p["num_joins"] for p in points], dtype=float),
        np.asarray([p["execution_time_ms"] for p in points], dtype=float),
    )
    return Figure2Result(points=points, regression=regression)


def main(scale: float | None = None) -> str:
    result = run(scale)
    lines = [
        format_table(
            result.points,
            columns=["query_id", "num_joins", "execution_time_ms"],
            title="Figure 2: execution time per number of joins (PostgreSQL on JOB)",
        ),
        "",
        f"linear regression: slope={result.regression.slope:.3f} "
        f"intercept={result.regression.intercept:.3f} "
        f"R^2={result.regression.r_squared:.3f} (n={result.regression.n})",
        "Expected shape (paper): R^2 near or below zero — join count is a poor proxy "
        "for execution time.",
    ]
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
