"""Figure 6: end-to-end training time vs. combined workload runtime.

Each point is one trained model on one split: the x-axis is the full
wall-clock training time (data collection + model training + evaluation +
artefact generation), the y-axis the summed end-to-end execution time of the
workload's test queries.  The paper's observation: spending more time training
does *not* buy better workload runtimes — the ordering is, if anything,
inverted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.report import format_table
from repro.core.stats import linear_regression_r2
from repro.experiments.figure4 import EndToEndResult
from repro.experiments import figure4, figure5


@dataclass
class TrainingTimePoint:
    """One dot of Figure 6."""

    method: str
    workload: str
    split: str
    training_time_s: float
    workload_runtime_ms: float


def points_from_results(results: list[EndToEndResult]) -> list[TrainingTimePoint]:
    """Convert end-to-end results into Figure 6 scatter points."""
    points: list[TrainingTimePoint] = []
    for result in results:
        for run_result in result.runs:
            points.append(
                TrainingTimePoint(
                    method=run_result.method,
                    workload=result.workload_name,
                    split=run_result.split_name,
                    training_time_s=run_result.training_time_s,
                    workload_runtime_ms=run_result.total_end_to_end_ms,
                )
            )
    return points


def run(
    scale: float | None = None,
    precomputed: list[EndToEndResult] | None = None,
) -> list[TrainingTimePoint]:
    """Collect Figure 6 points, reusing Figure 4/5 results when provided."""
    if precomputed is None:
        precomputed = [figure4.run(scale), figure5.run(scale)]
    return points_from_results(precomputed)


def correlation_summary(points: list[TrainingTimePoint]) -> dict[str, float]:
    """Correlation between training time and workload runtime for learned methods."""
    learned = [p for p in points if p.method != "postgres" and p.training_time_s > 0]
    if len(learned) < 3:
        return {"n": float(len(learned)), "pearson_r": 0.0, "r_squared": 0.0}
    x = np.asarray([p.training_time_s for p in learned])
    y = np.asarray([p.workload_runtime_ms for p in learned])
    r = float(np.corrcoef(x, y)[0, 1])
    regression = linear_regression_r2(x, y)
    return {"n": float(len(learned)), "pearson_r": r, "r_squared": regression.r_squared}


def main(scale: float | None = None) -> str:
    points = run(scale)
    rows = [
        {
            "method": p.method,
            "workload": p.workload,
            "split": p.split,
            "training_time_s": round(p.training_time_s, 2),
            "workload_runtime_ms": round(p.workload_runtime_ms, 1),
        }
        for p in points
    ]
    summary = correlation_summary(points)
    lines = [
        format_table(rows, title="Figure 6: training time vs combined workload runtime"),
        "",
        f"learned methods: n={int(summary['n'])} pearson_r={summary['pearson_r']:.3f} "
        f"R^2={summary['r_squared']:.3f}",
        "Expected shape (paper): no positive payoff from longer training — methods that "
        "train longer do not reach better workload runtimes.",
    ]
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
