"""Table 2: PostgreSQL configurations used across LQO publications."""

from __future__ import annotations

from repro.config import PRESET_TITLES, format_bytes, iter_presets
from repro.core.report import format_table

#: The configuration parameters Table 2 compares, in the paper's order.
TABLE2_PARAMETERS = (
    "host_ram",
    "geqo_threshold",
    "geqo",
    "work_mem",
    "shared_buffers",
    "temp_buffers",
    "effective_cache_size",
    "max_parallel_workers",
    "max_parallel_workers_per_gather",
    "max_worker_processes",
    "enable_bitmapscan",
    "enable_tidscan",
)

_BYTE_PARAMETERS = {
    "host_ram", "work_mem", "shared_buffers", "temp_buffers", "effective_cache_size",
}


def run() -> list[dict[str, object]]:
    """Regenerate Table 2: one row per parameter, one column per preset."""
    rows: list[dict[str, object]] = []
    presets = list(iter_presets())
    for parameter in TABLE2_PARAMETERS:
        row: dict[str, object] = {"parameter": parameter}
        for name, config in presets:
            value = getattr(config, parameter)
            if parameter in _BYTE_PARAMETERS:
                value = format_bytes(int(value))
            elif isinstance(value, bool):
                value = "on" if value else "off"
            row[PRESET_TITLES[name]] = value
        rows.append(row)
    return rows


def deviations() -> dict[str, dict[str, tuple[object, object]]]:
    """Per-preset deviations from PostgreSQL defaults (the paper's bold marks)."""
    return {name: config.diff_from_default() for name, config in iter_presets()}


def main() -> str:
    output = format_table(
        run(), title="Table 2: PostgreSQL configurations (database tuning parameters)"
    )
    print(output)
    return output


if __name__ == "__main__":
    main()
