"""Figure 7 / Section 8.6: robustness of repeated query executions.

Every JOB query is executed many times in succession; the figure shows the
distribution of the normalized difference between the k-th and (k+1)-th
execution.  Expected shape: a large drop from the 1st to the 2nd execution
(the cache warms up), a small residual drop from the 2nd to the 3rd, and no
trend afterwards — which is why the framework reports the third execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.execution_protocol import ExecutionProtocol, RobustnessMeasurement
from repro.core.report import format_table
from repro.experiments.common import job_context


@dataclass
class Figure7Result:
    """Raw measurements plus the per-k aggregation."""

    measurements: list[RobustnessMeasurement]
    aggregated: dict[int, dict[str, float]]

    def mean_drop(self, k: int) -> float:
        """Mean normalized reduction between the k-th and (k+1)-th execution."""
        return self.aggregated.get(k, {}).get("mean", 0.0)


def run(
    scale: float | None = None,
    executions: int = 50,
    query_ids: list[str] | None = None,
    max_k: int = 10,
) -> Figure7Result:
    """Run the robustness study over (a subset of) the JOB workload."""
    context = job_context(scale)
    protocol = ExecutionProtocol(context.dispatch_source)
    measurements = protocol.robustness_study(
        context.workload, executions=executions, query_ids=query_ids
    )
    aggregated = ExecutionProtocol.aggregate_robustness(measurements, max_k=max_k)
    return Figure7Result(measurements=measurements, aggregated=aggregated)


def main(scale: float | None = None, executions: int = 50) -> str:
    result = run(scale, executions=executions)
    rows = [
        {"k": k, **{key: round(value, 4) for key, value in stats.items()}}
        for k, stats in result.aggregated.items()
    ]
    lines = [
        format_table(
            rows,
            title="Figure 7: normalized execution-time difference between successive runs",
        ),
        "",
        f"mean drop 1st -> 2nd execution: {result.mean_drop(1) * 100:.1f}%",
        f"mean drop 2nd -> 3rd execution: {result.mean_drop(2) * 100:.1f}%",
        "Expected shape (paper): a double-digit percentage drop at k=1, ~1% at k=2, "
        "then fluctuations without a trend.",
    ]
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
