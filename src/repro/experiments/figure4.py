"""Figure 4: end-to-end comparison of LQOs vs. PostgreSQL on JOB.

For every sampling strategy (leave-one-out, random, base-query) and every
train/test split, each method is trained on the training queries and evaluated
on the test queries; the figure reports, per method and split, the summed
planning+inference time and the summed execution time over the test set.

Expected shape (paper): PostgreSQL generally best, HybridQO and Bao
competitive on several splits, Neo and Balsa slower, LEON dominated by its
inference time; difficulty increases from leave-one-out over random to
base-query sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import RuntimeConfig
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.metrics import MethodRunResult, workload_summary
from repro.core.report import format_table
from repro.core.splits import DatasetSplit, SplitSampling, generate_splits
from repro.experiments.common import BenchmarkContext, job_context
from repro.lqo.registry import MAIN_EVALUATION_METHODS
from repro.runtime.parallel import ParallelExperimentRunner
from repro.runtime.result_store import ResultStore

#: Default (reduced) experiment grid: one split per sampling strategy.  The
#: paper uses three splits per sampling; pass ``splits_per_sampling=3`` to
#: reproduce the full grid.
DEFAULT_SPLITS_PER_SAMPLING = 1


@dataclass
class EndToEndResult:
    """All method runs of the Figure 4/5 experiment plus the split definitions."""

    workload_name: str
    splits: list[DatasetSplit] = field(default_factory=list)
    runs: list[MethodRunResult] = field(default_factory=list)

    def rows(self) -> list[dict[str, object]]:
        return workload_summary(self.runs)

    def runs_for_split(self, split_name: str) -> list[MethodRunResult]:
        return [run for run in self.runs if run.split_name == split_name]

    def best_method_per_split(self) -> dict[str, str]:
        """Method with the lowest end-to-end total per split."""
        out: dict[str, str] = {}
        for split in self.splits:
            runs = self.runs_for_split(split.name)
            if runs:
                best = min(runs, key=lambda r: r.total_end_to_end_ms)
                out[split.name] = best.method
        return out


def run_for_context(
    context: BenchmarkContext,
    methods: tuple[str, ...] = MAIN_EVALUATION_METHODS,
    splits_per_sampling: int = DEFAULT_SPLITS_PER_SAMPLING,
    samplings: tuple[SplitSampling, ...] = (
        SplitSampling.LEAVE_ONE_OUT,
        SplitSampling.RANDOM,
        SplitSampling.BASE_QUERY,
    ),
    experiment_config: ExperimentConfig | None = None,
    seed: int = 0,
    runtime_config: RuntimeConfig | None = None,
    result_store: ResultStore | None = None,
) -> EndToEndResult:
    """Run the end-to-end comparison over an arbitrary benchmark context.

    Passing a ``runtime_config`` — at *any* worker count — opts into the
    experiment runtime: deterministic per-task seeding and simulated
    inference/training timing, so results are identical whether the grid runs
    on 1 or N workers.  Without it the legacy serial runner (wall-clock
    timing, shared environment seed) is used.  With a ``result_store``,
    completed runs are resumed from disk instead of recomputed.
    """
    # Runners receive the context's dispatch source — the DatabaseSpec when
    # the database came out of the catalog factories — so process-pool fan-out
    # ships the recipe instead of pickling the table data per task.
    runner: ExperimentRunner | ParallelExperimentRunner
    if runtime_config is not None:
        runner = ParallelExperimentRunner(
            context.dispatch_source,
            context.workload,
            experiment_config=experiment_config or ExperimentConfig(),
            runtime_config=runtime_config,
            result_store=result_store,
        )
    else:
        runner = ExperimentRunner(
            context.dispatch_source,
            context.workload,
            experiment_config=experiment_config or ExperimentConfig(),
            result_store=result_store,
        )
    result = EndToEndResult(workload_name=context.workload.name)
    for sampling in samplings:
        splits = generate_splits(
            context.workload, sampling, n_splits=splits_per_sampling, base_seed=seed
        )
        result.splits.extend(splits)
        result.runs.extend(runner.run_comparison(methods, splits))
    return result


def run(
    scale: float | None = None,
    methods: tuple[str, ...] = MAIN_EVALUATION_METHODS,
    splits_per_sampling: int = DEFAULT_SPLITS_PER_SAMPLING,
    experiment_config: ExperimentConfig | None = None,
    runtime_config: RuntimeConfig | None = None,
    result_store: ResultStore | None = None,
) -> EndToEndResult:
    """Figure 4: the end-to-end comparison on the JOB workload."""
    return run_for_context(
        job_context(scale),
        methods=methods,
        splits_per_sampling=splits_per_sampling,
        experiment_config=experiment_config,
        runtime_config=runtime_config,
        result_store=result_store,
    )


def main(scale: float | None = None, methods: tuple[str, ...] = MAIN_EVALUATION_METHODS) -> str:
    result = run(scale, methods=methods)
    lines = [
        format_table(
            result.rows(),
            title="Figure 4: per-method timing decomposition on JOB test sets",
        ),
        "",
        "best end-to-end method per split: "
        + ", ".join(f"{split}={method}" for split, method in result.best_method_per_split().items()),
    ]
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
