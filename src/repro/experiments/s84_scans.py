"""Section 8.4: the bitmap/tid scan ablation.

PostgreSQL runs the JOB workload with and without bitmap/tid scans; expected
shape: a meaningful number of queries change significantly in both directions
(some speed up, some slow down), i.e. removing these scan types from the
toolkit is not a free simplification.
"""

from __future__ import annotations

from repro.core.ablations import AblationStudyResult, scan_type_ablation
from repro.core.report import format_table
from repro.experiments.common import job_context


def run(
    scale: float | None = None,
    hot_samples: int = 5,
    query_ids: list[str] | None = None,
) -> AblationStudyResult:
    context = job_context(scale)
    return scan_type_ablation(
        context.database, context.workload, hot_samples=hot_samples, query_ids=query_ids
    )


def rows(result: AblationStudyResult) -> list[dict[str, object]]:
    return [
        {
            "query_id": outcome.query_id,
            "baseline_ms": round(outcome.baseline_ms, 3),
            "no_bitmap_tid_ms": round(outcome.ablated_ms, 3),
            "speedup_factor": round(outcome.speedup_factor, 2),
            "p_value": round(outcome.p_value, 4),
            "significant": outcome.significant(),
        }
        for outcome in sorted(result.outcomes, key=lambda o: -abs(o.difference_ms))
    ]


def main(scale: float | None = None) -> str:
    result = run(scale)
    affected = result.affected_queries(threshold_ms=0.25)
    significant = result.significant_queries(threshold_ms=0.25)
    lines = [
        format_table(rows(result)[:30], title="Section 8.4: disabling bitmap and tid scans"),
        "",
        f"queries with |difference| > 0.25 ms: {len(affected)} "
        f"(statistically significant: {len(significant)})",
        "top speedups from disabling: "
        + ", ".join(f"{o.query_id} ({o.speedup_factor:.1f}x)" for o in result.top_speedups(3)),
        "top slowdowns from disabling: "
        + ", ".join(f"{o.query_id} ({o.slowdown_factor:.1f}x)" for o in result.top_slowdowns(3)),
        "Expected shape (paper): both directions occur, sometimes within the same family "
        "(28a speeds up 5.5x while 28b slows down 1.9x).",
    ]
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
