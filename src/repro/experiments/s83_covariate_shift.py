"""Section 8.3: the covariate-shift ablation (Bao-Full vs. Bao-50).

A Bao model trained on IMDB-50% (half of ``title`` removed with cascading
deletes) is evaluated against a Bao model trained on the full IMDB, both on
the full database using the same base-query split.  Expected shape: several
queries regress noticeably under the shifted model, a few improve — refreshed
cardinality statistics alone do not compensate for the distribution shift.
"""

from __future__ import annotations

from repro.core.covariate_shift import CovariateShiftResult, run_covariate_shift_study
from repro.core.experiment import ExperimentConfig
from repro.core.report import format_table
from repro.core.splits import SplitSampling, generate_split
from repro.experiments.common import imdb_half_database, job_context


def run(
    scale: float | None = None,
    seed: int = 0,
    experiment_config: ExperimentConfig | None = None,
) -> CovariateShiftResult:
    """Run the Bao-Full vs. Bao-50 study on base-query split 1 (as in the paper)."""
    context = job_context(scale)
    half = imdb_half_database(scale)
    split = generate_split(context.workload, SplitSampling.BASE_QUERY, seed=seed)
    return run_covariate_shift_study(
        context.database,
        half,
        context.workload,
        split,
        experiment_config=experiment_config or ExperimentConfig(),
    )


def rows(result: CovariateShiftResult) -> list[dict[str, object]]:
    out = []
    for timing in result.shifted_model.timings:
        factor = result.slowdown_factors.get(timing.query_id)
        reference = result.full_model.timing_for(timing.query_id)
        out.append(
            {
                "query_id": timing.query_id,
                "bao_full_ms": round(reference.execution_time_ms, 2),
                "bao_50_ms": round(timing.execution_time_ms, 2),
                "slowdown_factor": round(factor, 2) if factor is not None else None,
            }
        )
    return sorted(out, key=lambda r: -(r["slowdown_factor"] or 0.0))


def main(scale: float | None = None) -> str:
    result = run(scale)
    lines = [
        format_table(
            rows(result),
            title="Section 8.3: covariate shift — Bao-Full vs Bao-50 on the full IMDB",
        ),
        "",
        "largest regressions: "
        + ", ".join(f"{qid} ({factor:.1f}x)" for qid, factor in result.top_regressions(3)),
        "largest improvements: "
        + ", ".join(f"{qid} ({factor:.2f}x)" for qid, factor in result.top_improvements(3)),
        "Expected shape (paper): a handful of queries several times slower under the "
        "shifted model (e.g. 31c at 24x), a few slightly faster (e.g. 7c at 1.9x).",
    ]
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
