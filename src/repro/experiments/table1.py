"""Table 1: the encoding-component inventory of the evaluated LQOs."""

from __future__ import annotations

from repro.core.report import format_table
from repro.encoding.featurizers import table1_rows


def run() -> list[dict[str, str]]:
    """Regenerate Table 1 as a list of rows (one per LQO)."""
    return table1_rows()


def main() -> str:
    output = format_table(run(), title="Table 1: Main encoding components of LQOs")
    print(output)
    return output


if __name__ == "__main__":
    main()
