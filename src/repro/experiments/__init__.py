"""Experiment drivers: one module per table and figure of the paper.

Every module exposes a ``run(...)`` function returning structured results and
a ``main()`` that prints the corresponding table/series in plain text.  The
mapping to the paper is listed in DESIGN.md §4 and EXPERIMENTS.md records the
measured outcomes next to the paper's reported shapes.
"""

from repro.experiments import common

__all__ = ["common"]
