"""Figure 3: the three dataset-split sampling strategies on JOB."""

from __future__ import annotations

from repro.core.report import format_table
from repro.core.splits import DatasetSplit, SplitSampling, generate_split
from repro.experiments.common import job_context


def run(scale: float | None = None, seed: int = 0) -> dict[str, DatasetSplit]:
    """Generate one split per sampling strategy over the JOB workload."""
    context = job_context(scale)
    return {
        sampling.value: generate_split(context.workload, sampling, seed=seed)
        for sampling in SplitSampling
    }


def assignment_rows(splits: dict[str, DatasetSplit]) -> list[dict[str, object]]:
    """Summary rows: per sampling, how many queries/families land in train vs test."""
    rows = []
    context = job_context()
    families = context.workload.families()
    for name, split in splits.items():
        test_families = {context.workload.by_id(qid).family for qid in split.test_ids}
        fully_held_out = [
            fam for fam in test_families
            if all(q.query_id in split.test_ids for q in families[fam])
        ]
        rows.append(
            {
                "sampling": name,
                "train_queries": len(split.train_ids),
                "test_queries": len(split.test_ids),
                "families_in_test": len(test_families),
                "families_fully_held_out": len(fully_held_out),
            }
        )
    return rows


def main(scale: float | None = None) -> str:
    splits = run(scale)
    lines = [
        format_table(
            assignment_rows(splits),
            title="Figure 3: dataset split sampling types (JOB)",
        )
    ]
    for name, split in splits.items():
        lines.append("")
        lines.append(f"{name}: test set = {', '.join(split.test_ids)}")
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
