"""Section 8.7: analysis of query plan types (bushy vs. left-deep).

All join trees of JOB queries with at most 5 joins are enumerated with the
DBMS's own cardinality estimator and all join methods allowed, executed, and
the execution-time distributions of bushy vs. left-deep (linear) plans are
compared with a Mann-Whitney U test — overall and at the fast tail of the
combined distribution.

Expected shape (paper): no significant difference on average (p ≈ 0.29), but
bushy trees significantly better at the fast tail (p ≈ 0.015) — removing bushy
plans from an LQO's search space lowers its chance of finding the best plan.
"""

from __future__ import annotations

from repro.core.ablations import PlanShapeStudyResult, plan_shape_analysis
from repro.core.report import format_key_values, format_table
from repro.experiments.common import job_context


def run(
    scale: float | None = None,
    max_joins: int = 5,
    max_plans_per_query: int = 48,
) -> PlanShapeStudyResult:
    context = job_context(scale)
    return plan_shape_analysis(
        context.database,
        context.workload,
        max_joins=max_joins,
        max_plans_per_query=max_plans_per_query,
    )


def summary(result: PlanShapeStudyResult) -> dict[str, object]:
    bushy = result.times_for(bushy=True)
    linear = result.times_for(bushy=False)
    out: dict[str, object] = {
        "enumerated_plans": len(result.samples),
        "bushy_plans": int(bushy.size),
        "linear_plans": int(linear.size),
        "bushy_mean_ms": round(float(bushy.mean()), 3) if bushy.size else None,
        "linear_mean_ms": round(float(linear.mean()), 3) if linear.size else None,
        "bushy_min_ms": round(float(bushy.min()), 3) if bushy.size else None,
        "linear_min_ms": round(float(linear.min()), 3) if linear.size else None,
    }
    if result.overall_test is not None:
        out["overall_p_value"] = round(result.overall_test.p_value, 4)
    if result.fast_tail_test is not None:
        out["fast_tail_p_value"] = round(result.fast_tail_test.p_value, 4)
    return out


def main(scale: float | None = None) -> str:
    result = run(scale)
    shape_rows = [
        {"shape": shape, "plans": count} for shape, count in sorted(result.shape_counts().items())
    ]
    lines = [
        format_table(shape_rows, title="Section 8.7: enumerated plan shapes (JOB, <= 5 joins)"),
        "",
        format_key_values(summary(result), title="bushy vs left-deep comparison"),
        "",
        "Expected shape (paper): means comparable (two-sided p > 0.05), bushy significantly "
        "better among the fastest plans (one-sided p < 0.05).",
    ]
    output = "\n".join(lines)
    print(output)
    return output


if __name__ == "__main__":
    main()
