"""DBMS configuration knobs and the named presets from Table 2 of the paper.

The simulated DBMS honours the same configuration surface that the paper
compares across publications: join-order parameters (``geqo``,
``geqo_threshold``, ``join_collapse_limit``), working-memory parameters
(``work_mem``, ``shared_buffers``, ``temp_buffers``, ``effective_cache_size``),
parallelization parameters and the scan-type switches
(``enable_bitmapscan`` / ``enable_tidscan``).

:data:`CONFIG_PRESETS` holds the per-paper configurations of Table 2 so that
the table can be regenerated programmatically (see
``repro.experiments.table2``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace
from typing import Any, Iterator, Mapping

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Size of one simulated heap/index page in bytes (PostgreSQL default).
PAGE_SIZE_BYTES = 8 * KB


@dataclass(frozen=True)
class PostgresConfig:
    """Configuration of the simulated PostgreSQL instance.

    All sizes are expressed in bytes; helper properties expose the page-count
    view used by the cost model and buffer pool.  The defaults correspond to
    PostgreSQL's stock configuration (first column of Table 2).
    """

    # --- join order -------------------------------------------------------
    geqo: bool = True
    geqo_threshold: int = 12
    join_collapse_limit: int = 8
    from_collapse_limit: int = 8

    # --- working memory ---------------------------------------------------
    work_mem: int = 4 * MB
    shared_buffers: int = 128 * MB
    temp_buffers: int = 8 * MB
    effective_cache_size: int = 4 * GB

    # --- parallelization --------------------------------------------------
    max_parallel_workers: int = 8
    max_parallel_workers_per_gather: int = 8
    max_worker_processes: int = 2

    # --- planner operator switches ----------------------------------------
    enable_seqscan: bool = True
    enable_indexscan: bool = True
    enable_bitmapscan: bool = True
    enable_tidscan: bool = True
    enable_nestloop: bool = True
    enable_hashjoin: bool = True
    enable_mergejoin: bool = True

    # --- cost model constants (PostgreSQL defaults) ------------------------
    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    parallel_setup_cost: float = 1000.0
    parallel_tuple_cost: float = 0.1

    # --- execution / measurement ------------------------------------------
    statement_timeout_ms: float = 0.0  #: 0 disables the timeout.
    autovacuum: bool = True
    #: Whether the planner allows bushy join trees (PostgreSQL does).
    enable_bushy_plans: bool = True
    #: Whether the executor strictly follows planner hints.  When ``False``
    #: the engine models PostgreSQL's "dynamic optimization" behaviour and may
    #: silently replace a hinted operator that is clearly infeasible.
    strict_hints: bool = True
    #: Amount of physical RAM of the simulated host (Table 2, first row).
    host_ram: int = 64 * GB

    # ----------------------------------------------------------------------
    @property
    def shared_buffer_pages(self) -> int:
        """Number of 8 KB pages the buffer pool can hold."""
        return max(1, self.shared_buffers // PAGE_SIZE_BYTES)

    @property
    def effective_cache_pages(self) -> int:
        """Number of pages assumed cached by the OS + PostgreSQL combined."""
        return max(1, self.effective_cache_size // PAGE_SIZE_BYTES)

    @property
    def work_mem_tuples(self) -> int:
        """Rough number of 100-byte tuples that fit into ``work_mem``."""
        return max(1, self.work_mem // 100)

    def with_overrides(self, **overrides: Any) -> "PostgresConfig":
        """Return a copy of this configuration with selected knobs replaced."""
        return replace(self, **overrides)

    def geqo_enabled_for(self, n_relations: int) -> bool:
        """Whether GEQO would plan a join of ``n_relations`` base relations."""
        return self.geqo and n_relations >= self.geqo_threshold

    def to_dict(self) -> dict[str, Any]:
        """Flat dictionary of every knob, suitable for reports and tests."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def fingerprint(self) -> str:
        """Stable, content-based fingerprint over every knob.

        Two equal configurations always produce the same fingerprint (across
        processes and interpreter restarts — no reliance on ``hash()``), and
        changing any knob changes it.  The plan cache and the result store use
        this to key cached artefacts to the exact configuration that produced
        them.
        """
        payload = ";".join(f"{f.name}={getattr(self, f.name)!r}" for f in fields(self))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def diff_from_default(self) -> dict[str, tuple[Any, Any]]:
        """Knobs that deviate from PostgreSQL defaults as ``{name: (default, value)}``."""
        default = PostgresConfig()
        out: dict[str, tuple[Any, Any]] = {}
        for f in fields(self):
            dval = getattr(default, f.name)
            val = getattr(self, f.name)
            if val != dval:
                out[f.name] = (dval, val)
        return out


def format_bytes(n_bytes: int) -> str:
    """Human readable rendering of a byte size (``4 GB``, ``128 MB``, ...)."""
    if n_bytes % GB == 0 and n_bytes >= GB:
        return f"{n_bytes // GB} GB"
    if n_bytes % MB == 0 and n_bytes >= MB:
        return f"{n_bytes // MB} MB"
    if n_bytes % KB == 0 and n_bytes >= KB:
        return f"{n_bytes // KB} KB"
    return f"{n_bytes} B"


# ---------------------------------------------------------------------------
# Named presets from Table 2 of the paper.
# ---------------------------------------------------------------------------

#: PostgreSQL stock configuration (the "Default Values" column).
DEFAULT_CONFIG = PostgresConfig()

#: Configuration suggested by the Join Order Benchmark paper (Leis et al.).
JOB_LEIS_CONFIG = DEFAULT_CONFIG.with_overrides(
    geqo_threshold=18,
    work_mem=2 * GB,
    shared_buffers=4 * GB,
    effective_cache_size=32 * GB,
    host_ram=64 * GB,
)

#: Configuration used by Bao (Marcus et al.).
BAO_CONFIG = DEFAULT_CONFIG.with_overrides(
    shared_buffers=4 * GB,
    host_ram=15 * GB,
)

#: Configuration used by Balsa and LEON (identical per Table 2).
BALSA_LEON_CONFIG = DEFAULT_CONFIG.with_overrides(
    geqo=False,
    work_mem=4 * GB,
    shared_buffers=32 * GB,
    temp_buffers=32 * GB,
    max_worker_processes=8,
    enable_bitmapscan=False,
    enable_tidscan=False,
    host_ram=64 * GB,
)

#: Configuration used by LOGER.
LOGER_CONFIG = DEFAULT_CONFIG.with_overrides(
    geqo=False,
    shared_buffers=64 * GB,
    max_parallel_workers=1,
    max_parallel_workers_per_gather=1,
    host_ram=256 * GB,
)

#: Configuration used by Lero.
LERO_CONFIG = DEFAULT_CONFIG.with_overrides(
    geqo=False,
    max_parallel_workers=0,
    max_parallel_workers_per_gather=0,
    host_ram=512 * GB,
)

#: The paper's own framework configuration (Section 8.1.1): Balsa's memory
#: settings, bitmap/tid scans re-enabled, effective_cache_size raised to 32 GB,
#: GEQO left on only when PostgreSQL fully controls execution.
OUR_FRAMEWORK_CONFIG = DEFAULT_CONFIG.with_overrides(
    geqo=True,
    work_mem=4 * GB,
    shared_buffers=32 * GB,
    temp_buffers=32 * GB,
    effective_cache_size=32 * GB,
    max_worker_processes=8,
    autovacuum=False,
    host_ram=64 * GB,
)

#: Laptop-scale configuration used by the test-suite and the examples: small
#: buffers so cold/hot cache effects are visible on synthetic data.
SIMULATION_CONFIG = DEFAULT_CONFIG.with_overrides(
    work_mem=1 * MB,
    shared_buffers=8 * MB,
    effective_cache_size=32 * MB,
    autovacuum=False,
)

#: Ordered mapping of preset name -> configuration, mirroring Table 2 columns.
CONFIG_PRESETS: Mapping[str, PostgresConfig] = {
    "default": DEFAULT_CONFIG,
    "job_leis": JOB_LEIS_CONFIG,
    "bao": BAO_CONFIG,
    "balsa_leon": BALSA_LEON_CONFIG,
    "loger": LOGER_CONFIG,
    "lero": LERO_CONFIG,
    "our_framework": OUR_FRAMEWORK_CONFIG,
}

#: Human readable column titles for Table 2 regeneration.
PRESET_TITLES: Mapping[str, str] = {
    "default": "PostgreSQL defaults",
    "job_leis": "JOB (Leis et al.)",
    "bao": "Bao",
    "balsa_leon": "Balsa, LEON",
    "loger": "LOGER",
    "lero": "Lero",
    "our_framework": "Our Framework",
}


def get_preset(name: str) -> PostgresConfig:
    """Look up a named preset from Table 2.

    Raises:
        KeyError: if ``name`` is not one of :data:`CONFIG_PRESETS`.
    """
    try:
        return CONFIG_PRESETS[name]
    except KeyError as exc:  # pragma: no cover - trivial
        raise KeyError(
            f"unknown config preset {name!r}; available: {sorted(CONFIG_PRESETS)}"
        ) from exc


def iter_presets() -> Iterator[tuple[str, PostgresConfig]]:
    """Iterate over ``(name, config)`` pairs in Table 2 column order."""
    return iter(CONFIG_PRESETS.items())


# ---------------------------------------------------------------------------
# Experiment runtime configuration (parallel fan-out, caching, result store).
# ---------------------------------------------------------------------------

#: Executor kinds accepted by :class:`RuntimeConfig`.
EXECUTOR_KINDS = ("serial", "thread", "process", "distributed")

#: Execution-engine kinds accepted by ``ExperimentConfig.engine`` and
#: :func:`repro.executor.engine.create_engine`.  ``"columnar"`` (the default)
#: evaluates plans over late-materialized column batches; ``"row"`` is the
#: original per-alias row-id engine, kept as the correctness oracle the
#: equivalence test suite checks the columnar engine against.  Both engines
#: produce byte-identical results, cardinalities and simulated timings.
ENGINE_KINDS = ("columnar", "row")


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of the parallel experiment runtime (``repro.runtime``).

    Attributes:
        workers: number of concurrent experiment tasks; ``1`` runs serially.
            Under ``"distributed"`` this is the number of *local* worker
            processes the coordinator launches; remote workers started by hand
            (``python -m repro.runtime.worker``) add capacity on top.
        executor_kind: ``"thread"`` (default), ``"process"``, ``"serial"`` or
            ``"distributed"``.  Thread workers share the read-only table data;
            process workers pay a pickling cost per task but sidestep the GIL;
            distributed execution fans tasks out through a work queue — file
            based (hosts sharing a filesystem) or TCP (no sharing at all),
            selected by ``queue_url``.
        plan_cache_entries: capacity of the shared :class:`~repro.runtime.plan_cache.PlanCache`
            (``0`` disables plan caching).
        store_dir: directory of the resumable JSON result store; ``None``
            disables persistence.
        skip_existing: when a result store is configured, completed (method,
            split, seed) tasks found in the store are loaded instead of re-run
            (PostBOUND-style resume semantics).
        shard_count: with ``store_dir`` set, a value > 0 builds a
            :class:`~repro.runtime.result_store.ShardedResultStore` with that
            many shard directories (required layout for contention-free
            multi-host writes); ``0`` keeps the flat single-directory layout.
        queue_dir: work-queue directory of distributed execution; ``None``
            defaults to ``<store root>/queue``.
        queue_url: transport of the distributed work queue.  ``None`` or a
            ``file://`` url uses the shared-filesystem queue (``file://<dir>``
            overrides ``queue_dir``); ``tcp://<host>:<port>`` starts a
            coordinator-side TCP queue server instead (port ``0`` binds an
            ephemeral port), so workers need **no** filesystem in common with
            the coordinator — they claim over the socket and upload results
            back with their acks.
        lease_timeout_s: distributed claim lease — a claimed task whose worker
            stopped heart-beating for this long is re-queued for another
            worker (dead-worker recovery).
        task_retries: how many times the distributed coordinator re-queues a
            *failed* task (transient errors: OOM-killed imports, flaky I/O)
            before the sweep is aborted; the final error reports the attempt
            count.  ``0`` fails the sweep on the first failure marker.
        work_stealing: with ``shard_count > 0``, tasks are enqueued into the
            queue shard their result routes to and each local worker prefers
            one shard; when enabled (the default) the coordinator's poll loop
            *steals* pending tasks from loaded shards into shards whose
            worker went hungry, so unlucky shard assignment never strands an
            idle worker.  Results are unaffected either way (task identity,
            not placement, determines every result byte).
        progress_interval_s: emit a machine-readable
            :class:`~repro.runtime.progress.ProgressSnapshot` from the
            coordinator every this many seconds during a distributed sweep
            (``None`` disables periodic polling; a final end-of-sweep
            snapshot is still taken whenever a ``progress_callback`` is
            installed on the runner).
        queue_secret: shared HMAC secret authenticating every TCP queue frame
            (workers must present the same secret, usually via the
            ``REPRO_QUEUE_SECRET`` environment variable, which is also the
            fallback when this is ``None``).  Unauthenticated or mis-signed
            frames are rejected *before* unpickling.  Ignored by the file
            transport (filesystem permissions are its access control).
    """

    workers: int = 1
    executor_kind: str = "thread"
    plan_cache_entries: int = 1024
    store_dir: str | None = None
    skip_existing: bool = True
    shard_count: int = 0
    queue_dir: str | None = None
    queue_url: str | None = None
    lease_timeout_s: float = 60.0
    task_retries: int = 1
    work_stealing: bool = True
    progress_interval_s: float | None = None
    queue_secret: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("RuntimeConfig.workers must be >= 1")
        if self.executor_kind not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor kind {self.executor_kind!r}; expected one of {EXECUTOR_KINDS}"
            )
        if self.plan_cache_entries < 0:
            raise ValueError("RuntimeConfig.plan_cache_entries must be >= 0")
        if self.shard_count < 0:
            raise ValueError("RuntimeConfig.shard_count must be >= 0")
        if self.lease_timeout_s <= 0:
            raise ValueError("RuntimeConfig.lease_timeout_s must be positive")
        if self.task_retries < 0:
            raise ValueError("RuntimeConfig.task_retries must be >= 0")
        if self.progress_interval_s is not None and self.progress_interval_s <= 0:
            raise ValueError("RuntimeConfig.progress_interval_s must be positive (or None)")
        if self.queue_url is not None:
            # Validate with the one real parser (lazy import: repro.runtime
            # depends on this module at class-definition time, not vice versa)
            # so malformed urls fail at construction, not mid-sweep.
            from repro.errors import ExperimentError
            from repro.runtime.workqueue import parse_queue_url

            try:
                parse_queue_url(self.queue_url)
            except ExperimentError as exc:
                raise ValueError(f"invalid RuntimeConfig.queue_url: {exc}") from exc

    def with_overrides(self, **overrides: Any) -> "RuntimeConfig":
        return replace(self, **overrides)


#: Default runtime: serial-equivalent execution with plan caching enabled.
DEFAULT_RUNTIME_CONFIG = RuntimeConfig()
