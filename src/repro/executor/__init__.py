"""Vectorized plan execution with buffer-pool-aware timing.

The executor evaluates physical plans against the columnar storage, producing
both the (aggregate) query result and a detailed account of the work
performed: pages hit in the buffer pool, pages read "from disk" sequentially
or randomly, tuples processed, spill bytes.  The timing model converts that
work profile into a deterministic simulated latency whose cold-vs-hot cache
behaviour reproduces the measurement-protocol findings of Sections 7.3/8.6.

Two interchangeable engines implement the operators (see ``docs/EXECUTOR.md``):
the straightforward row engine (:class:`ExecutionEngine`, the correctness
oracle) and the late-materializing columnar engine
(:class:`ColumnarExecutionEngine`, the default).  :func:`create_engine` picks
one by kind; both produce byte-identical results and simulated timings.
"""

from repro.executor.operators import OperatorMetrics, Relation
from repro.executor.timing import TimingModel, TimingBreakdown
from repro.executor.engine import ExecutionEngine, ExecutionResult, create_engine
from repro.executor.columnar import ColumnarBatch, ColumnarExecutionEngine
from repro.executor.explain import explain_plan, explain_analyze

__all__ = [
    "OperatorMetrics",
    "Relation",
    "TimingModel",
    "TimingBreakdown",
    "ExecutionEngine",
    "ExecutionResult",
    "ColumnarBatch",
    "ColumnarExecutionEngine",
    "create_engine",
    "explain_plan",
    "explain_analyze",
]
