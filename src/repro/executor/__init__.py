"""Vectorized plan execution with buffer-pool-aware timing.

The executor evaluates physical plans against the columnar storage, producing
both the (aggregate) query result and a detailed account of the work
performed: pages hit in the buffer pool, pages read "from disk" sequentially
or randomly, tuples processed, spill bytes.  The timing model converts that
work profile into a deterministic simulated latency whose cold-vs-hot cache
behaviour reproduces the measurement-protocol findings of Sections 7.3/8.6.
"""

from repro.executor.operators import OperatorMetrics, Relation
from repro.executor.timing import TimingModel, TimingBreakdown
from repro.executor.engine import ExecutionEngine, ExecutionResult
from repro.executor.explain import explain_plan, explain_analyze

__all__ = [
    "OperatorMetrics",
    "Relation",
    "TimingModel",
    "TimingBreakdown",
    "ExecutionEngine",
    "ExecutionResult",
    "explain_plan",
    "explain_analyze",
]
