"""The execution engine: evaluates physical plans end to end.

``ExecutionEngine.execute`` walks a plan bottom-up, evaluates every operator
against the columnar storage (charging the buffer pool on the way), applies
sort/aggregate decorations and returns an :class:`ExecutionResult` holding the
query output, per-node actual row counts, the accumulated work profile and the
simulated execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.statistics import NULL_SENTINEL
from repro.config import PostgresConfig
from repro.errors import ExecutionError
from repro.executor.operators import (
    OperatorMetrics,
    Relation,
    execute_index_nestloop,
    execute_join,
    execute_outer_join,
    execute_scan,
    fetch_column,
    index_nestloop_inner,
)
from repro.executor.timing import TimingModel
from repro.plans.physical import (
    AggregateNode,
    JoinKind,
    JoinNode,
    PlanNode,
    ScanNode,
    SortNode,
)
from repro.sql.binder import BoundQuery
from repro.storage.database import Database


@dataclass
class ExecutionResult:
    """Outcome of executing one physical plan."""

    rows: list[tuple]
    row_count: int
    execution_time_ms: float
    metrics: OperatorMetrics
    node_actual_rows: dict[int, int] = field(default_factory=dict)
    timed_out: bool = False
    error: str | None = None

    @property
    def succeeded(self) -> bool:
        """Whether the execution completed without error or timeout."""
        return self.error is None and not self.timed_out


class ExecutionEngine:
    """Evaluates physical plans against a :class:`Database`.

    This is the *row* engine: intermediate results materialize one row-id
    array per base-table alias at every operator.  It is deliberately kept
    simple — it doubles as the correctness oracle the equivalence test suite
    holds the optimized :class:`~repro.executor.columnar.ColumnarExecutionEngine`
    against.  Subclasses swap execution strategies by overriding the
    ``_scan_node`` / ``_join_node`` / ``_index_nestloop_node`` /
    ``_outer_join_node`` operator hooks;
    everything above them (timing, timeout handling, sort/aggregate/projection
    finalization, EXPLAIN row accounting) is shared and must stay
    byte-identical across engines.
    """

    #: Engine-kind name reported by :func:`create_engine` round-trips.
    kind = "row"

    def __init__(
        self,
        database: Database,
        config: PostgresConfig | None = None,
        timing_model: TimingModel | None = None,
    ) -> None:
        self.database = database
        self.config = config or database.config
        self.timing = timing_model or TimingModel(self.config)

    # --------------------------------------------------------------------- public
    def execute(
        self,
        query: BoundQuery,
        plan: PlanNode,
        timeout_ms: float | None = None,
    ) -> ExecutionResult:
        """Execute ``plan`` for ``query``.

        ``timeout_ms`` overrides the configured ``statement_timeout_ms``.  A
        simulated time above the timeout marks the result as timed out (with
        the execution time clamped to the timeout), matching how the
        benchmarking framework treats cancelled statements.
        """
        effective_timeout = (
            timeout_ms if timeout_ms is not None else self.config.statement_timeout_ms
        )
        total_metrics = OperatorMetrics()
        node_rows: dict[int, int] = {}
        try:
            relation = self._evaluate(query, plan, total_metrics, node_rows)
            rows = self._finalize(query, plan, relation)
        except ExecutionError as exc:
            # Pathological plans (e.g. giant cross products) abort; the
            # framework reports them like statement timeouts.
            elapsed = effective_timeout if effective_timeout and effective_timeout > 0 else 60_000.0
            return ExecutionResult(
                rows=[],
                row_count=0,
                execution_time_ms=float(elapsed),
                metrics=total_metrics,
                node_actual_rows=node_rows,
                timed_out=True,
                error=str(exc),
            )

        execution_time = self.timing.execution_time_ms(total_metrics)
        timed_out = bool(effective_timeout and effective_timeout > 0 and execution_time > effective_timeout)
        if timed_out:
            execution_time = float(effective_timeout)
        return ExecutionResult(
            rows=rows,
            row_count=len(rows),
            execution_time_ms=execution_time,
            metrics=total_metrics,
            node_actual_rows=node_rows,
            timed_out=timed_out,
        )

    # -------------------------------------------------------------- operator hooks
    # Engines override these four methods to swap execution strategies.  Each
    # returns ``(relation, metrics)`` exactly like the operator functions in
    # :mod:`repro.executor.operators`; the shared recursion below does the
    # metric merging and per-node row accounting.
    def _scan_node(self, query: BoundQuery, node: ScanNode):
        """Evaluate one base-table scan."""
        return execute_scan(self.database, query, node, self.database.buffer_pool)

    def _join_node(self, query: BoundQuery, node: JoinNode, left: Relation, right: Relation):
        """Join two materialized inputs."""
        return execute_join(
            self.database,
            query,
            node,
            left,
            right,
            self.database.buffer_pool,
            self.config.work_mem,
        )

    def _index_nestloop_node(self, query: BoundQuery, node: JoinNode, left: Relation):
        """Probe the inner side of ``node`` per outer tuple via its index."""
        return execute_index_nestloop(
            self.database, query, node, left, self.database.buffer_pool
        )

    def _outer_join_node(self, query: BoundQuery, node: JoinNode, left: Relation, right: Relation):
        """LEFT/FULL outer join: inner matching plus NULL-extended unmatched rows."""
        return execute_outer_join(
            self.database,
            query,
            node,
            left,
            right,
            self.database.buffer_pool,
            self.config.work_mem,
        )

    # ------------------------------------------------------------------ recursion
    def _evaluate(
        self,
        query: BoundQuery,
        node: PlanNode,
        total_metrics: OperatorMetrics,
        node_rows: dict[int, int],
    ) -> Relation:
        if isinstance(node, ScanNode):
            relation, metrics = self._scan_node(query, node)
            total_metrics.merge(metrics)
            node_rows[id(node)] = relation.size
            return relation
        if isinstance(node, JoinNode):
            assert node.left is not None and node.right is not None
            left = self._evaluate(query, node.left, total_metrics, node_rows)
            if index_nestloop_inner(self.database, node) is not None:
                # Parameterized inner index scan: the inner relation is probed
                # per outer tuple instead of being materialized.
                relation, metrics = self._index_nestloop_node(query, node, left)
                total_metrics.merge(metrics)
                node_rows[id(node.right)] = relation.size
                node_rows[id(node)] = relation.size
                return relation
            right = self._evaluate(query, node.right, total_metrics, node_rows)
            if node.join_kind is not JoinKind.INNER:
                relation, metrics = self._outer_join_node(query, node, left, right)
            else:
                relation, metrics = self._join_node(query, node, left, right)
            total_metrics.merge(metrics)
            node_rows[id(node)] = relation.size
            return relation
        if isinstance(node, SortNode):
            assert node.child is not None
            relation = self._evaluate(query, node.child, total_metrics, node_rows)
            relation = self._sort_relation(query, relation, node)
            total_metrics.sort_rows += relation.size
            node_rows[id(node)] = relation.size
            return relation
        if isinstance(node, AggregateNode):
            assert node.child is not None
            relation = self._evaluate(query, node.child, total_metrics, node_rows)
            total_metrics.cpu_ops += relation.size
            node_rows[id(node)] = relation.size
            return relation
        raise ExecutionError(f"cannot execute node type {type(node).__name__}")

    def _sort_relation(self, query: BoundQuery, relation: Relation, node: SortNode) -> Relation:
        """Order ``relation`` by the node's sort keys (stable lexsort)."""
        if relation.size == 0 or not node.sort_keys:
            return relation
        keys = []
        for alias, column in reversed(node.sort_keys):
            if alias in relation.aliases:
                keys.append(fetch_column(self.database, query, relation, alias, column))
        if not keys:
            return relation
        order = np.lexsort(tuple(keys))
        return relation.select(order)

    # -------------------------------------------------------------------- results
    def _finalize(self, query: BoundQuery, plan: PlanNode, relation: Relation) -> list[tuple]:
        """Compute the SELECT-list output from the final relation."""
        statement = query.statement
        if statement is None:
            return [(relation.size,)]

        has_aggregate = any(item.function for item in statement.select_items)
        if not has_aggregate:
            return self._project_rows(query, relation, statement)

        if statement.group_by:
            return self._grouped_aggregates(query, relation, statement)

        row = []
        for item in statement.select_items:
            row.append(self._scalar_aggregate(query, relation, item))
        return [tuple(row)]

    def _scalar_aggregate(self, query: BoundQuery, relation: Relation, item) -> object:
        """Evaluate one aggregate select-item over the whole relation."""
        if item.function == "count" and item.column is None:
            return relation.size
        if item.column is None:
            return relation.size
        alias = item.column.alias or query.aliases[0]
        if alias not in relation.aliases or relation.size == 0:
            return None
        values = fetch_column(self.database, query, relation, alias, item.column.column)
        values = values[values != NULL_SENTINEL]
        if values.size == 0:
            return None
        data = self.database.table_data(query.table_of(alias))
        if item.function == "count":
            return int(values.size)
        if item.function == "sum":
            return int(values.sum())
        if item.function == "avg":
            return float(values.mean())
        if item.function == "min":
            return data.decode(item.column.column, int(values.min()))
        if item.function == "max":
            return data.decode(item.column.column, int(values.max()))
        raise ExecutionError(f"unsupported aggregate {item.function!r}")

    def _grouped_aggregates(self, query: BoundQuery, relation: Relation, statement) -> list[tuple]:
        """Evaluate GROUP BY output: one row per distinct group-key combination."""
        if relation.size == 0:
            return []
        group_columns = []
        for col in statement.group_by:
            alias = col.alias or query.aliases[0]
            group_columns.append(
                fetch_column(self.database, query, relation, alias, col.column)
            )
        stacked = np.stack(group_columns, axis=1)
        _, inverse = np.unique(stacked, axis=0, return_inverse=True)
        rows = []
        for group_index in np.unique(inverse):
            positions = np.nonzero(inverse == group_index)[0]
            sub_relation = relation.select(positions)
            key = []
            for col, values in zip(statement.group_by, group_columns):
                alias = col.alias or query.aliases[0]
                data = self.database.table_data(query.table_of(alias))
                key.append(data.decode(col.column, int(values[positions[0]])))
            aggregates = [
                self._scalar_aggregate(query, sub_relation, item)
                for item in statement.select_items
                if item.function
            ]
            rows.append(tuple(key) + tuple(aggregates))
        return rows

    def _project_rows(self, query: BoundQuery, relation: Relation, statement) -> list[tuple]:
        """Decode the SELECT list for a plain (non-aggregate) projection."""
        limit = statement.limit if statement.limit is not None else min(relation.size, 1000)
        size = min(relation.size, limit)
        if size == 0:
            return []
        columns = []
        for item in statement.select_items:
            if item.column is None:
                columns.append([None] * size)
                continue
            alias = item.column.alias or query.aliases[0]
            data = self.database.table_data(query.table_of(alias))
            values = fetch_column(self.database, query, relation, alias, item.column.column)[:size]
            columns.append(data.decode_many(item.column.column, values))
        return [tuple(col[i] for col in columns) for i in range(size)]


def create_engine(
    database: Database,
    config: PostgresConfig | None = None,
    kind: str = "columnar",
    timing_model: TimingModel | None = None,
) -> ExecutionEngine:
    """Build an execution engine of the requested ``kind``.

    ``kind`` must be one of :data:`repro.config.ENGINE_KINDS`:

    * ``"columnar"`` (default) — the batch engine with late materialization;
      see :mod:`repro.executor.columnar`.
    * ``"row"`` — the straightforward per-operator row-id engine, kept as the
      correctness oracle.

    Both engines produce byte-identical results, cardinalities and simulated
    timings for every plan; they differ only in wall-clock speed.
    """
    from repro.config import ENGINE_KINDS

    if kind not in ENGINE_KINDS:
        raise ExecutionError(
            f"unknown engine kind {kind!r}; expected one of {ENGINE_KINDS}"
        )
    if kind == "row":
        return ExecutionEngine(database, config, timing_model)
    from repro.executor.columnar import ColumnarExecutionEngine

    return ColumnarExecutionEngine(database, config, timing_model)
