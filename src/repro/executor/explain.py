"""EXPLAIN / EXPLAIN ANALYZE renderings of plans and executions.

The paper's measurement protocol extracts planning and execution times from
``EXPLAIN ANALYZE`` output; LQOs additionally read cardinality estimates from
plain ``EXPLAIN``.  These helpers provide the equivalent structured and
textual views over the simulator's plans and execution results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.executor.engine import ExecutionResult
from repro.plans.physical import PlanNode


@dataclass
class ExplainNode:
    """One node of a structured EXPLAIN (ANALYZE) tree."""

    label: str
    estimated_rows: float
    estimated_cost: float
    actual_rows: int | None = None
    children: list["ExplainNode"] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready nested dict view of this node and its children."""
        out = {
            "label": self.label,
            "estimated_rows": self.estimated_rows,
            "estimated_cost": self.estimated_cost,
        }
        if self.actual_rows is not None:
            out["actual_rows"] = self.actual_rows
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


def _build_tree(plan: PlanNode, actual_rows: dict[int, int] | None) -> ExplainNode:
    node = ExplainNode(
        label=plan.label(),
        estimated_rows=plan.estimated_rows,
        estimated_cost=plan.estimated_cost,
        actual_rows=None if actual_rows is None else actual_rows.get(id(plan)),
    )
    for child in plan.children():
        node.children.append(_build_tree(child, actual_rows))
    return node


def explain_plan(plan: PlanNode) -> str:
    """EXPLAIN-style text rendering (estimates only)."""
    return plan.pretty()


def explain_analyze(
    plan: PlanNode,
    result: ExecutionResult,
    planning_time_ms: float | None = None,
) -> dict:
    """Structured EXPLAIN ANALYZE: per-node estimates vs. actual rows plus timings."""
    tree = _build_tree(plan, result.node_actual_rows)
    payload: dict = {
        "plan": tree.to_dict(),
        "execution_time_ms": result.execution_time_ms,
        "timed_out": result.timed_out,
        "output_rows": result.row_count,
    }
    if planning_time_ms is not None:
        payload["planning_time_ms"] = planning_time_ms
    return payload


def explain_analyze_text(
    plan: PlanNode,
    result: ExecutionResult,
    planning_time_ms: float | None = None,
) -> str:
    """Human readable EXPLAIN ANALYZE, close to PostgreSQL's text format."""
    lines: list[str] = []

    def render(node: PlanNode, indent: int) -> None:
        """Append one plan line (plus children) at the given indent depth."""
        pad = "  " * indent
        actual = result.node_actual_rows.get(id(node))
        actual_part = f" (actual rows={actual})" if actual is not None else ""
        lines.append(
            f"{pad}{node.label()}  (cost={node.estimated_cost:.2f} rows={node.estimated_rows:.0f})"
            f"{actual_part}"
        )
        for child in node.children():
            render(child, indent + 1)

    render(plan, 0)
    if planning_time_ms is not None:
        lines.append(f"Planning Time: {planning_time_ms:.3f} ms")
    lines.append(f"Execution Time: {result.execution_time_ms:.3f} ms")
    if result.timed_out:
        lines.append("NOTE: statement timed out")
    return "\n".join(lines)
