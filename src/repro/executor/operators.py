"""Vectorized physical operators and their work accounting.

A :class:`Relation` is the intermediate result format: for every base-table
alias it holds an equal-length array of row ids, so a join result is a set of
row-id tuples and column values are fetched lazily when a predicate or an
aggregate needs them.

Every operator returns both the resulting :class:`Relation` and an
:class:`OperatorMetrics` record describing the work performed, which the
timing model converts into simulated milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.statistics import NULL_SENTINEL
from repro.errors import ExecutionError
from repro.optimizer.cardinality import _evaluate_filter_mask as evaluate_filter_mask
from repro.plans.physical import JoinKind, JoinNode, JoinType, ScanNode, ScanType
from repro.sql.binder import BoundQuery, JoinPredicate
from repro.storage.buffer_pool import BufferPool
from repro.storage.database import Database
from repro.storage.index import ragged_ranges

#: Virtual row id of a NULL-extended outer-join tuple.  Distinct from any
#: stored row: fetching it yields :data:`NULL_SENTINEL` for every column, so
#: NULL-extended output is never conflated with stored NULLs at the storage
#: layer (no sentinel is ever written into a table).
NULL_ROW_ID = -1


def gather_rows(data, column: str, row_ids: np.ndarray) -> np.ndarray:
    """Column codes for ``row_ids``, mapping :data:`NULL_ROW_ID` to the sentinel.

    Every fetch of intermediate-result columns must go through this helper:
    raw numpy indexing (``TableData.gather``) would silently wrap the virtual
    row id -1 to the *last* stored row.
    """
    row_ids = np.asarray(row_ids, dtype=np.int64)
    extended = row_ids < 0
    if not extended.any():
        return data.gather(column, row_ids)
    out = np.full(row_ids.size, NULL_SENTINEL, dtype=np.int64)
    real = ~extended
    if real.any():
        out[real] = data.gather(column, row_ids[real])
    return out


def take_rows(values: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """``values[positions]`` with negative positions propagating NULL_ROW_ID.

    Used wherever row-id arrays are re-indexed by join/select positions, so a
    NULL-extended tuple stays NULL-extended through later operators instead
    of wrapping around to the last element.
    """
    positions = np.asarray(positions, dtype=np.int64)
    extended = positions < 0
    if not extended.any():
        return values[positions]
    out = np.full(positions.size, NULL_ROW_ID, dtype=np.int64)
    real = ~extended
    if real.any():
        out[real] = values[positions[real]]
    return out


@dataclass
class OperatorMetrics:
    """Work performed by one operator (or accumulated over a plan)."""

    pages_hit: int = 0
    seq_pages_read: int = 0
    random_pages_read: int = 0
    index_pages: int = 0
    tuples_in: int = 0
    tuples_out: int = 0
    cpu_ops: int = 0
    sort_rows: int = 0
    spill_bytes: int = 0

    def merge(self, other: "OperatorMetrics") -> "OperatorMetrics":
        """Accumulate another operator's work into this record (returns self)."""
        self.pages_hit += other.pages_hit
        self.seq_pages_read += other.seq_pages_read
        self.random_pages_read += other.random_pages_read
        self.index_pages += other.index_pages
        self.tuples_in += other.tuples_in
        self.tuples_out += other.tuples_out
        self.cpu_ops += other.cpu_ops
        self.sort_rows += other.sort_rows
        self.spill_bytes += other.spill_bytes
        return self

    def copy(self) -> "OperatorMetrics":
        """Independent copy of this work record."""
        return OperatorMetrics(**self.__dict__)


@dataclass
class Relation:
    """Intermediate result: per-alias row ids, all arrays of equal length."""

    rows: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {alias: len(ids) for alias, ids in self.rows.items()}
        if lengths and len(set(lengths.values())) != 1:
            raise ExecutionError(f"inconsistent relation row counts: {lengths}")

    @property
    def size(self) -> int:
        """Number of (composite) tuples in the relation."""
        if not self.rows:
            return 0
        return len(next(iter(self.rows.values())))

    @property
    def aliases(self) -> frozenset[str]:
        """Base-table aliases whose rows this relation carries."""
        return frozenset(self.rows)

    def select(self, positions: np.ndarray) -> "Relation":
        """Keep only the tuples at ``positions`` (positional indices)."""
        return Relation(rows={alias: take_rows(ids, positions) for alias, ids in self.rows.items()})

    def fetch(
        self, database: Database, query: BoundQuery, alias: str, column: str
    ) -> np.ndarray:
        """Column values of ``alias.column`` for every tuple of this relation.

        The engine's shared finalization layers (sort, aggregate, projection)
        go through this hook, so an intermediate-result representation with a
        different materialization strategy (the columnar engine's
        :class:`~repro.executor.columnar.ColumnarBatch`) only has to override
        ``fetch``/``select`` to plug in.
        """
        if alias not in self.rows:
            raise ExecutionError(f"relation does not contain alias {alias!r}")
        data = database.table_data(query.table_of(alias))
        return gather_rows(data, column, self.rows[alias])

    @staticmethod
    def from_row_ids(alias: str, row_ids: np.ndarray) -> "Relation":
        """Single-alias relation over the given base-table row ids."""
        return Relation(rows={alias: np.asarray(row_ids, dtype=np.int64)})


def fetch_column(
    database: Database, query: BoundQuery, relation: Relation, alias: str, column: str
) -> np.ndarray:
    """Column values of ``alias.column`` for every tuple of ``relation``."""
    return relation.fetch(database, query, alias, column)


def join_match_positions(
    left_values: np.ndarray, right_values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Positions of matching pairs between two value arrays (inner equi-join).

    Implemented with a sort + binary search, which handles duplicates on both
    sides and keeps everything vectorized.
    """
    left_values = np.asarray(left_values, dtype=np.int64)
    right_values = np.asarray(right_values, dtype=np.int64)
    if left_values.size == 0 or right_values.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(right_values, kind="stable")
    sorted_right = right_values[order]
    lo = np.searchsorted(sorted_right, left_values, side="left")
    hi = np.searchsorted(sorted_right, left_values, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_positions = np.repeat(np.arange(left_values.size, dtype=np.int64), counts)
    right_positions = order[ragged_ranges(lo, hi)]
    return left_positions, right_positions


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------

def execute_scan(
    database: Database,
    query: BoundQuery,
    node: ScanNode,
    buffer_pool: BufferPool,
) -> tuple[Relation, OperatorMetrics]:
    """Evaluate a scan node: apply its filters and account for page accesses."""
    metrics = OperatorMetrics()
    data = database.table_data(node.table)
    row_count = data.row_count
    metrics.tuples_in = row_count

    if row_count == 0:
        return Relation.from_row_ids(node.alias, np.empty(0, dtype=np.int64)), metrics

    driving_filter = None
    if node.index_column is not None:
        for predicate in node.filters:
            if predicate.column == node.index_column and predicate.op in (
                "=", "<", "<=", ">", ">=", "between", "in",
            ):
                driving_filter = predicate
                break

    if node.scan_type is ScanType.SEQ or driving_filter is None:
        access = buffer_pool.access_pages(node.table, data.page_count, sequential=True)
        metrics.pages_hit += access.hits
        metrics.seq_pages_read += access.misses
        mask = np.ones(row_count, dtype=bool)
        for predicate in node.filters:
            mask &= evaluate_filter_mask(data, predicate)
            metrics.cpu_ops += row_count
        row_ids = np.nonzero(mask)[0]
    else:
        index = database.index(node.table, node.index_column)
        if index is None:
            raise ExecutionError(
                f"plan requires an index on {node.table}.{node.index_column} that does not exist"
            )
        lookup = _index_lookup(index, data, driving_filter)
        metrics.index_pages += lookup.index_pages
        matched = lookup.row_ids
        # Heap accesses: one page per matched tuple for an index scan (random),
        # page-sorted batched accesses for a bitmap heap scan (sequential-ish).
        heap_pages = min(matched.size, data.page_count)
        sequential = node.scan_type is ScanType.BITMAP
        if node.scan_type is ScanType.TID:
            heap_pages = min(1, data.page_count)
        access = buffer_pool.access_fraction(
            node.table, data.page_count, heap_pages / max(data.page_count, 1), sequential=sequential
        )
        metrics.pages_hit += access.hits
        if sequential:
            metrics.seq_pages_read += access.misses
        else:
            metrics.random_pages_read += access.misses
        # Remaining filters are applied only to the matched tuples.
        mask = np.ones(matched.size, dtype=bool)
        for predicate in node.filters:
            if predicate is driving_filter:
                continue
            full_mask = evaluate_filter_mask(data, predicate)
            mask &= full_mask[matched]
            metrics.cpu_ops += matched.size
        row_ids = matched[mask]

    metrics.tuples_out = int(row_ids.size)
    metrics.cpu_ops += int(row_ids.size)
    return Relation.from_row_ids(node.alias, row_ids), metrics


def _index_lookup(index, data, predicate):
    """Dispatch an index lookup for the driving filter of an index-based scan."""
    if predicate.op == "=":
        return index.lookup_eq(data.encode(predicate.column, predicate.value))
    if predicate.op == "in":
        codes = np.asarray(
            [data.encode(predicate.column, v) for v in predicate.values], dtype=np.int64
        )
        return index.lookup_in(codes)
    if predicate.op == "between":
        low = data.encode(predicate.column, predicate.values[0])
        high = data.encode(predicate.column, predicate.values[1])
        return index.lookup_range(low=low, high=high)
    if predicate.op in ("<", "<="):
        high = data.encode(predicate.column, predicate.value)
        # Open lower bounds must still exclude NULLs: the sentinel sorts below
        # every real value, so an unbounded range scan would sweep them in
        # (and disagree with the equivalent sequential scan).
        return index.lookup_range(
            low=NULL_SENTINEL + 1, high=high, include_high=predicate.op == "<="
        )
    if predicate.op in (">", ">="):
        low = data.encode(predicate.column, predicate.value)
        return index.lookup_range(low=low, high=None, include_low=predicate.op == ">=")
    raise ExecutionError(f"cannot drive an index scan with operator {predicate.op!r}")


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------

def index_nestloop_inner(database: Database, node: JoinNode):
    """Return ``(scan, index, join_column, probe_predicate)`` when ``node`` can
    run as an index nested loop into its right child, else ``None``.

    The inner side must be a base-table scan with an index on one of the join
    columns; in that case the executor probes the index per outer tuple instead
    of materializing the inner relation (matching PostgreSQL's parameterized
    inner index scans).  The returned predicate is the one the probe enforces —
    every *other* join predicate of the node must still be applied after the
    probe.
    """
    if node.join_type is not JoinType.NESTED_LOOP:
        return None
    if node.join_kind is not JoinKind.INNER:
        # Outer joins always go through the shared materialized join path so
        # NULL extension happens in one place.
        return None
    inner = node.right
    if not isinstance(inner, ScanNode):
        return None
    for predicate in node.predicates:
        if predicate.involves(inner.alias):
            column = predicate.column_for(inner.alias)
            index = database.index(inner.table, column)
            if index is not None:
                return inner, index, column, predicate
    return None


def execute_index_nestloop(
    database: Database,
    query: BoundQuery,
    node: JoinNode,
    left: Relation,
    buffer_pool: BufferPool,
) -> tuple[Relation, OperatorMetrics]:
    """Evaluate a nested loop whose inner side is an index probe into a base table."""
    resolved = index_nestloop_inner(database, node)
    if resolved is None:
        raise ExecutionError("join cannot be executed as an index nested loop")
    inner_scan, index, column, probe = resolved
    metrics = OperatorMetrics()
    metrics.tuples_in = left.size

    # Outer join-key values come from the probe predicate itself: the index is
    # on ``probe``'s inner column, so probing it with any other predicate's
    # outer values would match unrelated rows.
    outer_alias, outer_column = probe.other(inner_scan.alias)
    outer_keys = fetch_column(database, query, left, outer_alias, outer_column)

    probe_positions, matched_rows, index_pages = index.probe_many(outer_keys)
    metrics.index_pages += index_pages
    metrics.cpu_ops += left.size
    # NULL outer keys must not match NULL entries in the inner index.
    if probe_positions.size:
        not_null = outer_keys[probe_positions] != NULL_SENTINEL
        probe_positions = probe_positions[not_null]
        matched_rows = matched_rows[not_null]

    data = database.table_data(inner_scan.table)
    # Heap accesses for the matched inner tuples (random page reads).
    heap_pages = min(int(matched_rows.size), data.page_count)
    access = buffer_pool.access_fraction(
        inner_scan.table, data.page_count, heap_pages / max(data.page_count, 1), sequential=False
    )
    metrics.pages_hit += access.hits
    metrics.random_pages_read += access.misses

    # Apply the inner scan's own filters to the matched tuples.
    keep = np.ones(matched_rows.size, dtype=bool)
    for predicate in inner_scan.filters:
        full_mask = evaluate_filter_mask(data, predicate)
        keep &= full_mask[matched_rows]
        metrics.cpu_ops += matched_rows.size
    probe_positions = probe_positions[keep]
    matched_rows = matched_rows[keep]

    result = _combine(left, Relation.from_row_ids(inner_scan.alias, matched_rows),
                      probe_positions, np.arange(matched_rows.size, dtype=np.int64))

    # Every join predicate except the probe becomes a post-join filter —
    # including a predicate at position 0 that the probe did not enforce, and
    # predicates between two outer-side aliases.  Skipping any of them would
    # silently drop a join condition and produce wrong rows.
    for predicate in node.predicates:
        if predicate is probe:
            continue
        if (
            predicate.left_alias not in result.aliases
            or predicate.right_alias not in result.aliases
        ):
            raise ExecutionError(
                f"join predicate {predicate} does not connect the joined relations"
            )
        lvals = fetch_column(database, query, result, predicate.left_alias, predicate.left_column)
        rvals = fetch_column(database, query, result, predicate.right_alias, predicate.right_column)
        keep_mask = (lvals == rvals) & (lvals != NULL_SENTINEL)
        metrics.cpu_ops += result.size
        result = result.select(np.nonzero(keep_mask)[0])

    metrics.tuples_out = result.size
    metrics.cpu_ops += result.size
    return result, metrics


def execute_join(
    database: Database,
    query: BoundQuery,
    node: JoinNode,
    left: Relation,
    right: Relation,
    buffer_pool: BufferPool,
    work_mem_bytes: int,
) -> tuple[Relation, OperatorMetrics]:
    """Evaluate a join node over already-materialized child relations."""
    metrics = OperatorMetrics()
    metrics.tuples_in = left.size + right.size

    if not node.predicates:
        result = _cross_product(left, right)
        metrics.cpu_ops += max(left.size * right.size, 1)
        metrics.tuples_out = result.size
        return result, metrics

    primary = node.predicates[0]
    left_alias, left_column, right_alias, right_column = _orient_predicate(primary, left, right)

    left_values = fetch_column(database, query, left, left_alias, left_column)
    right_values = fetch_column(database, query, right, right_alias, right_column)

    left_pos, right_pos = join_match_positions(left_values, right_values)
    # SQL semantics: NULL never equals NULL.  Both sides of a join can carry
    # NULLs (nullable foreign keys), and the sentinel encoding would otherwise
    # happily match them against each other.
    if left_pos.size:
        not_null = left_values[left_pos] != NULL_SENTINEL
        left_pos = left_pos[not_null]
        right_pos = right_pos[not_null]

    charge_join_type(database, node, left.size, right.size, work_mem_bytes, metrics)

    result = _combine(left, right, left_pos, right_pos)

    # Additional predicates between the same two sides are applied as filters.
    for predicate in node.predicates[1:]:
        la, lc, ra, rc = _orient_predicate(predicate, left, right)
        lvals = fetch_column(database, query, result, la, lc)
        rvals = fetch_column(database, query, result, ra, rc)
        keep = (lvals == rvals) & (lvals != NULL_SENTINEL)
        metrics.cpu_ops += result.size
        result = result.select(np.nonzero(keep)[0])

    metrics.tuples_out = result.size
    metrics.cpu_ops += result.size
    return result, metrics


def null_extend_positions(
    join_kind: JoinKind,
    left_size: int,
    right_size: int,
    left_pos: np.ndarray,
    right_pos: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Extend matched join positions with NULL-extended unmatched tuples.

    Output order is deterministic and purely positional: matched pairs first
    (in match order), then unmatched left tuples ascending paired with
    :data:`NULL_ROW_ID`, then — for FULL joins — unmatched right tuples
    ascending with NULL_ROW_ID on the left.  Both engines share this helper
    verbatim, which is what keeps their row order byte-identical.
    """
    if join_kind is JoinKind.INNER:
        return left_pos, right_pos
    unmatched_left = np.setdiff1d(np.arange(left_size, dtype=np.int64), left_pos)
    lefts = [left_pos, unmatched_left]
    rights = [right_pos, np.full(unmatched_left.size, NULL_ROW_ID, dtype=np.int64)]
    if join_kind is JoinKind.FULL:
        unmatched_right = np.setdiff1d(np.arange(right_size, dtype=np.int64), right_pos)
        lefts.append(np.full(unmatched_right.size, NULL_ROW_ID, dtype=np.int64))
        rights.append(unmatched_right)
    return np.concatenate(lefts), np.concatenate(rights)


def execute_outer_join(
    database: Database,
    query: BoundQuery,
    node: JoinNode,
    left: Relation,
    right: Relation,
    buffer_pool: BufferPool,
    work_mem_bytes: int,
) -> tuple[Relation, OperatorMetrics]:
    """Evaluate a LEFT or FULL outer join over materialized child relations.

    Matching is identical to the inner join (NULL keys never match), but all
    secondary ON predicates are applied positionally *before* NULL extension
    — they are part of the join condition, not post-join filters — and the
    unmatched tuples are appended as NULL-extended output afterwards.
    """
    metrics = OperatorMetrics()
    metrics.tuples_in = left.size + right.size

    if not node.predicates:
        raise ExecutionError("outer join requires at least one join predicate")

    primary = node.predicates[0]
    left_alias, left_column, right_alias, right_column = _orient_predicate(primary, left, right)

    left_values = fetch_column(database, query, left, left_alias, left_column)
    right_values = fetch_column(database, query, right, right_alias, right_column)

    left_pos, right_pos = join_match_positions(left_values, right_values)
    # NULL never equals NULL — and a NULL-extended left tuple from an earlier
    # outer fold carries sentinel keys, so it simply re-extends here.
    if left_pos.size:
        not_null = left_values[left_pos] != NULL_SENTINEL
        left_pos = left_pos[not_null]
        right_pos = right_pos[not_null]

    for predicate in node.predicates[1:]:
        la, lc, ra, rc = _orient_predicate(predicate, left, right)
        lvals = fetch_column(database, query, left, la, lc)[left_pos]
        rvals = fetch_column(database, query, right, ra, rc)[right_pos]
        keep = (lvals == rvals) & (lvals != NULL_SENTINEL)
        metrics.cpu_ops += int(left_pos.size)
        left_pos = left_pos[keep]
        right_pos = right_pos[keep]

    charge_join_type(database, node, left.size, right.size, work_mem_bytes, metrics)

    left_pos, right_pos = null_extend_positions(
        node.join_kind, left.size, right.size, left_pos, right_pos
    )
    result = _combine(left, right, left_pos, right_pos)

    metrics.tuples_out = result.size
    metrics.cpu_ops += result.size
    return result, metrics


def charge_join_type(
    database: Database,
    node: JoinNode,
    left_size: int,
    right_size: int,
    work_mem_bytes: int,
    metrics: OperatorMetrics,
) -> None:
    """Charge the per-algorithm cost of a join into ``metrics``.

    The charges model the *simulated* work of the chosen join algorithm (hash
    build/probe, merge sorting, nested-loop iteration) and depend only on the
    plan and the input sizes — never on how the engine actually computed the
    match, which is what keeps simulated timings identical across engines.
    """
    if node.join_type is JoinType.HASH:
        metrics.cpu_ops += int(1.5 * right_size) + left_size
        row_width = 60
        inner_bytes = right_size * row_width
        if inner_bytes > work_mem_bytes:
            metrics.spill_bytes += inner_bytes
    elif node.join_type is JoinType.MERGE:
        metrics.sort_rows += left_size + right_size
        metrics.cpu_ops += left_size + right_size
    elif node.join_type is JoinType.NESTED_LOOP:
        inner_scan = node.right if isinstance(node.right, ScanNode) else None
        inner_index = None
        if inner_scan is not None:
            column = None
            for predicate in node.predicates:
                if predicate.involves(inner_scan.alias):
                    column = predicate.column_for(inner_scan.alias)
                    break
            if column is not None:
                inner_index = database.index(inner_scan.table, column)
        if inner_index is not None:
            metrics.index_pages += left_size * inner_index.height
            metrics.cpu_ops += left_size * inner_index.height
        else:
            metrics.cpu_ops += max(left_size * right_size, 1)
    else:  # pragma: no cover - defensive
        raise ExecutionError(f"unknown join type {node.join_type!r}")


def _orient_predicate(
    predicate: JoinPredicate, left: Relation, right: Relation
) -> tuple[str, str, str, str]:
    """Return (left_alias, left_column, right_alias, right_column) oriented to the inputs."""
    if predicate.left_alias in left.aliases and predicate.right_alias in right.aliases:
        return (
            predicate.left_alias,
            predicate.left_column,
            predicate.right_alias,
            predicate.right_column,
        )
    if predicate.right_alias in left.aliases and predicate.left_alias in right.aliases:
        return (
            predicate.right_alias,
            predicate.right_column,
            predicate.left_alias,
            predicate.left_column,
        )
    raise ExecutionError(f"join predicate {predicate} does not connect the two inputs")


def _combine(
    left: Relation, right: Relation, left_pos: np.ndarray, right_pos: np.ndarray
) -> Relation:
    rows: dict[str, np.ndarray] = {}
    for alias, ids in left.rows.items():
        rows[alias] = take_rows(ids, left_pos)
    for alias, ids in right.rows.items():
        rows[alias] = take_rows(ids, right_pos)
    return Relation(rows=rows)


#: Safety cap on materialized cross-product size (tuples).  Plans that exceed
#: it are aborted and surface as timeouts in the benchmarking framework, which
#: is also how such pathological plans behave on a real system.
MAX_CROSS_PRODUCT_TUPLES = 20_000_000


def cross_product_positions(left_size: int, right_size: int) -> tuple[np.ndarray, np.ndarray]:
    """Left/right position arrays enumerating the full cross product.

    Raises :class:`ExecutionError` when the product exceeds
    :data:`MAX_CROSS_PRODUCT_TUPLES`, which the engine surfaces as a timeout.
    """
    if left_size * right_size > MAX_CROSS_PRODUCT_TUPLES:
        raise ExecutionError(
            f"cross product of {left_size} x {right_size} tuples exceeds the "
            f"executor's materialization cap"
        )
    left_pos = np.repeat(np.arange(left_size, dtype=np.int64), right_size)
    right_pos = np.tile(np.arange(right_size, dtype=np.int64), left_size)
    return left_pos, right_pos


def _cross_product(left: Relation, right: Relation) -> Relation:
    left_pos, right_pos = cross_product_positions(left.size, right.size)
    return _combine(left, right, left_pos, right_pos)
