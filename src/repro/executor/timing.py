"""Conversion of executor work profiles into simulated latencies.

The timing model is the substitution for wall-clock ``EXPLAIN ANALYZE``
measurements on a real PostgreSQL server (see DESIGN.md §2).  Latency is a
deterministic function of the work an operator performed — buffer-pool hits,
sequential and random page reads, per-tuple CPU, sorting and spilling — plus a
small seeded measurement noise.  Because page *misses* are much more expensive
than hits, repeated executions of the same query converge from a cold-cache
latency to a stable hot-cache latency, reproducing the behaviour the paper
studies in Sections 7.3 and 8.6 (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import PostgresConfig
from repro.executor.operators import OperatorMetrics

#: Cost constants in milliseconds per unit of work.  Page "misses" model a
#: read that falls through to the OS page cache / fast SSD, which is why the
#: cold-vs-hot gap is moderate (Section 8.6 reports a ~15% mean reduction
#: between the first and second execution on real hardware).
MS_PER_PAGE_HIT = 0.0035
MS_PER_SEQ_PAGE_READ = 0.009
MS_PER_RANDOM_PAGE_READ = 0.016
MS_PER_INDEX_PAGE = 0.004
MS_PER_TUPLE = 0.0008
MS_PER_CPU_OP = 0.00025
MS_PER_SORT_ROW = 0.0009
MS_PER_SPILLED_KB = 0.02
#: Fixed per-query executor startup/shutdown overhead.
MS_EXECUTOR_OVERHEAD = 0.35


@dataclass
class TimingBreakdown:
    """Decomposition of a simulated execution latency (milliseconds)."""

    io_hit_ms: float = 0.0
    io_seq_ms: float = 0.0
    io_random_ms: float = 0.0
    index_ms: float = 0.0
    cpu_ms: float = 0.0
    sort_ms: float = 0.0
    spill_ms: float = 0.0
    overhead_ms: float = MS_EXECUTOR_OVERHEAD
    noise_factor: float = 1.0

    @property
    def io_ms(self) -> float:
        """Combined I/O time: buffer hits, sequential/random reads, index pages."""
        return self.io_hit_ms + self.io_seq_ms + self.io_random_ms + self.index_ms

    @property
    def total_ms(self) -> float:
        """Total latency: all components summed, scaled by the noise factor."""
        base = (
            self.io_hit_ms
            + self.io_seq_ms
            + self.io_random_ms
            + self.index_ms
            + self.cpu_ms
            + self.sort_ms
            + self.spill_ms
            + self.overhead_ms
        )
        return base * self.noise_factor


class TimingModel:
    """Maps :class:`OperatorMetrics` to simulated milliseconds."""

    def __init__(
        self,
        config: PostgresConfig,
        noise_sigma: float = 0.02,
        seed: int = 2024,
    ) -> None:
        self.config = config
        self.noise_sigma = noise_sigma
        self._rng = np.random.default_rng(seed)
        self._parallel_factor = self._compute_parallel_factor(config)

    @staticmethod
    def _compute_parallel_factor(config: PostgresConfig) -> float:
        """Speed-up factor applied to scan-heavy work from parallel workers.

        Following Amdahl-style scaling with diminishing returns; with
        parallelism disabled (``max_parallel_workers_per_gather = 0``) the
        factor is 1.
        """
        workers = min(config.max_parallel_workers, config.max_parallel_workers_per_gather)
        workers = max(int(workers), 0)
        if workers <= 1:
            return 1.0
        return 1.0 + 0.55 * (min(workers, 8) - 1)

    def reseed(self, seed: int) -> None:
        """Reset the measurement-noise stream (used by the execution protocol)."""
        self._rng = np.random.default_rng(seed)

    def breakdown(self, metrics: OperatorMetrics, with_noise: bool = True) -> TimingBreakdown:
        """Convert a work profile into a latency breakdown."""
        io_hit = metrics.pages_hit * MS_PER_PAGE_HIT
        io_seq = metrics.seq_pages_read * MS_PER_SEQ_PAGE_READ
        io_random = metrics.random_pages_read * MS_PER_RANDOM_PAGE_READ
        index_ms = metrics.index_pages * MS_PER_INDEX_PAGE
        cpu = metrics.tuples_in * MS_PER_TUPLE + metrics.cpu_ops * MS_PER_CPU_OP
        sort = metrics.sort_rows * MS_PER_SORT_ROW
        if metrics.sort_rows:
            sort += metrics.sort_rows * MS_PER_SORT_ROW * float(
                np.log2(max(metrics.sort_rows, 2))
            ) * 0.08
        spill = (metrics.spill_bytes / 1024.0) * MS_PER_SPILLED_KB

        factor = self._parallel_factor
        io_hit /= factor
        io_seq /= factor
        cpu /= factor

        noise = 1.0
        if with_noise and self.noise_sigma > 0:
            noise = float(np.exp(self._rng.normal(0.0, self.noise_sigma)))

        return TimingBreakdown(
            io_hit_ms=io_hit,
            io_seq_ms=io_seq,
            io_random_ms=io_random,
            index_ms=index_ms,
            cpu_ms=cpu,
            sort_ms=sort,
            spill_ms=spill,
            noise_factor=noise,
        )

    def execution_time_ms(self, metrics: OperatorMetrics, with_noise: bool = True) -> float:
        """Total simulated execution time for a work profile."""
        return self.breakdown(metrics, with_noise=with_noise).total_ms
