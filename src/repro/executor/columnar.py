"""The columnar execution engine: batch operators with late materialization.

This module is the performance half of the executor.  It evaluates exactly the
same physical plans as the row engine in :mod:`repro.executor.engine` and is
required to produce **byte-identical** results, cardinalities, operator
metrics and (therefore) simulated timings — the equivalence is enforced by the
property suite in ``tests/test_columnar.py``.  What changes is only how much
real work the host machine performs:

* **Late materialization.**  A :class:`ColumnarBatch` does not store one row-id
  array per base-table alias the way :class:`~repro.executor.operators.Relation`
  does.  Instead each alias keeps a :class:`_Lineage`: the row ids produced by
  its scan plus a chain of positional indirection arrays appended by every
  join/filter above it.  Joins and selections only *record* positions; actual
  row ids are composed lazily (and cached) the first time a column of that
  alias is needed.  The row engine's ``_combine`` — gathering every alias's
  array at every join — disappears entirely.
* **Progressive filtering.**  Successive scan filters are evaluated on the
  shrinking set of surviving rows rather than on the full column, using the
  subset property of :func:`repro.optimizer.cardinality._evaluate_filter_mask`
  (``mask(column[rows]) == mask(column)[rows]``).
* **Vectorized expansion.**  Ragged per-key ranges in join matching and index
  probes expand through :func:`repro.storage.index.ragged_ranges` instead of a
  Python loop.

None of this may change observable behaviour.  The operators below charge the
buffer pool with the *same calls in the same order* and compute metrics with
the *same arithmetic* as their row counterparts, because metrics describe the
simulated plan work — which is fixed by plan semantics — not the physical
shortcuts taken here.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.statistics import NULL_SENTINEL
from repro.errors import ExecutionError
from repro.executor.engine import ExecutionEngine
from repro.executor.operators import (
    OperatorMetrics,
    _index_lookup,
    _orient_predicate,
    charge_join_type,
    cross_product_positions,
    evaluate_filter_mask,
    gather_rows,
    index_nestloop_inner,
    join_match_positions,
    null_extend_positions,
    take_rows,
)
from repro.plans.physical import JoinNode, ScanNode, ScanType
from repro.sql.binder import BoundQuery
from repro.storage.buffer_pool import BufferPool
from repro.storage.database import Database


class _Lineage:
    """Row provenance of one alias: scan output plus positional indirections.

    ``base`` is the row-id array the alias's scan produced.  ``chain`` is a
    tuple of position arrays: ``chain[0]`` indexes into ``base``, ``chain[1]``
    indexes into ``chain[0]``, and so on.  The materialized row ids are
    ``base[chain[0][chain[1][...]]]`` — composed right to left so every
    intermediate array already has the (small) final size.  Composition goes
    through :func:`~repro.executor.operators.take_rows`, so the virtual
    ``NULL_ROW_ID`` positions outer joins record propagate instead of
    wrapping around to the last element.
    """

    __slots__ = ("base", "chain")

    def __init__(self, base: np.ndarray, chain: tuple[np.ndarray, ...] = ()) -> None:
        self.base = base
        self.chain = chain

    def extend(self, positions: np.ndarray) -> "_Lineage":
        """Lineage after selecting ``positions`` from the current tuples."""
        return _Lineage(self.base, self.chain + (positions,))

    def materialize(self) -> np.ndarray:
        """Compose the indirection chain into concrete base-table row ids."""
        if not self.chain:
            return self.base
        acc = self.chain[-1]
        for positions in reversed(self.chain[:-1]):
            acc = take_rows(positions, acc)
        return take_rows(self.base, acc)


class ColumnarBatch:
    """Intermediate result of the columnar engine.

    Presents the same surface the engine's shared finalization layers use on
    :class:`~repro.executor.operators.Relation` — ``size``, ``aliases``,
    ``select``, ``fetch`` and a ``rows`` mapping — but stores per-alias
    :class:`_Lineage` objects and materializes row ids lazily, caching each
    alias's composed array on first use.
    """

    __slots__ = ("_lineages", "_size", "_materialized")

    def __init__(self, lineages: dict[str, _Lineage], size: int) -> None:
        self._lineages = lineages
        self._size = size
        self._materialized: dict[str, np.ndarray] = {}

    # -- Relation-compatible surface ----------------------------------------
    @property
    def size(self) -> int:
        """Number of (composite) tuples in the batch."""
        return self._size

    @property
    def aliases(self) -> frozenset[str]:
        """Base-table aliases whose rows this batch carries."""
        return frozenset(self._lineages)

    @property
    def rows(self) -> dict[str, np.ndarray]:
        """Materialized per-alias row ids (Relation-shaped, for tests/tools)."""
        return {alias: self.row_ids(alias) for alias in self._lineages}

    def row_ids(self, alias: str) -> np.ndarray:
        """Concrete base-table row ids of ``alias``, composed and cached."""
        cached = self._materialized.get(alias)
        if cached is not None:
            return cached
        lineage = self._lineages.get(alias)
        if lineage is None:
            raise ExecutionError(f"relation does not contain alias {alias!r}")
        materialized = lineage.materialize()
        self._materialized[alias] = materialized
        return materialized

    def _extended(self, alias: str, positions: np.ndarray) -> _Lineage:
        """Lineage of ``alias`` after selecting ``positions``.

        When this batch already materialized the alias (someone fetched one of
        its columns), the child lineage restarts from that concrete array with
        a one-element chain — so chains stay short along the axes the plan
        actually touches instead of growing with join depth.
        """
        materialized = self._materialized.get(alias)
        if materialized is not None:
            return _Lineage(materialized, (positions,))
        return self._lineages[alias].extend(positions)

    def select(self, positions: np.ndarray) -> "ColumnarBatch":
        """Keep only the tuples at ``positions`` — O(aliases), no gathers."""
        positions = np.asarray(positions, dtype=np.int64)
        lineages = {
            alias: self._extended(alias, positions) for alias in self._lineages
        }
        return ColumnarBatch(lineages, int(positions.size))

    def fetch(
        self, database: Database, query: BoundQuery, alias: str, column: str
    ) -> np.ndarray:
        """Column values of ``alias.column`` for every tuple of this batch."""
        data = database.table_data(query.table_of(alias))
        return gather_rows(data, column, self.row_ids(alias))

    # -- constructors --------------------------------------------------------
    @staticmethod
    def from_scan(alias: str, row_ids: np.ndarray) -> "ColumnarBatch":
        """Single-alias batch over the row ids a scan produced."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        return ColumnarBatch({alias: _Lineage(row_ids)}, int(row_ids.size))

    @staticmethod
    def join(
        left: "ColumnarBatch",
        right: "ColumnarBatch",
        left_pos: np.ndarray,
        right_pos: np.ndarray,
    ) -> "ColumnarBatch":
        """Batch pairing ``left[left_pos[i]]`` with ``right[right_pos[i]]``.

        Only records the position arrays in each side's lineage — the lazy
        replacement for the row engine's per-alias ``_combine`` gathers.
        """
        lineages: dict[str, _Lineage] = {}
        for alias in left._lineages:
            lineages[alias] = left._extended(alias, left_pos)
        for alias in right._lineages:
            lineages[alias] = right._extended(alias, right_pos)
        return ColumnarBatch(lineages, int(left_pos.size))

    @staticmethod
    def join_with_base(
        left: "ColumnarBatch",
        alias: str,
        row_ids: np.ndarray,
        left_pos: np.ndarray,
    ) -> "ColumnarBatch":
        """Batch pairing ``left[left_pos[i]]`` with base row ``row_ids[i]``.

        Used by the index nested loop, whose inner side arrives as freshly
        probed base-table row ids rather than an existing batch.
        """
        lineages = {
            existing: left._extended(existing, left_pos) for existing in left._lineages
        }
        lineages[alias] = _Lineage(np.asarray(row_ids, dtype=np.int64))
        return ColumnarBatch(lineages, int(left_pos.size))


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------

def columnar_scan(
    database: Database,
    query: BoundQuery,
    node: ScanNode,
    buffer_pool: BufferPool,
) -> tuple[ColumnarBatch, OperatorMetrics]:
    """Scan with progressive filtering; accounting identical to ``execute_scan``.

    The row engine evaluates every filter over the full column and conjoins
    the masks; here only the first (or the index-driving) filter sees full
    data and each later filter is evaluated on the gathered codes of the rows
    still alive.  CPU charges stay those of the full-column evaluation — the
    simulated scan always reads every tuple.
    """
    metrics = OperatorMetrics()
    data = database.table_data(node.table)
    row_count = data.row_count
    metrics.tuples_in = row_count

    if row_count == 0:
        return ColumnarBatch.from_scan(node.alias, np.empty(0, dtype=np.int64)), metrics

    driving_filter = None
    if node.index_column is not None:
        for predicate in node.filters:
            if predicate.column == node.index_column and predicate.op in (
                "=", "<", "<=", ">", ">=", "between", "in",
            ):
                driving_filter = predicate
                break

    if node.scan_type is ScanType.SEQ or driving_filter is None:
        access = buffer_pool.access_pages(node.table, data.page_count, sequential=True)
        metrics.pages_hit += access.hits
        metrics.seq_pages_read += access.misses
        row_ids: np.ndarray | None = None
        for predicate in node.filters:
            if row_ids is None:
                row_ids = np.nonzero(evaluate_filter_mask(data, predicate))[0]
            elif row_ids.size:
                subset = data.gather(predicate.column, row_ids)
                row_ids = row_ids[evaluate_filter_mask(data, predicate, subset)]
            metrics.cpu_ops += row_count
        if row_ids is None:
            row_ids = np.arange(row_count, dtype=np.int64)
    else:
        index = database.index(node.table, node.index_column)
        if index is None:
            raise ExecutionError(
                f"plan requires an index on {node.table}.{node.index_column} that does not exist"
            )
        lookup = _index_lookup(index, data, driving_filter)
        metrics.index_pages += lookup.index_pages
        matched = lookup.row_ids
        heap_pages = min(matched.size, data.page_count)
        sequential = node.scan_type is ScanType.BITMAP
        if node.scan_type is ScanType.TID:
            heap_pages = min(1, data.page_count)
        access = buffer_pool.access_fraction(
            node.table, data.page_count, heap_pages / max(data.page_count, 1), sequential=sequential
        )
        metrics.pages_hit += access.hits
        if sequential:
            metrics.seq_pages_read += access.misses
        else:
            metrics.random_pages_read += access.misses
        # The row engine charges every non-driving filter against the full
        # matched set; keep that charge while filtering progressively.
        charge = int(matched.size)
        row_ids = matched
        for predicate in node.filters:
            if predicate is driving_filter:
                continue
            if row_ids.size:
                subset = data.gather(predicate.column, row_ids)
                row_ids = row_ids[evaluate_filter_mask(data, predicate, subset)]
            metrics.cpu_ops += charge

    metrics.tuples_out = int(row_ids.size)
    metrics.cpu_ops += int(row_ids.size)
    return ColumnarBatch.from_scan(node.alias, row_ids), metrics


def columnar_join(
    database: Database,
    query: BoundQuery,
    node: JoinNode,
    left: ColumnarBatch,
    right: ColumnarBatch,
    buffer_pool: BufferPool,
    work_mem_bytes: int,
) -> tuple[ColumnarBatch, OperatorMetrics]:
    """Join two batches; accounting identical to ``execute_join``.

    Only the primary predicate's two key columns are materialized; the match
    itself and the pairing of all carried aliases are positional.
    """
    metrics = OperatorMetrics()
    metrics.tuples_in = left.size + right.size

    if not node.predicates:
        left_pos, right_pos = cross_product_positions(left.size, right.size)
        result = ColumnarBatch.join(left, right, left_pos, right_pos)
        metrics.cpu_ops += max(left.size * right.size, 1)
        metrics.tuples_out = result.size
        return result, metrics

    primary = node.predicates[0]
    left_alias, left_column, right_alias, right_column = _orient_predicate(primary, left, right)

    left_values = left.fetch(database, query, left_alias, left_column)
    right_values = right.fetch(database, query, right_alias, right_column)

    left_pos, right_pos = join_match_positions(left_values, right_values)
    # SQL semantics: NULL never equals NULL (see execute_join).
    if left_pos.size:
        not_null = left_values[left_pos] != NULL_SENTINEL
        left_pos = left_pos[not_null]
        right_pos = right_pos[not_null]

    charge_join_type(database, node, left.size, right.size, work_mem_bytes, metrics)

    result = ColumnarBatch.join(left, right, left_pos, right_pos)

    for predicate in node.predicates[1:]:
        la, lc, ra, rc = _orient_predicate(predicate, left, right)
        lvals = result.fetch(database, query, la, lc)
        rvals = result.fetch(database, query, ra, rc)
        keep = (lvals == rvals) & (lvals != NULL_SENTINEL)
        metrics.cpu_ops += result.size
        result = result.select(np.nonzero(keep)[0])

    metrics.tuples_out = result.size
    metrics.cpu_ops += result.size
    return result, metrics


def columnar_outer_join(
    database: Database,
    query: BoundQuery,
    node: JoinNode,
    left: ColumnarBatch,
    right: ColumnarBatch,
    buffer_pool: BufferPool,
    work_mem_bytes: int,
) -> tuple[ColumnarBatch, OperatorMetrics]:
    """Outer join two batches; accounting identical to ``execute_outer_join``.

    Secondary ON predicates filter the matched positions *before* NULL
    extension (they are part of the join condition, not post-join filters),
    then :func:`~repro.executor.operators.null_extend_positions` appends the
    unmatched tuples with ``NULL_ROW_ID`` on the absent side — the same shared
    helper, and therefore the same row order, as the row engine.  The batch
    built from the extended positions keeps the virtual row id lazily in its
    lineage chains; ``fetch`` decodes it to the NULL sentinel on demand.
    """
    metrics = OperatorMetrics()
    metrics.tuples_in = left.size + right.size

    if not node.predicates:
        raise ExecutionError("outer join requires at least one join predicate")

    primary = node.predicates[0]
    left_alias, left_column, right_alias, right_column = _orient_predicate(primary, left, right)

    left_values = left.fetch(database, query, left_alias, left_column)
    right_values = right.fetch(database, query, right_alias, right_column)

    left_pos, right_pos = join_match_positions(left_values, right_values)
    # NULL never equals NULL — and a NULL-extended left tuple from an earlier
    # outer fold carries sentinel keys, so it simply re-extends here.
    if left_pos.size:
        not_null = left_values[left_pos] != NULL_SENTINEL
        left_pos = left_pos[not_null]
        right_pos = right_pos[not_null]

    for predicate in node.predicates[1:]:
        la, lc, ra, rc = _orient_predicate(predicate, left, right)
        lvals = left.fetch(database, query, la, lc)[left_pos]
        rvals = right.fetch(database, query, ra, rc)[right_pos]
        keep = (lvals == rvals) & (lvals != NULL_SENTINEL)
        metrics.cpu_ops += int(left_pos.size)
        left_pos = left_pos[keep]
        right_pos = right_pos[keep]

    charge_join_type(database, node, left.size, right.size, work_mem_bytes, metrics)

    left_pos, right_pos = null_extend_positions(
        node.join_kind, left.size, right.size, left_pos, right_pos
    )
    result = ColumnarBatch.join(left, right, left_pos, right_pos)

    metrics.tuples_out = result.size
    metrics.cpu_ops += result.size
    return result, metrics


def columnar_index_nestloop(
    database: Database,
    query: BoundQuery,
    node: JoinNode,
    left: ColumnarBatch,
    buffer_pool: BufferPool,
) -> tuple[ColumnarBatch, OperatorMetrics]:
    """Index nested loop; accounting identical to ``execute_index_nestloop``."""
    resolved = index_nestloop_inner(database, node)
    if resolved is None:
        raise ExecutionError("join cannot be executed as an index nested loop")
    inner_scan, index, column, probe = resolved
    metrics = OperatorMetrics()
    metrics.tuples_in = left.size

    outer_alias, outer_column = probe.other(inner_scan.alias)
    outer_keys = left.fetch(database, query, outer_alias, outer_column)

    probe_positions, matched_rows, index_pages = index.probe_many(outer_keys)
    metrics.index_pages += index_pages
    metrics.cpu_ops += left.size
    if probe_positions.size:
        not_null = outer_keys[probe_positions] != NULL_SENTINEL
        probe_positions = probe_positions[not_null]
        matched_rows = matched_rows[not_null]

    data = database.table_data(inner_scan.table)
    heap_pages = min(int(matched_rows.size), data.page_count)
    access = buffer_pool.access_fraction(
        inner_scan.table, data.page_count, heap_pages / max(data.page_count, 1), sequential=False
    )
    metrics.pages_hit += access.hits
    metrics.random_pages_read += access.misses

    # Inner-scan filters: progressive subset evaluation, row-engine charges.
    charge = int(matched_rows.size)
    for predicate in inner_scan.filters:
        if matched_rows.size:
            subset = data.gather(predicate.column, matched_rows)
            keep = evaluate_filter_mask(data, predicate, subset)
            matched_rows = matched_rows[keep]
            probe_positions = probe_positions[keep]
        metrics.cpu_ops += charge

    result = ColumnarBatch.join_with_base(left, inner_scan.alias, matched_rows, probe_positions)

    # Every join predicate except the probe becomes a post-join filter (see
    # execute_index_nestloop for why none may be skipped).
    for predicate in node.predicates:
        if predicate is probe:
            continue
        if (
            predicate.left_alias not in result.aliases
            or predicate.right_alias not in result.aliases
        ):
            raise ExecutionError(
                f"join predicate {predicate} does not connect the joined relations"
            )
        lvals = result.fetch(database, query, predicate.left_alias, predicate.left_column)
        rvals = result.fetch(database, query, predicate.right_alias, predicate.right_column)
        keep_mask = (lvals == rvals) & (lvals != NULL_SENTINEL)
        metrics.cpu_ops += result.size
        result = result.select(np.nonzero(keep_mask)[0])

    metrics.tuples_out = result.size
    metrics.cpu_ops += result.size
    return result, metrics


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

class ColumnarExecutionEngine(ExecutionEngine):
    """Drop-in engine running the columnar operators above.

    Everything outside the four operator hooks — timing, timeouts, sort,
    aggregation, projection, EXPLAIN row counts — is inherited unchanged from
    :class:`~repro.executor.engine.ExecutionEngine`, which is exactly what
    guarantees the two engines can only diverge inside the operators (where
    the equivalence suite pins them together).
    """

    kind = "columnar"

    def _outer_join_node(self, query: BoundQuery, node: JoinNode, left, right):
        """LEFT/FULL outer join with lazy NULL-extended lineages."""
        return columnar_outer_join(
            self.database,
            query,
            node,
            left,
            right,
            self.database.buffer_pool,
            self.config.work_mem,
        )

    def _scan_node(self, query: BoundQuery, node: ScanNode):
        """Evaluate one base-table scan columnar-style."""
        return columnar_scan(self.database, query, node, self.database.buffer_pool)

    def _join_node(self, query: BoundQuery, node: JoinNode, left, right):
        """Join two batches positionally."""
        return columnar_join(
            self.database,
            query,
            node,
            left,
            right,
            self.database.buffer_pool,
            self.config.work_mem,
        )

    def _index_nestloop_node(self, query: BoundQuery, node: JoinNode, left):
        """Probe the inner index per outer tuple, pairing lazily."""
        return columnar_index_nestloop(
            self.database, query, node, left, self.database.buffer_pool
        )
