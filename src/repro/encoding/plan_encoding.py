"""Plan encoding: vectorizing physical plan trees for ML models.

Every plan node becomes a fixed-size feature vector holding

* a one-hot of the physical operator family (3 join types + 4 scan types),
* a one-hot of the base table (scan nodes only),
* log-scaled cardinality and cost estimates (as read from EXPLAIN).

The encoded plan keeps the binary tree structure (:class:`EncodedPlanTree`),
which tree-structured models (tree convolution / Tree-LSTM, Section 5) consume
directly; :meth:`PlanTreeEncoder.pooled_vector` additionally provides the
pooled fixed-size representation used by simpler regressors such as Bao's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.schema import Schema
from repro.errors import EncodingError
from repro.plans.physical import JoinNode, JoinType, PlanNode, ScanNode, ScanType, strip_decorations

_JOIN_TYPES = (JoinType.NESTED_LOOP, JoinType.HASH, JoinType.MERGE)
_SCAN_TYPES = (ScanType.SEQ, ScanType.INDEX, ScanType.BITMAP, ScanType.TID)


@dataclass
class PlanNodeFeatures:
    """Feature vector of one plan node."""

    vector: np.ndarray
    label: str


@dataclass
class EncodedPlanTree:
    """A binary tree of node feature vectors mirroring the plan structure."""

    features: np.ndarray
    label: str
    left: "EncodedPlanTree | None" = None
    right: "EncodedPlanTree | None" = None

    def node_count(self) -> int:
        count = 1
        if self.left is not None:
            count += self.left.node_count()
        if self.right is not None:
            count += self.right.node_count()
        return count

    def all_features(self) -> np.ndarray:
        """Matrix of every node's features (pre-order), shape (n_nodes, dim)."""
        rows = [self.features]
        if self.left is not None:
            rows.append(self.left.all_features())
        if self.right is not None:
            rows.append(self.right.all_features())
        return np.vstack(rows)


class PlanTreeEncoder:
    """Encodes physical plans of one schema into feature trees and pooled vectors."""

    def __init__(self, schema: Schema, include_table_identity: bool = True) -> None:
        self.schema = schema
        self.include_table_identity = include_table_identity
        self._tables = schema.table_names()
        self._table_index = {name: i for i, name in enumerate(self._tables)}
        self._n_tables = len(self._tables) if include_table_identity else 0

    # -- geometry -----------------------------------------------------------------
    @property
    def node_feature_size(self) -> int:
        # operator one-hots + table one-hot + [log rows, log cost, is_join, is_scan]
        return len(_JOIN_TYPES) + len(_SCAN_TYPES) + self._n_tables + 4

    # -- encoding ------------------------------------------------------------------
    def encode_node(self, node: PlanNode) -> PlanNodeFeatures:
        join_onehot = np.zeros(len(_JOIN_TYPES), dtype=np.float32)
        scan_onehot = np.zeros(len(_SCAN_TYPES), dtype=np.float32)
        table_onehot = np.zeros(self._n_tables, dtype=np.float32)
        is_join = 0.0
        is_scan = 0.0
        if isinstance(node, JoinNode):
            join_onehot[_JOIN_TYPES.index(node.join_type)] = 1.0
            is_join = 1.0
        elif isinstance(node, ScanNode):
            scan_onehot[_SCAN_TYPES.index(node.scan_type)] = 1.0
            is_scan = 1.0
            if self.include_table_identity:
                index = self._table_index.get(node.table)
                if index is None:
                    raise EncodingError(f"plan references unknown table {node.table!r}")
                table_onehot[index] = 1.0
        rows = max(node.estimated_rows, 1.0)
        cost = max(node.estimated_cost, 1.0)
        tail = np.asarray(
            [np.log1p(rows) / 20.0, np.log1p(cost) / 20.0, is_join, is_scan],
            dtype=np.float32,
        )
        vector = np.concatenate([join_onehot, scan_onehot, table_onehot, tail])
        return PlanNodeFeatures(vector=vector, label=node.label())

    def encode(self, plan: PlanNode) -> EncodedPlanTree:
        """Encode the scan/join core of a plan into a feature tree."""
        core = strip_decorations(plan)
        return self._encode_recursive(core)

    def _encode_recursive(self, node: PlanNode) -> EncodedPlanTree:
        features = self.encode_node(node)
        if isinstance(node, JoinNode):
            assert node.left is not None and node.right is not None
            return EncodedPlanTree(
                features=features.vector,
                label=features.label,
                left=self._encode_recursive(strip_decorations(node.left)),
                right=self._encode_recursive(strip_decorations(node.right)),
            )
        return EncodedPlanTree(features=features.vector, label=features.label)

    def pooled_vector(self, plan: PlanNode) -> np.ndarray:
        """Fixed-size pooled plan representation: [max-pool, mean-pool, sum of logs].

        This is the "stacking/pooling" style aggregation listed in Table 1 for
        methods that do not run a tree-structured network over the plan.
        """
        tree = self.encode(plan)
        matrix = tree.all_features()
        max_pool = matrix.max(axis=0)
        mean_pool = matrix.mean(axis=0)
        depth = np.asarray([matrix.shape[0] / 32.0], dtype=np.float32)
        return np.concatenate([max_pool, mean_pool, depth]).astype(np.float32)

    @property
    def pooled_size(self) -> int:
        return 2 * self.node_feature_size + 1
