"""Query encoding: join-graph adjacency, table presence and filter features.

The encoder produces a fixed-size vector for a bound query given a schema.
Feature layout (sizes depend on the schema):

* table presence counts — one slot per schema table (aliases of the same table
  accumulate),
* join adjacency — upper triangle of the table-level adjacency matrix,
* filter features — per schema column: the estimated combined selectivity of
  the filters on that column (1.0 when unfiltered) and a min-max-scaled
  literal value (RTOS-style explicit filter vectorization, Section 4.1).

Using selectivities *and* scaled literals keeps the encoding closer to a
one-to-one mapping between queries and feature vectors than selectivity-only
encodings, which the paper identifies as an invariance risk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.schema import Schema
from repro.errors import EncodingError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.sql.binder import BoundQuery
from repro.storage.database import Database


@dataclass
class QueryEncoding:
    """The encoded query plus named slices for inspection and tests."""

    vector: np.ndarray
    table_presence: np.ndarray
    join_adjacency: np.ndarray
    filter_selectivity: np.ndarray
    filter_values: np.ndarray

    @property
    def size(self) -> int:
        return int(self.vector.size)


class QueryEncoder:
    """Encodes bound queries against a fixed schema (and optional statistics)."""

    def __init__(self, database: Database) -> None:
        self._db = database
        self.schema: Schema = database.schema
        self._estimator = CardinalityEstimator(database)
        self._tables = self.schema.table_names()
        self._table_index = {name: i for i, name in enumerate(self._tables)}
        self._n_tables = len(self._tables)
        self._n_columns = self.schema.total_columns
        # Upper-triangle (including diagonal for self-joins) positions.
        self._pair_index: dict[tuple[int, int], int] = {}
        position = 0
        for i in range(self._n_tables):
            for j in range(i, self._n_tables):
                self._pair_index[(i, j)] = position
                position += 1
        self._n_pairs = position

    # -- geometry ---------------------------------------------------------------
    @property
    def encoding_size(self) -> int:
        return self._n_tables + self._n_pairs + 2 * self._n_columns

    # -- encoding ---------------------------------------------------------------
    def encode(self, query: BoundQuery) -> QueryEncoding:
        """Encode a bound query into a fixed-size vector."""
        if query.schema.name != self.schema.name:
            raise EncodingError(
                f"query bound against schema {query.schema.name!r}, encoder built for "
                f"{self.schema.name!r}"
            )
        presence = np.zeros(self._n_tables, dtype=np.float32)
        adjacency = np.zeros(self._n_pairs, dtype=np.float32)
        selectivity = np.ones(self._n_columns, dtype=np.float32)
        values = np.zeros(self._n_columns, dtype=np.float32)

        for relation in query.relations:
            presence[self._table_index[relation.table]] += 1.0

        for join in query.joins:
            left_table = query.table_of(join.left_alias)
            right_table = query.table_of(join.right_alias)
            i = self._table_index[left_table]
            j = self._table_index[right_table]
            key = (min(i, j), max(i, j))
            adjacency[self._pair_index[key]] = 1.0

        for predicate in query.filters:
            table = query.table_of(predicate.alias)
            column_position = self.schema.column_index(table, predicate.column)
            sel = self._estimator.filter_selectivity(query, predicate)
            selectivity[column_position] = min(
                float(selectivity[column_position]) * float(sel), 1.0
            )
            values[column_position] = self._scaled_literal(query, predicate)

        vector = np.concatenate([presence, adjacency, selectivity, values]).astype(np.float32)
        return QueryEncoding(
            vector=vector,
            table_presence=presence,
            join_adjacency=adjacency,
            filter_selectivity=selectivity,
            filter_values=values,
        )

    def encode_vector(self, query: BoundQuery) -> np.ndarray:
        """Shorthand returning only the flat feature vector."""
        return self.encode(query).vector

    # -- helpers -------------------------------------------------------------------
    def _scaled_literal(self, query: BoundQuery, predicate) -> float:
        """Min-max scale the (first) literal of a filter into [0, 1]."""
        if not predicate.values:
            return 0.5
        table = query.table_of(predicate.alias)
        stats = self._db.statistics(table)
        if not stats.has_column(predicate.column):
            return 0.5
        col = stats.column(predicate.column)
        if col.min_value is None or col.max_value is None or col.max_value <= col.min_value:
            return 0.5
        data = self._db.table_data(table)
        try:
            code = float(data.encode(predicate.column, predicate.values[0]))
        except Exception:  # unknown literal: encode mid-range
            return 0.5
        span = col.max_value - col.min_value
        return float(np.clip((code - col.min_value) / span, 0.0, 1.0))
