"""Query and plan encodings for the learned optimizers.

Following Section 4 of the paper we distinguish:

* **query encoding** — information independent of how the query is executed:
  the join-graph adjacency matrix, table presence, and per-column filter
  features (selectivities and min-max-scaled literals), and
* **plan encoding** — information derived from a concrete physical plan: the
  tree of operator nodes with join/scan type one-hots, table identifiers and
  cardinality/cost estimates.

:mod:`repro.encoding.featurizers` exposes per-LQO featurizer descriptions that
mirror Table 1 (which methods use which components).
"""

from repro.encoding.query_encoding import QueryEncoder, QueryEncoding
from repro.encoding.plan_encoding import PlanTreeEncoder, PlanNodeFeatures, EncodedPlanTree
from repro.encoding.featurizers import EncodingSpec, featurizer_for

__all__ = [
    "QueryEncoder",
    "QueryEncoding",
    "PlanTreeEncoder",
    "PlanNodeFeatures",
    "EncodedPlanTree",
    "EncodingSpec",
    "featurizer_for",
]
