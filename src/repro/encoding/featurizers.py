"""Per-LQO encoding specifications mirroring Table 1 of the paper.

Each :class:`EncodingSpec` records which encoding components a learned query
optimizer uses (query-level adjacency matrix, numerical/text attribute
handling, plan-level join/scan/table identifiers), how encodings are
aggregated, which ML model family consumes them and how the method is tested.
The specs are consumed by :mod:`repro.lqo.registry` to regenerate Table 1 and
by the LQO implementations to assemble their feature pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodingError


@dataclass(frozen=True)
class EncodingSpec:
    """Structured description of one LQO's encoding pipeline (Table 1 row)."""

    name: str
    # --- query encoding ---------------------------------------------------
    uses_adjacency_matrix: bool
    numerical_attributes: str  # "cardinality", "filters", or "-"
    text_attributes: str  # "word2vec", "cardinality", or "-"
    encoding_aggregation: str  # "stacking", "FC + pooling", ...
    # --- plan encoding -----------------------------------------------------
    uses_join_type: bool
    uses_scan_type: bool
    uses_table_identifier: bool
    uses_extra_training_data: bool
    # --- training specifics --------------------------------------------------
    ml_model: str  # "Regression" or "LTR"
    plan_processing: str  # "Tree-CNN" or "Tree-LSTM"
    model_output: str  # "Plan", "Hint set", "Hint"
    testing: str  # "Static", "CV", "Time Series"
    dbms_integration: bool

    @property
    def uses_query_encoding(self) -> bool:
        """Whether the method encodes the query at all (Bao and Lero do not)."""
        return self.uses_adjacency_matrix or self.numerical_attributes != "-"

    def table1_row(self) -> dict[str, str]:
        """Render this spec as one row of Table 1 (checkmarks as in the paper)."""
        def check(flag: bool) -> str:
            return "yes" if flag else "-"

        return {
            "LQO": self.name,
            "Adjacency Matrix": check(self.uses_adjacency_matrix),
            "Numerical Attributes": self.numerical_attributes,
            "Text Attributes": self.text_attributes,
            "Encoding Aggregation": self.encoding_aggregation,
            "Join Type": check(self.uses_join_type),
            "Scan Type": check(self.uses_scan_type),
            "Table Identifier": check(self.uses_table_identifier),
            "Data+": check(self.uses_extra_training_data),
            "ML Model": self.ml_model,
            "Plan Processing": self.plan_processing,
            "Model Output": self.model_output,
            "Testing": self.testing,
            "DBMS Integration": check(self.dbms_integration),
        }


#: Table 1 of the paper, method by method.
ENCODING_SPECS: dict[str, EncodingSpec] = {
    "neo": EncodingSpec(
        name="Neo",
        uses_adjacency_matrix=True,
        numerical_attributes="cardinality",
        text_attributes="word2vec",
        encoding_aggregation="stacking",
        uses_join_type=True,
        uses_scan_type=True,
        uses_table_identifier=True,
        uses_extra_training_data=False,
        ml_model="Regression",
        plan_processing="Tree-CNN",
        model_output="Plan",
        testing="Static",
        dbms_integration=False,
    ),
    "rtos": EncodingSpec(
        name="RTOS",
        uses_adjacency_matrix=True,
        numerical_attributes="filters",
        text_attributes="cardinality",
        encoding_aggregation="FC + pooling",
        uses_join_type=False,
        uses_scan_type=False,
        uses_table_identifier=True,
        uses_extra_training_data=False,
        ml_model="Regression",
        plan_processing="Tree-LSTM",
        model_output="Plan",
        testing="CV",
        dbms_integration=False,
    ),
    "bao": EncodingSpec(
        name="Bao",
        uses_adjacency_matrix=False,
        numerical_attributes="-",
        text_attributes="-",
        encoding_aggregation="-",
        uses_join_type=True,
        uses_scan_type=True,
        uses_table_identifier=False,
        uses_extra_training_data=True,
        ml_model="Regression",
        plan_processing="Tree-CNN",
        model_output="Hint set",
        testing="Time Series",
        dbms_integration=True,
    ),
    "balsa": EncodingSpec(
        name="Balsa",
        uses_adjacency_matrix=True,
        numerical_attributes="cardinality",
        text_attributes="cardinality",
        encoding_aggregation="stacking",
        uses_join_type=True,
        uses_scan_type=True,
        uses_table_identifier=True,
        uses_extra_training_data=False,
        ml_model="Regression",
        plan_processing="Tree-CNN",
        model_output="Plan",
        testing="Static",
        dbms_integration=False,
    ),
    "lero": EncodingSpec(
        name="Lero",
        uses_adjacency_matrix=False,
        numerical_attributes="-",
        text_attributes="-",
        encoding_aggregation="-",
        uses_join_type=True,
        uses_scan_type=True,
        uses_table_identifier=True,
        uses_extra_training_data=True,
        ml_model="LTR",
        plan_processing="Tree-CNN",
        model_output="Plan",
        testing="Static",
        dbms_integration=True,
    ),
    "leon": EncodingSpec(
        name="LEON",
        uses_adjacency_matrix=True,
        numerical_attributes="cardinality",
        text_attributes="cardinality",
        encoding_aggregation="stacking",
        uses_join_type=True,
        uses_scan_type=True,
        uses_table_identifier=True,
        uses_extra_training_data=False,
        ml_model="LTR",
        plan_processing="Tree-CNN",
        model_output="Plan",
        testing="Static",
        dbms_integration=False,
    ),
    "loger": EncodingSpec(
        name="LOGER",
        uses_adjacency_matrix=True,
        numerical_attributes="filters",
        text_attributes="cardinality",
        encoding_aggregation="FC + pooling + GT",
        uses_join_type=True,
        uses_scan_type=False,
        uses_table_identifier=True,
        uses_extra_training_data=False,
        ml_model="Regression",
        plan_processing="Tree-LSTM",
        model_output="Hint",
        testing="Static",
        dbms_integration=False,
    ),
    "hybridqo": EncodingSpec(
        name="HybridQO",
        uses_adjacency_matrix=True,
        numerical_attributes="cardinality",
        text_attributes="cardinality",
        encoding_aggregation="stacking + FC",
        uses_join_type=True,
        uses_scan_type=True,
        uses_table_identifier=True,
        uses_extra_training_data=True,
        ml_model="Regression",
        plan_processing="Tree-LSTM",
        model_output="Plan",
        testing="Static",
        dbms_integration=False,
    ),
}


def featurizer_for(method: str) -> EncodingSpec:
    """Look up the encoding specification of a method (case-insensitive)."""
    key = method.lower()
    if key not in ENCODING_SPECS:
        raise EncodingError(
            f"no encoding specification for method {method!r}; "
            f"known methods: {sorted(ENCODING_SPECS)}"
        )
    return ENCODING_SPECS[key]


def table1_rows() -> list[dict[str, str]]:
    """All Table 1 rows in the paper's order."""
    order = ["neo", "rtos", "bao", "balsa", "lero", "leon", "loger", "hybridqo"]
    return [ENCODING_SPECS[m].table1_row() for m in order]
