"""Physical query plans, plan properties and the hint mechanism.

A physical plan is a binary tree of :class:`ScanNode` leaves and
:class:`JoinNode` inner nodes, optionally topped by sort / aggregate nodes.
Plans are produced by the optimizer (:mod:`repro.optimizer.planner`), consumed
by the executor (:mod:`repro.executor.engine`), vectorized by the encoders
(:mod:`repro.encoding.plan_encoding`) and generated directly by the learned
optimizers (:mod:`repro.lqo`).
"""

from repro.plans.physical import (
    AggregateNode,
    JoinKind,
    JoinNode,
    JoinType,
    PlanNode,
    ScanNode,
    ScanType,
    SortNode,
    plan_aliases,
    plan_depth,
    plan_join_nodes,
    plan_scan_nodes,
)
from repro.plans.properties import (
    PlanShape,
    classify_plan_shape,
    is_bushy,
    is_left_deep,
    join_order_of,
)
from repro.plans.hints import HintSet, OperatorToggles, BAO_HINT_SETS, BAO_ARM_NAMES

__all__ = [
    "AggregateNode",
    "JoinKind",
    "JoinNode",
    "JoinType",
    "PlanNode",
    "ScanNode",
    "ScanType",
    "SortNode",
    "plan_aliases",
    "plan_depth",
    "plan_join_nodes",
    "plan_scan_nodes",
    "PlanShape",
    "classify_plan_shape",
    "is_bushy",
    "is_left_deep",
    "join_order_of",
    "HintSet",
    "OperatorToggles",
    "BAO_HINT_SETS",
    "BAO_ARM_NAMES",
]
