"""Planner hints — the simulator's analogue of the pg_hint_plan extension.

Every LQO in the paper steers PostgreSQL through hints: Neo/Balsa/LEON force a
full join order with scan and join methods, Bao/LOGER only toggle operator
families on or off (hint *sets*), HybridQO constrains the top of the join
order (a "leading" prefix).  :class:`HintSet` covers all three styles and the
planner (:mod:`repro.optimizer.planner`) honours whatever subset is present.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from repro.errors import HintError
from repro.plans.physical import JoinType, ScanType


@dataclass(frozen=True)
class OperatorToggles:
    """Bao-style global operator enable/disable switches.

    ``None`` means "leave the configuration value untouched"; ``True`` /
    ``False`` overrides the corresponding ``enable_*`` GUC for one query.
    """

    hashjoin: bool | None = None
    mergejoin: bool | None = None
    nestloop: bool | None = None
    seqscan: bool | None = None
    indexscan: bool | None = None
    bitmapscan: bool | None = None

    def as_dict(self) -> dict[str, bool | None]:
        return {
            "enable_hashjoin": self.hashjoin,
            "enable_mergejoin": self.mergejoin,
            "enable_nestloop": self.nestloop,
            "enable_seqscan": self.seqscan,
            "enable_indexscan": self.indexscan,
            "enable_bitmapscan": self.bitmapscan,
        }

    def active_overrides(self) -> dict[str, bool]:
        """Only the toggles that actually override the configuration."""
        return {k: v for k, v in self.as_dict().items() if v is not None}

    def describe(self) -> str:
        overrides = self.active_overrides()
        if not overrides:
            return "no operator toggles"
        return ", ".join(f"{k}={'on' if v else 'off'}" for k, v in sorted(overrides.items()))


@dataclass(frozen=True)
class HintSet:
    """A collection of hints for one query.

    Attributes:
        leading: the forced join order as a nested-parenthesis structure
            flattened to a sequence of aliases; when ``join_order_exact`` is
            True it is the complete order, otherwise only a prefix constraint
            (HybridQO-style).
        join_methods: mapping of a frozenset of aliases (the join's output
            aliases at that point of the order) to a forced :class:`JoinType`.
        scan_methods: mapping of alias to a forced :class:`ScanType`.
        toggles: Bao-style global operator switches.
    """

    leading: tuple[str, ...] = ()
    join_order_exact: bool = True
    join_methods: Mapping[frozenset[str], JoinType] = field(default_factory=dict)
    scan_methods: Mapping[str, ScanType] = field(default_factory=dict)
    toggles: OperatorToggles = field(default_factory=OperatorToggles)
    #: Free-form name used in reports (e.g. the Bao arm name).
    name: str = ""

    # -- constructors ----------------------------------------------------------
    @staticmethod
    def from_join_order(
        order: Sequence[str],
        join_methods: Mapping[frozenset[str], JoinType] | None = None,
        scan_methods: Mapping[str, ScanType] | None = None,
        name: str = "",
    ) -> "HintSet":
        """A full-plan hint forcing an exact (left-deep) join order."""
        return HintSet(
            leading=tuple(order),
            join_order_exact=True,
            join_methods=dict(join_methods or {}),
            scan_methods=dict(scan_methods or {}),
            name=name,
        )

    @staticmethod
    def from_leading_prefix(prefix: Sequence[str], name: str = "") -> "HintSet":
        """A HybridQO-style hint constraining only the first joined aliases."""
        return HintSet(leading=tuple(prefix), join_order_exact=False, name=name)

    @staticmethod
    def from_toggles(toggles: OperatorToggles, name: str = "") -> "HintSet":
        """A Bao-style hint set that only switches operator families."""
        return HintSet(toggles=toggles, name=name)

    # -- introspection -----------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return (
            not self.leading
            and not self.join_methods
            and not self.scan_methods
            and not self.toggles.active_overrides()
        )

    @property
    def forces_join_order(self) -> bool:
        return bool(self.leading) and self.join_order_exact

    def scan_method_for(self, alias: str) -> ScanType | None:
        return self.scan_methods.get(alias)

    def join_method_for(self, aliases: Iterable[str]) -> JoinType | None:
        return self.join_methods.get(frozenset(aliases))

    def validate(self, known_aliases: Iterable[str]) -> None:
        """Check every referenced alias exists in the query."""
        known = set(known_aliases)
        unknown = [a for a in self.leading if a not in known]
        unknown += [a for a in self.scan_methods if a not in known]
        for key in self.join_methods:
            unknown += [a for a in key if a not in known]
        if unknown:
            raise HintError(f"hints reference unknown aliases: {sorted(set(unknown))}")
        if self.forces_join_order and len(set(self.leading)) != len(self.leading):
            raise HintError("forced join order repeats an alias")

    def with_name(self, name: str) -> "HintSet":
        return replace(self, name=name)

    def canonical_key(self) -> tuple:
        """Hashable, order-independent key over the planning-relevant content.

        The display ``name`` is deliberately excluded: two hint sets that
        constrain the planner identically must produce identical plans, so
        they must share one cache entry.
        """
        return (
            self.leading,
            self.join_order_exact,
            tuple(
                (tuple(sorted(aliases)), join_type.value)
                for aliases, join_type in sorted(
                    self.join_methods.items(), key=lambda kv: tuple(sorted(kv[0]))
                )
            ),
            tuple((alias, scan.value) for alias, scan in sorted(self.scan_methods.items())),
            tuple(sorted(self.toggles.active_overrides().items())),
        )

    def fingerprint(self) -> str:
        """Stable content fingerprint (see :meth:`canonical_key`)."""
        payload = repr(self.canonical_key())
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        parts = []
        if self.leading:
            kind = "join order" if self.join_order_exact else "leading prefix"
            parts.append(f"{kind}: {' -> '.join(self.leading)}")
        if self.scan_methods:
            parts.append(
                "scans: " + ", ".join(f"{a}={t.value}" for a, t in sorted(self.scan_methods.items()))
            )
        if self.join_methods:
            parts.append(f"{len(self.join_methods)} forced join methods")
        if self.toggles.active_overrides():
            parts.append(self.toggles.describe())
        return "; ".join(parts) or "empty hint set"


def split_leading_for_outer(
    hints: HintSet,
    core_aliases: Iterable[str],
    outer_order: Sequence[str],
) -> HintSet:
    """Validate a hint's join order against pinned outer-join edges.

    Outer-join edges fix their fold position, so a forced order must keep
    the core (inner-island) aliases first — in any order — followed by the
    outer aliases in exact syntax order; alternatively it may name only the
    core aliases.  A leading *prefix* may only name core aliases.  Returns
    the hint set to use when planning the inner core (leading trimmed to
    the core aliases); raises :class:`HintError` on any order that would
    reorder across an outer-join edge, rather than silently degrading.
    """
    if not hints.leading:
        return hints
    core = set(core_aliases)
    outer = list(outer_order)
    label = hints.name or "<anonymous>"
    if hints.join_order_exact:
        k = len(core)
        if len(hints.leading) == k + len(outer):
            head, tail = hints.leading[:k], list(hints.leading[k:])
            if set(head) == core and tail == outer:
                return replace(hints, leading=head)
        elif len(hints.leading) == k and set(hints.leading) == core:
            return hints
        raise HintError(
            f"hint set {label!r} forces a join order across an outer-join edge: "
            f"outer aliases {outer} must come last, in syntax order"
        )
    illegal = sorted(set(hints.leading) - core)
    if illegal:
        raise HintError(
            f"leading prefix of hint set {label!r} names outer-join aliases "
            f"{illegal}; only inner-join (core) aliases may be reordered"
        )
    return hints


#: The empty hint set (PostgreSQL plans freely).
NO_HINTS = HintSet(name="postgres")


# ---------------------------------------------------------------------------
# Bao's hint-set arms.
#
# Bao's search space is the power set of the six operator toggles (48 valid
# combinations); in practice (and in the Bao paper's experiments) a small
# number of arms carries all of the benefit.  We use the five canonical arms
# plus the empty arm, which is also what keeps the simulated training loop
# cheap enough for repeated experiments.
# ---------------------------------------------------------------------------

BAO_HINT_SETS: tuple[HintSet, ...] = (
    HintSet(name="all_on"),
    HintSet(toggles=OperatorToggles(nestloop=False), name="disable_nestloop"),
    HintSet(toggles=OperatorToggles(mergejoin=False), name="disable_mergejoin"),
    HintSet(toggles=OperatorToggles(hashjoin=False), name="disable_hashjoin"),
    HintSet(
        toggles=OperatorToggles(nestloop=False, mergejoin=False),
        name="hash_only",
    ),
    HintSet(
        toggles=OperatorToggles(indexscan=False, bitmapscan=False),
        name="seqscan_only",
    ),
)

#: Names of the Bao arms in the same order as :data:`BAO_HINT_SETS`.
BAO_ARM_NAMES: tuple[str, ...] = tuple(h.name for h in BAO_HINT_SETS)
