"""Physical plan node types.

Plan nodes are immutable value objects.  Cardinality and cost estimates are
attached by the optimizer when the plan is built (``estimated_rows`` /
``estimated_cost``) so that encoders can read them without re-running
estimation, mirroring how LQOs read estimates out of ``EXPLAIN``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

from repro.errors import PlanError
from repro.sql.binder import FilterPredicate, JoinPredicate


class ScanType(enum.Enum):
    """Physical scan operators of the simulated DBMS."""

    SEQ = "Seq Scan"
    INDEX = "Index Scan"
    BITMAP = "Bitmap Heap Scan"
    TID = "Tid Scan"


class JoinType(enum.Enum):
    """Physical join operators of the simulated DBMS."""

    NESTED_LOOP = "Nested Loop"
    HASH = "Hash Join"
    MERGE = "Merge Join"


class JoinKind(enum.Enum):
    """Logical join kinds: inner, or NULL-extending outer variants.

    Outer kinds pin the operand order of their join node — the right child
    is always the nullable side for LEFT, and FULL additionally NULL-extends
    the left side.  The optimizer never commutes across a non-INNER node.
    """

    INNER = "Inner"
    LEFT = "Left"
    FULL = "Full"


@dataclass(frozen=True)
class PlanNode:
    """Base class for physical plan nodes."""

    #: Estimated output rows (set by the optimizer; -1 when unknown).
    estimated_rows: float = field(default=-1.0, compare=False)
    #: Estimated total cost in PostgreSQL cost units (set by the optimizer).
    estimated_cost: float = field(default=-1.0, compare=False)

    @property
    def aliases(self) -> frozenset[str]:
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def with_estimates(self, rows: float, cost: float) -> "PlanNode":
        """Return a copy of this node with estimates attached."""
        return replace(self, estimated_rows=float(rows), estimated_cost=float(cost))

    # -- traversal ----------------------------------------------------------
    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the plan tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def label(self) -> str:
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        """EXPLAIN-style indented rendering of the plan tree."""
        pad = "  " * indent
        parts = [f"{pad}{self.label()}"]
        if self.estimated_rows >= 0:
            parts[-1] += f"  (rows={self.estimated_rows:.0f} cost={self.estimated_cost:.1f})"
        for child in self.children():
            parts.append(child.pretty(indent + 1))
        return "\n".join(parts)


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """A leaf node scanning one base relation under an alias."""

    alias: str = ""
    table: str = ""
    scan_type: ScanType = ScanType.SEQ
    filters: tuple[FilterPredicate, ...] = ()
    #: Column used by INDEX / BITMAP / TID scans to drive the access path.
    index_column: str | None = None

    def __post_init__(self) -> None:
        if not self.alias or not self.table:
            raise PlanError("scan node requires both an alias and a table")
        if self.scan_type in (ScanType.INDEX, ScanType.BITMAP, ScanType.TID) and not self.index_column:
            raise PlanError(f"{self.scan_type.value} on {self.alias!r} requires an index column")

    @property
    def aliases(self) -> frozenset[str]:
        return frozenset({self.alias})

    def label(self) -> str:
        suffix = f" using {self.index_column}" if self.index_column else ""
        return f"{self.scan_type.value} on {self.table} {self.alias}{suffix}"


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """An inner node joining two sub-plans with one or more equi-join predicates."""

    join_type: JoinType = JoinType.HASH
    left: PlanNode | None = None
    right: PlanNode | None = None
    predicates: tuple[JoinPredicate, ...] = ()
    #: Logical kind: INNER joins reorder freely, LEFT/FULL NULL-extend
    #: unmatched rows and pin their operand order.
    join_kind: JoinKind = JoinKind.INNER

    def __post_init__(self) -> None:
        if self.left is None or self.right is None:
            raise PlanError("join node requires both children")
        if self.join_kind is not JoinKind.INNER and not self.predicates:
            raise PlanError(f"{self.join_kind.value} join requires at least one predicate")
        overlap = self.left.aliases & self.right.aliases
        if overlap:
            raise PlanError(f"join children share aliases {sorted(overlap)}")
        for predicate in self.predicates:
            sides = {predicate.left_alias, predicate.right_alias}
            if not (sides & self.left.aliases and sides & self.right.aliases):
                raise PlanError(
                    f"join predicate {predicate} does not connect the two children"
                )

    @property
    def aliases(self) -> frozenset[str]:
        assert self.left is not None and self.right is not None
        return self.left.aliases | self.right.aliases

    def children(self) -> tuple[PlanNode, ...]:
        assert self.left is not None and self.right is not None
        return (self.left, self.right)

    @property
    def is_cross_product(self) -> bool:
        return not self.predicates

    def label(self) -> str:
        preds = " AND ".join(str(p) for p in self.predicates) or "<cross product>"
        if self.join_kind is JoinKind.INNER:
            operator = self.join_type.value
        elif self.join_type is JoinType.NESTED_LOOP:
            # PostgreSQL style: "Nested Loop Left Join" but "Hash Left Join".
            operator = f"{self.join_type.value} {self.join_kind.value} Join"
        else:
            base = self.join_type.value.removesuffix(" Join")
            operator = f"{base} {self.join_kind.value} Join"
        return f"{operator} on {preds}"


@dataclass(frozen=True)
class SortNode(PlanNode):
    """A sort on top of a sub-plan (ORDER BY or merge-join input)."""

    child: PlanNode | None = None
    sort_keys: tuple[tuple[str, str], ...] = ()  # (alias, column) pairs

    def __post_init__(self) -> None:
        if self.child is None:
            raise PlanError("sort node requires a child")

    @property
    def aliases(self) -> frozenset[str]:
        assert self.child is not None
        return self.child.aliases

    def children(self) -> tuple[PlanNode, ...]:
        assert self.child is not None
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(f"{a}.{c}" for a, c in self.sort_keys)
        return f"Sort ({keys})"


@dataclass(frozen=True)
class AggregateNode(PlanNode):
    """A (grouped) aggregation on top of a sub-plan."""

    child: PlanNode | None = None
    group_by: tuple[tuple[str, str], ...] = ()
    aggregates: tuple[str, ...] = ()  # rendered aggregate expressions

    def __post_init__(self) -> None:
        if self.child is None:
            raise PlanError("aggregate node requires a child")

    @property
    def aliases(self) -> frozenset[str]:
        assert self.child is not None
        return self.child.aliases

    def children(self) -> tuple[PlanNode, ...]:
        assert self.child is not None
        return (self.child,)

    def label(self) -> str:
        mode = "GroupAggregate" if self.group_by else "Aggregate"
        return f"{mode} ({', '.join(self.aggregates) or '*'})"


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------

def plan_scan_nodes(plan: PlanNode) -> list[ScanNode]:
    """All scan leaves of a plan in pre-order."""
    return [node for node in plan.walk() if isinstance(node, ScanNode)]


def plan_join_nodes(plan: PlanNode) -> list[JoinNode]:
    """All join nodes of a plan in pre-order."""
    return [node for node in plan.walk() if isinstance(node, JoinNode)]


def plan_aliases(plan: PlanNode) -> frozenset[str]:
    """The set of base-relation aliases covered by a plan."""
    return plan.aliases


def plan_depth(plan: PlanNode) -> int:
    """Height of the plan tree (a single scan has depth 1)."""
    children = plan.children()
    if not children:
        return 1
    return 1 + max(plan_depth(child) for child in children)


def strip_decorations(plan: PlanNode) -> PlanNode:
    """Remove sort/aggregate wrappers, returning the scan/join core of a plan."""
    while isinstance(plan, (SortNode, AggregateNode)):
        assert plan.child is not None
        plan = plan.child
    return plan


def validate_plan(plan: PlanNode, expected_aliases: Sequence[str]) -> None:
    """Check a plan covers exactly ``expected_aliases`` (raises :class:`PlanError`)."""
    got = plan.aliases
    expected = frozenset(expected_aliases)
    if got != expected:
        missing = expected - got
        extra = got - expected
        raise PlanError(
            f"plan covers wrong aliases (missing={sorted(missing)}, extra={sorted(extra)})"
        )
