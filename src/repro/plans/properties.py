"""Structural properties of physical plans (tree shape, join order).

Used by the Section 8.7 plan-type analysis (bushy vs. left-deep) and by the
LQO implementations that restrict their search space to left-deep trees.
"""

from __future__ import annotations

import enum

from repro.plans.physical import JoinNode, PlanNode, ScanNode, strip_decorations


class PlanShape(enum.Enum):
    """Join-tree shape classification."""

    SINGLE_RELATION = "single"
    LEFT_DEEP = "left-deep"
    RIGHT_DEEP = "right-deep"
    ZIGZAG = "zigzag"
    BUSHY = "bushy"


def _join_core(plan: PlanNode) -> PlanNode:
    return strip_decorations(plan)


def is_left_deep(plan: PlanNode) -> bool:
    """True when every join's right child is a base relation (a left-deep chain)."""
    core = _join_core(plan)
    for node in core.walk():
        if isinstance(node, JoinNode):
            assert node.right is not None
            if not isinstance(strip_decorations(node.right), ScanNode):
                return False
    return True


def is_right_deep(plan: PlanNode) -> bool:
    """True when every join's left child is a base relation."""
    core = _join_core(plan)
    for node in core.walk():
        if isinstance(node, JoinNode):
            assert node.left is not None
            if not isinstance(strip_decorations(node.left), ScanNode):
                return False
    return True


def is_zigzag(plan: PlanNode) -> bool:
    """True when every join has at least one base-relation child (but mixes sides)."""
    core = _join_core(plan)
    for node in core.walk():
        if isinstance(node, JoinNode):
            assert node.left is not None and node.right is not None
            left_scan = isinstance(strip_decorations(node.left), ScanNode)
            right_scan = isinstance(strip_decorations(node.right), ScanNode)
            if not (left_scan or right_scan):
                return False
    return True


def is_bushy(plan: PlanNode) -> bool:
    """True when at least one join combines two composite (non-leaf) inputs."""
    return not is_zigzag(plan)


def classify_plan_shape(plan: PlanNode) -> PlanShape:
    """Classify a plan as single-relation / left-deep / right-deep / zigzag / bushy.

    Following the paper (footnote 8), left-deep and right-deep are reported
    without loss of generality; the zigzag class captures linear trees that
    alternate which side holds the base relation.
    """
    core = _join_core(plan)
    if isinstance(core, ScanNode):
        return PlanShape.SINGLE_RELATION
    if is_left_deep(core):
        return PlanShape.LEFT_DEEP
    if is_right_deep(core):
        return PlanShape.RIGHT_DEEP
    if is_zigzag(core):
        return PlanShape.ZIGZAG
    return PlanShape.BUSHY


def join_order_of(plan: PlanNode) -> tuple[str, ...]:
    """The left-to-right order in which base relations appear in the plan."""
    core = _join_core(plan)
    order: list[str] = []

    def visit(node: PlanNode) -> None:
        node = strip_decorations(node)
        if isinstance(node, ScanNode):
            order.append(node.alias)
            return
        for child in node.children():
            visit(child)

    visit(core)
    return tuple(order)


def count_join_types(plan: PlanNode) -> dict[str, int]:
    """Histogram of physical join operators used in the plan."""
    counts: dict[str, int] = {}
    for node in plan.walk():
        if isinstance(node, JoinNode):
            counts[node.join_type.value] = counts.get(node.join_type.value, 0) + 1
    return counts


def count_join_kinds(plan: PlanNode) -> dict[str, int]:
    """Histogram of logical join kinds (Inner/Left/Full) used in the plan."""
    counts: dict[str, int] = {}
    for node in plan.walk():
        if isinstance(node, JoinNode):
            counts[node.join_kind.value] = counts.get(node.join_kind.value, 0) + 1
    return counts


def count_scan_types(plan: PlanNode) -> dict[str, int]:
    """Histogram of physical scan operators used in the plan."""
    counts: dict[str, int] = {}
    for node in plan.walk():
        if isinstance(node, ScanNode):
            counts[node.scan_type.value] = counts.get(node.scan_type.value, 0) + 1
    return counts
