"""The experiment runtime: parallel fan-out, plan caching, resumable results.

This package turns the strictly serial experiment harness into a runtime that
scales with the hardware:

* :mod:`repro.runtime.fingerprint` — stable content fingerprints for queries,
  configurations and hint sets (the keys of everything cached below).
* :mod:`repro.runtime.plan_cache` — a shared LRU :class:`PlanCache` for
  planner results, wired into :class:`repro.optimizer.planner.Planner`.
* :mod:`repro.runtime.result_store` — a resumable JSON :class:`ResultStore`
  with PostBOUND-style skip-existing semantics, and the
  :class:`ShardedResultStore` that partitions results over N shard
  directories for contention-free multi-host writes (with ``merge`` /
  ``compact`` back to a flat store).
* :mod:`repro.runtime.workqueue` — the :class:`QueueTransport` protocol and
  its file-based implementation, :class:`WorkQueue` (atomic-rename claims,
  lease heartbeats against the filesystem's own clock, dead-worker re-queue),
  coordinating distributed sweeps over a shared filesystem.
* :mod:`repro.runtime.netqueue` — the TCP implementation: a coordinator-side
  :class:`QueueServer` plus the :class:`NetWorkQueue` worker client, with
  results uploaded back in the ack frame — no shared filesystem required —
  and optional HMAC frame authentication (``REPRO_QUEUE_SECRET``) verified
  before anything is unpickled.
* :mod:`repro.runtime.planserver` / :mod:`repro.runtime.planclient` — the
  plan-serving control plane: a :class:`PlanServer` answering SQL-text
  planning requests over the same authenticated frame codec, all clients
  sharing one :class:`PlanCache` with generation-bump invalidation and
  explicit admission control (see ``docs/SERVING.md``).
* :mod:`repro.runtime.progress` — the :class:`SweepProgress` reporter that
  turns live queue stats into periodic machine-readable
  :class:`ProgressSnapshot`\\ s (throughput, ETA, per-worker counts).
* :mod:`repro.runtime.worker` — the ``python -m repro.runtime.worker``
  claim-execute-ack loop run on each participating host, against either
  transport.
* :mod:`repro.runtime.parallel` — the :class:`ParallelExperimentRunner` that
  fans the (method × split × seed) grid over a ``concurrent.futures`` pool —
  or, with ``executor_kind="distributed"``, over the work queue — with
  results bit-identical to serial execution.
"""

from repro.runtime.fingerprint import (
    canonical_query_text,
    config_fingerprint,
    hints_fingerprint,
    plan_request_key,
    query_fingerprint,
    stable_hash,
    stable_seed,
)
from repro.runtime.netqueue import (
    NetWorkQueue,
    QueueAuthError,
    QueueServer,
    resolve_queue_secret,
)
from repro.runtime.plan_cache import CacheStats, PlanCache
from repro.runtime.progress import ProgressSnapshot, SweepProgress
from repro.runtime.result_store import ResultStore, ShardedResultStore, TaskKey
from repro.runtime.workqueue import (
    QueueAddress,
    QueueStats,
    QueueTransport,
    ResultUpload,
    StolenTask,
    TaskClaim,
    WorkerQueueTransport,
    WorkQueue,
    parse_queue_url,
)


def __getattr__(name: str):
    # The parallel runner is exported lazily: importing it eagerly would close
    # an import cycle (planner -> plan_cache -> this package -> parallel ->
    # core.experiment -> lqo.base -> planner).  The plan-serving control plane
    # is lazy for the same reason (planserver -> optimizer.planner).
    if name in ("ExperimentTask", "ParallelExperimentRunner", "SpecTaskPayload"):
        from repro.runtime import parallel

        return getattr(parallel, name)
    if name in ("PlanServer", "PlanServerStats"):
        from repro.runtime import planserver

        return getattr(planserver, name)
    if name in ("PlanClient", "ServedPlan"):
        from repro.runtime import planclient

        return getattr(planclient, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CacheStats",
    "ExperimentTask",
    "NetWorkQueue",
    "ParallelExperimentRunner",
    "SpecTaskPayload",
    "PlanCache",
    "PlanClient",
    "PlanServer",
    "PlanServerStats",
    "ProgressSnapshot",
    "ServedPlan",
    "QueueAddress",
    "QueueAuthError",
    "QueueServer",
    "QueueStats",
    "QueueTransport",
    "ResultStore",
    "ResultUpload",
    "ShardedResultStore",
    "StolenTask",
    "SweepProgress",
    "TaskClaim",
    "TaskKey",
    "WorkQueue",
    "WorkerQueueTransport",
    "parse_queue_url",
    "resolve_queue_secret",
    "canonical_query_text",
    "config_fingerprint",
    "hints_fingerprint",
    "plan_request_key",
    "query_fingerprint",
    "stable_hash",
    "stable_seed",
]
