"""Canonical fingerprints for queries, configurations and hint sets.

Every cacheable artefact of the experiment runtime — planner results in the
:class:`~repro.runtime.plan_cache.PlanCache`, method runs in the
:class:`~repro.runtime.result_store.ResultStore` — is keyed by *content*, not
by object identity: the same SQL bound twice, or an equal
:class:`~repro.config.PostgresConfig` built in another process, must map to the
same key.  All fingerprints are SHA-256 based, so they are stable across
interpreter restarts (``hash()`` is salted per process and must not be used).
"""

from __future__ import annotations

import hashlib

from repro.config import PostgresConfig
from repro.plans.hints import HintSet
from repro.sql.binder import BoundQuery

#: Attribute used to memoize a query's fingerprint on the bound object.
#: The ``_repro_`` prefix is load-bearing: ``BoundQuery.__getstate__`` strips
#: every ``_repro_*`` attribute on pickling, so a memo computed in one
#: process is never trusted across process/host boundaries (task payloads,
#: serving frames) — the receiver recomputes from content on first use.
_QUERY_FP_ATTR = "_repro_fingerprint"


def stable_hash(payload: str, length: int = 16) -> str:
    """Hex digest of ``payload`` truncated to ``length`` characters."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:length]


def stable_seed(*parts: object, bits: int = 31) -> int:
    """A deterministic non-negative integer seed derived from ``parts``.

    Used for per-task seeding of the parallel runner: the seed depends only on
    the task's identity (method, split, repeat), never on scheduling order.
    """
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (2**bits)


def canonical_query_text(query: BoundQuery) -> str:
    """Order-independent canonical rendering of a bound query.

    Relations, join predicates and filters are sorted so that semantically
    identical queries written in different clause orders fingerprint equally.
    The decorating statement (GROUP BY / ORDER BY / select list) participates
    because it changes the produced plan.
    """
    relations = ",".join(sorted(f"{r.alias}={r.table}" for r in query.relations))
    joins = ",".join(
        sorted(
            "=".join(
                sorted((f"{j.left_alias}.{j.left_column}", f"{j.right_alias}.{j.right_column}"))
            )
            for j in query.inner_joins
        )
    )
    filters = ",".join(sorted(str(f) for f in query.filters))
    statement = str(query.statement) if query.statement is not None else ""
    text = f"schema:{query.schema.name}|from:{relations}|where:{joins}|filters:{filters}|stmt:{statement}"
    if query.outer_edges:
        # Outer edges are order-sensitive (the fold order is observable in
        # the output), so they render in syntax order — only the predicate
        # list inside one edge is sorted.
        edges = ";".join(
            f"{edge.join_type}:{edge.nullable_alias}:"
            + ",".join(sorted(str(p) for p in edge.predicates))
            for edge in query.outer_edges
        )
        text += f"|outer:{edges}"
    return text


def query_fingerprint(query: BoundQuery) -> str:
    """Content fingerprint of a bound query (memoized on the instance)."""
    cached = getattr(query, _QUERY_FP_ATTR, None)
    if cached is not None:
        return cached
    fingerprint = stable_hash(canonical_query_text(query))
    setattr(query, _QUERY_FP_ATTR, fingerprint)
    return fingerprint


def config_fingerprint(config: PostgresConfig) -> str:
    """Content fingerprint of a DBMS configuration (every knob participates)."""
    return config.fingerprint()


def hints_fingerprint(hints: HintSet) -> str:
    """Content fingerprint of a hint set (display name excluded)."""
    return hints.fingerprint()


def plan_request_key(
    query: BoundQuery, config: PostgresConfig, hints: HintSet
) -> tuple[str, str, str]:
    """The full cache key of one planning request."""
    return (query_fingerprint(query), config_fingerprint(config), hints_fingerprint(hints))
