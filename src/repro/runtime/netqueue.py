"""TCP transport of the distributed work queue: no shared filesystem needed.

The file-based :class:`~repro.runtime.workqueue.WorkQueue` assumes every
worker mounts the coordinator's filesystem.  This module drops that
assumption: the coordinator runs a :class:`QueueServer` — the in-memory queue
state behind a threaded TCP server — and workers talk to it through a
:class:`NetWorkQueue` client.  Finished results travel *back* over the socket
as a :class:`~repro.runtime.workqueue.ResultUpload` attached to the ack
frame, and the server persists them into the coordinator's local (possibly
sharded) result store.  Workers therefore need no path in common with the
coordinator: a sweep can span hosts that share nothing but a network route.

Wire protocol — one request frame and one response frame per connection::

    unsigned: MAGIC b"RQ" | length (4 bytes, big endian) | pickle(payload)
    signed:   MAGIC b"RS" | length (4 bytes, big endian)
              | HMAC-SHA256(secret, header + payload) (32 bytes) | pickle(payload)
    error:    MAGIC b"RE" | length (4 bytes, big endian) | utf-8 message

Leases are tracked server-side with ``time.monotonic()``: claim, renew and
expiry all read one clock on one host, so the cross-host clock-skew hazards
of mtime-based leases cannot arise here by construction.

Frames are pickled because task payloads are arbitrary Python objects
(:class:`~repro.runtime.parallel.SpecTaskPayload`), exactly as the file queue
pickles its task files.  ``pickle.loads`` on bytes from the network is remote
code execution for whoever can write those bytes, so on any interface that is
not strictly private, set a **shared queue secret** (``REPRO_QUEUE_SECRET``
or ``RuntimeConfig.queue_secret``): both sides then sign every frame with
HMAC-SHA256 and *verify the signature before unpickling* — an unsigned,
tampered or wrongly-keyed frame is rejected while still opaque bytes, and the
peer gets a plain-text ``RE`` error frame (never a pickled response).  The
HMAC authenticates and integrity-protects frames; it does **not** encrypt
them (payloads are readable on the wire) and does not prevent replay — for
confidentiality run the port through a TLS tunnel or private network.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pickle
import socket
import socketserver
import struct
import threading
import time
from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.runtime.result_store import ResultStore
from repro.runtime.workqueue import QueueStats, ResultUpload, StolenTask, TaskClaim, plan_steal

#: Frame header: magic + payload length.
MAGIC = b"RQ"
#: Magic of an HMAC-signed frame (header + 32-byte digest + payload).
MAGIC_SIGNED = b"RS"
#: Magic of a plain-text error frame (sent instead of a pickled response when
#: a request fails authentication — the peer is untrusted by definition).
MAGIC_ERROR = b"RE"
_HEADER = struct.Struct(">2sI")

#: Size of the HMAC-SHA256 digest carried by signed frames.
DIGEST_SIZE = hashlib.sha256().digest_size

#: Hard bound on one frame; a SpecTaskPayload or result dict is kilobytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Hard bound on an error frame's message.
MAX_ERROR_BYTES = 4096

#: How much of a rejected *unsigned* frame's payload is drained before the
#: connection is dropped.  Draining lets the error frame reach a
#: legitimate-but-misconfigured worker — closing with unread bytes in the
#: receive queue makes the TCP stack RST and discard our just-written reply —
#: while the bound keeps an unsigned frame from feeding us 64 MB pre-auth.
#: (A *signed* frame must be read in full before its MAC can be checked; the
#: per-frame deadline below bounds how long such a read can be strung out.)
MAX_AUTH_DRAIN_BYTES = 1024 * 1024

#: Server-side deadline for receiving one complete frame: a peer that
#: trickles bytes (or stalls mid-frame) releases its handler thread — and
#: whatever buffer it accumulated — after this long, instead of pinning both
#: for the life of the sweep.  A deadline, not a per-recv timeout: trickling
#: one byte every few seconds does not reset it.
SERVER_TIMEOUT_S = 30.0

#: Default client-side socket timeout (connect + one request/response pair).
CLIENT_TIMEOUT_S = 30.0

#: Environment variable carrying the shared frame-signing secret.
QUEUE_SECRET_ENV = "REPRO_QUEUE_SECRET"

#: Default transient-connection retry budget of :class:`NetWorkQueue` — a
#: refused/reset connection is retried with exponential backoff this many
#: times before it is treated as a dead coordinator.
CLIENT_RETRIES = 3
CLIENT_BACKOFF_S = 0.2


class FrameAuthError(ConnectionError):
    """A frame failed authentication (wrong/missing signature or secret).

    Raised *before* the payload is unpickled: the frame is still opaque bytes
    when rejected.  Subclasses :class:`ConnectionError` so transport plumbing
    that drops broken connections drops unauthenticated peers the same way.
    """


class QueueAuthError(ExperimentError):
    """The peer rejected our frames as unauthenticated/mis-keyed.

    Deliberately *not* an :class:`OSError`: a worker whose secret does not
    match the coordinator must fail loudly, not read the rejection as a
    finished sweep and exit 0.
    """


def resolve_queue_secret(value: str | bytes | None = None) -> bytes | None:
    """Normalize a queue secret: explicit value, else ``REPRO_QUEUE_SECRET``.

    Returns ``None`` (authentication disabled) for an unset/empty secret; an
    explicit empty string forces authentication off even when the environment
    variable is set.
    """
    if value is None:
        value = os.environ.get(QUEUE_SECRET_ENV)
    if not value:
        return None
    return value.encode("utf-8") if isinstance(value, str) else bytes(value)


def _frame_digest(secret: bytes, header: bytes, blob: bytes) -> bytes:
    return hmac.new(secret, header + blob, hashlib.sha256).digest()


def _recv_exact(sock: socket.socket, n_bytes: int, deadline: float | None = None) -> bytes:
    """Read exactly ``n_bytes``; with a ``deadline`` (monotonic), the whole
    read must finish by then — each recv's timeout is the remaining budget,
    so a trickling peer cannot reset the clock chunk by chunk."""
    chunks = []
    remaining = n_bytes
    while remaining:
        if deadline is not None:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise ConnectionError("peer exceeded the frame deadline")
            sock.settimeout(budget)
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: object, secret: bytes | None = None) -> None:
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME_BYTES:
        raise ExperimentError(f"queue frame of {len(blob)} bytes exceeds {MAX_FRAME_BYTES}")
    if secret is None:
        sock.sendall(_HEADER.pack(MAGIC, len(blob)) + blob)
    else:
        header = _HEADER.pack(MAGIC_SIGNED, len(blob))
        sock.sendall(header + _frame_digest(secret, header, blob) + blob)


def send_error_frame(sock: socket.socket, message: str) -> None:
    """Send a plain-text (never pickled) rejection to an untrusted peer."""
    blob = message.encode("utf-8")[:MAX_ERROR_BYTES]
    sock.sendall(_HEADER.pack(MAGIC_ERROR, len(blob)) + blob)


def recv_frame(
    sock: socket.socket, secret: bytes | None = None, deadline: float | None = None
) -> object:
    """Receive one frame; with a ``secret``, authenticate it *before* unpickling.

    Raises :class:`FrameAuthError` for unsigned/mis-signed frames while the
    payload is still opaque bytes — an untrusted peer can never reach
    ``pickle.loads`` on a secret-bearing endpoint — and :class:`QueueAuthError`
    when the *peer* sent back an error frame rejecting us.  ``deadline``
    (monotonic) bounds the whole receive, recv by recv.
    """
    header = _recv_exact(sock, _HEADER.size, deadline)
    magic, length = _HEADER.unpack(header)
    if magic == MAGIC_ERROR:
        if length > MAX_ERROR_BYTES:
            raise ConnectionError(f"oversized queue error frame ({length} bytes)")
        raise QueueAuthError(_recv_exact(sock, length, deadline).decode("utf-8", errors="replace"))
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"oversized queue frame ({length} bytes)")
    if magic == MAGIC_SIGNED:
        digest = _recv_exact(sock, DIGEST_SIZE, deadline)
        blob = _recv_exact(sock, length, deadline)
        if secret is None:
            raise FrameAuthError(
                "peer sent a signed queue frame but no queue secret is configured here; "
                f"set {QUEUE_SECRET_ENV} to the shared secret"
            )
        if not hmac.compare_digest(digest, _frame_digest(secret, header, blob)):
            raise FrameAuthError("queue frame signature mismatch (wrong or stale secret)")
        return pickle.loads(blob)
    if magic == MAGIC:
        if secret is not None:
            # Authenticate-then-parse: the unsigned payload is drained (so the
            # error reply is not lost to a TCP reset over unread bytes, see
            # MAX_AUTH_DRAIN_BYTES) but never unpickled.
            _recv_exact(sock, min(length, MAX_AUTH_DRAIN_BYTES), deadline)
            raise FrameAuthError(
                f"unauthenticated queue frame rejected: this endpoint requires "
                f"HMAC-signed frames (set {QUEUE_SECRET_ENV} to the shared secret)"
            )
        return pickle.loads(_recv_exact(sock, length, deadline))
    raise ConnectionError(f"bad queue frame magic {magic!r}")


@dataclass
class _Lease:
    """One claimed task: who holds it and when the lease runs out (monotonic)."""

    worker_id: str
    deadline: float
    payload: object


class _FrameHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised through the client
        secret = self.server.queue._secret
        # One deadline for the whole request frame: a peer that trickles
        # bytes cannot pin this thread (or its growing buffer) indefinitely.
        deadline = time.monotonic() + SERVER_TIMEOUT_S
        try:
            request = recv_frame(self.request, secret=secret, deadline=deadline)
        except FrameAuthError as exc:
            # The peer failed authentication: answer with a plain-text error
            # frame (telling a legitimate-but-misconfigured worker why it is
            # being turned away) and never a pickled response.
            try:
                send_error_frame(self.request, f"queue server rejected the frame: {exc}")
            except OSError:
                pass
            return
        except (QueueAuthError, ConnectionError, OSError, pickle.UnpicklingError):
            return
        try:
            response = self.server.queue._dispatch(request)
        except Exception as exc:  # surface server-side errors to the caller
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        try:
            send_frame(self.request, response, secret=secret)
        except OSError:
            pass


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class QueueServer:
    """Coordinator-side work queue served over TCP.

    Implements the full :class:`~repro.runtime.workqueue.QueueTransport`
    surface: the coordinator calls the methods directly (in process), workers
    reach the same state through :class:`NetWorkQueue`.  All state lives in
    memory under one lock; results uploaded with acks are persisted into
    ``result_store`` before the task is marked done, so a task is only ever
    "done" once its result is safely on the coordinator's disk.
    """

    #: Net workers share no filesystem: acks must carry the result.
    wants_results = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout_s: float = 60.0,
        result_store: ResultStore | None = None,
        secret: str | bytes | None = None,
        hungry_ttl_s: float = 30.0,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ExperimentError("QueueServer.lease_timeout_s must be positive")
        self.lease_timeout_s = float(lease_timeout_s)
        self.hungry_ttl_s = float(hungry_ttl_s)
        self.result_store = result_store
        #: Frame-signing secret (explicit, else REPRO_QUEUE_SECRET, else off).
        self._secret = resolve_queue_secret(secret)
        self._lock = threading.Lock()
        #: Shared root pool (unsharded enqueues + re-queued expired leases).
        self._pending: dict[str, object] = {}
        #: Per-shard pending partitions (tasks with shard affinity).
        self._shard_pending: dict[int, dict[str, object]] = {}
        #: Last empty-handed preferred-shard claim, per shard (monotonic).
        self._hungry: dict[int, float] = {}
        self._claims: dict[str, _Lease] = {}
        self._done: set[str] = set()
        self._failed: dict[str, str] = {}
        self._worker_done: dict[str, int] = {}
        self._stop = False
        self._server = _ThreadedTCPServer((host, port), _FrameHandler)
        self._server.queue = self
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-queue-server", daemon=True
        )
        self._thread.start()
        self._closed = False

    @property
    def url(self) -> str:
        """The ``tcp://host:port`` address workers connect to."""
        host = "127.0.0.1" if self.host in ("0.0.0.0", "::") else self.host
        return f"tcp://{host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=10)

    # ------------------------------------------------------------------ coordinator
    def enqueue(self, task_id: str, payload: object, shard: int | None = None) -> None:
        with self._lock:
            if shard is None:
                self._pending[task_id] = payload
            else:
                if shard < 0:
                    raise ExperimentError(f"queue shard must be >= 0, got {shard}")
                self._shard_pending.setdefault(shard, {})[task_id] = payload

    def requeue_expired(self) -> list[str]:
        """Re-queue every claim whose lease deadline (monotonic) has passed.

        Expired claims return to the shared *root* pool rather than their
        original shard: the shard's own worker may be the one that died, and
        the root pool is claimable by every worker.
        """
        now = time.monotonic()
        with self._lock:
            expired = sorted(tid for tid, lease in self._claims.items() if lease.deadline < now)
            for task_id in expired:
                self._pending[task_id] = self._claims.pop(task_id).payload
        return expired

    def rebalance(self) -> list[StolenTask]:
        """Steal pending work for starving shards (mirrors ``WorkQueue.rebalance``).

        Moves tasks between in-memory pending partitions under the lock, so a
        task is claimable from exactly one partition at any instant; the
        stolen-to shard's hungry mark is consumed by the move.
        """
        now = time.monotonic()
        moved: list[StolenTask] = []
        with self._lock:
            for hungry_shard in sorted(self._hungry):
                if now - self._hungry[hungry_shard] > self.hungry_ttl_s:
                    del self._hungry[hungry_shard]  # stale signal: nobody is waiting
                    continue
                if self._shard_pending.get(hungry_shard):
                    del self._hungry[hungry_shard]  # shard has work again
                    continue
                plan = plan_steal({
                    shard: sorted(bucket)
                    for shard, bucket in self._shard_pending.items()
                    if shard != hungry_shard
                })
                if plan is None:
                    continue  # nothing to steal; keep the mark for the next sweep
                source, names = plan
                target = self._shard_pending.setdefault(hungry_shard, {})
                for name in names:
                    target[name] = self._shard_pending[source].pop(name)
                    moved.append(StolenTask(name, source, hungry_shard))
                del self._hungry[hungry_shard]
        return moved

    def discard_failure(self, task_id: str) -> bool:
        with self._lock:
            return self._failed.pop(task_id, None) is not None

    def reset(self) -> int:
        with self._lock:
            removed = (
                len(self._pending)
                + sum(len(bucket) for bucket in self._shard_pending.values())
                + len(self._claims)
                + len(self._done)
                + len(self._failed)
            )
            self._pending.clear()
            self._shard_pending.clear()
            self._hungry.clear()
            self._claims.clear()
            self._done.clear()
            self._failed.clear()
            self._worker_done.clear()
            self._stop = False
        return removed

    def write_stop(self) -> None:
        with self._lock:
            self._stop = True

    def clear_stop(self) -> None:
        with self._lock:
            self._stop = False

    def stop_requested(self) -> bool:
        with self._lock:
            return self._stop

    # ------------------------------------------------------------------ worker ops
    def claim(self, worker_id: str, shard: int | None = None) -> TaskClaim | None:
        """Pop one pending task (lowest id first, file-queue parity).

        With a preferred ``shard``: that shard's partition first, then the
        shared root pool — never other shards; a fully empty scan records the
        shard as hungry so the coordinator's :meth:`rebalance` steals work
        over.  Without one, the globally lowest task id across every partition
        wins.
        """
        if shard is not None and shard < 0:
            # Mirror the file transport: a misconfigured worker must fail
            # fast, not register a phantom partition that rebalance would
            # steal live tasks into (stranding them for every pinned worker).
            raise ExperimentError(f"queue shard must be >= 0, got {shard}")
        with self._lock:
            task_id, bucket = self._pick_locked(shard)
            if task_id is None:
                if shard is not None:
                    self._hungry[shard] = time.monotonic()
                return None
            payload = bucket.pop(task_id)
            self._claims[task_id] = _Lease(
                worker_id=worker_id,
                deadline=time.monotonic() + self.lease_timeout_s,
                payload=payload,
            )
        return TaskClaim(task_id=task_id, payload=payload)

    def _pick_locked(self, shard: int | None) -> tuple[str | None, dict | None]:
        """The (task id, owning bucket) a claim should take; caller holds the lock."""
        if shard is not None:
            bucket = self._shard_pending.get(shard)
            if bucket:
                return min(bucket), bucket
            if self._pending:
                return min(self._pending), self._pending
            return None, None
        buckets = [self._pending, *self._shard_pending.values()]
        candidates = [(min(bucket), bucket) for bucket in buckets if bucket]
        if not candidates:
            return None, None
        return min(candidates, key=lambda pair: pair[0])

    def renew(self, claim: TaskClaim) -> None:
        self._renew_id(claim.task_id)

    def _renew_id(self, task_id: str) -> None:
        with self._lock:
            lease = self._claims.get(task_id)
            if lease is not None:
                lease.deadline = time.monotonic() + self.lease_timeout_s

    def ack(self, claim: TaskClaim, worker_id: str, result: ResultUpload | None = None) -> None:
        self._ack_id(claim.task_id, worker_id, result)

    def _ack_id(self, task_id: str, worker_id: str, result: ResultUpload | None) -> None:
        if result is not None and self.result_store is not None:
            # Persist before marking done: a "done" task whose result was lost
            # would make the coordinator's final store load fail.  Store writes
            # are atomic, and double uploads after a lease expiry rewrite the
            # same bytes, so no lock is needed around the filesystem write.
            self.result_store.save_raw(result.key, result.result, result.fingerprint)
        with self._lock:
            self._claims.pop(task_id, None)
            # A zombie worker may ack a task that was already re-queued (and
            # possibly re-claimed): the result is identical either way, so the
            # ack wins and the duplicate pending/claimed entry is dropped.
            self._pending.pop(task_id, None)
            for bucket in self._shard_pending.values():
                bucket.pop(task_id, None)
            if task_id not in self._done:
                self._done.add(task_id)
                self._worker_done[worker_id] = self._worker_done.get(worker_id, 0) + 1

    def fail(self, claim: TaskClaim, worker_id: str, error: str) -> None:
        self._fail_id(claim.task_id, worker_id, error)

    def _fail_id(self, task_id: str, worker_id: str, error: str) -> None:
        with self._lock:
            self._claims.pop(task_id, None)
            self._failed[task_id] = error

    # ------------------------------------------------------------------ inspection
    def pending_ids(self) -> set[str]:
        with self._lock:
            ids = set(self._pending)
            for bucket in self._shard_pending.values():
                ids.update(bucket)
            return ids

    def claimed_ids(self) -> set[str]:
        with self._lock:
            return set(self._claims)

    def done_ids(self) -> set[str]:
        with self._lock:
            return set(self._done)

    def failed_tasks(self) -> dict[str, str]:
        with self._lock:
            return dict(self._failed)

    def worker_done_counts(self) -> dict[str, int]:
        """Completed-task counts per worker id (from the acks received)."""
        with self._lock:
            return dict(self._worker_done)

    def has_live_claims(self) -> bool:
        now = time.monotonic()
        with self._lock:
            return any(lease.deadline >= now for lease in self._claims.values())

    def stats(self) -> QueueStats:
        with self._lock:
            shard_pending = tuple(
                (shard, len(bucket))
                for shard, bucket in sorted(self._shard_pending.items())
                if bucket
            )
            return QueueStats(
                pending=len(self._pending) + sum(count for _, count in shard_pending),
                claimed=len(self._claims),
                done=len(self._done),
                failed=len(self._failed),
                shard_pending=shard_pending,
            )

    def describe(self) -> str:
        return f"QueueServer({self.url}, {self.stats().describe()})"

    # ------------------------------------------------------------------ wire
    def _dispatch(self, request: object) -> dict:
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "error": "malformed queue request"}
        op = request["op"]
        if op == "claim":
            shard = request.get("shard")
            claim = self.claim(
                str(request.get("worker_id", "unknown")),
                shard=int(shard) if shard is not None else None,
            )
            if claim is None:
                return {"ok": True, "task_id": None, "payload": None}
            return {"ok": True, "task_id": claim.task_id, "payload": claim.payload}
        if op == "renew":
            self._renew_id(str(request.get("task_id", "")))
            return {"ok": True}
        if op == "ack":
            result = request.get("result")
            if result is not None and not isinstance(result, ResultUpload):
                return {"ok": False, "error": "ack result must be a ResultUpload"}
            self._ack_id(
                str(request.get("task_id", "")), str(request.get("worker_id", "unknown")), result
            )
            return {"ok": True}
        if op == "fail":
            self._fail_id(
                str(request.get("task_id", "")),
                str(request.get("worker_id", "unknown")),
                str(request.get("error", "unknown error")),
            )
            return {"ok": True}
        if op == "poll":
            with self._lock:
                return {"ok": True, "stop": self._stop, "pending": len(self._pending)}
        if op == "stats":
            stats = self.stats()
            return {
                "ok": True,
                "pending": stats.pending,
                "claimed": stats.claimed,
                "done": stats.done,
                "failed": stats.failed,
                "shard_pending": list(stats.shard_pending),
            }
        if op == "worker_counts":
            return {"ok": True, "workers": self.worker_done_counts()}
        return {"ok": False, "error": f"unknown queue op {op!r}"}


class NetWorkQueue:
    """Worker-side client of a :class:`QueueServer` (one frame per connection).

    Implements the :class:`~repro.runtime.workqueue.WorkerQueueTransport`
    surface.  Transient socket errors (a refused connection during a
    coordinator restart, a dropped SYN) are retried ``retries`` times with
    exponential backoff; only after the budget is exhausted is the
    coordinator treated as gone — then ``claim`` returns ``None`` and
    ``stop_requested`` returns ``True``, so orphaned workers drain out
    instead of erroring or polling forever (any half-finished task's lease
    has died with the server anyway).  An *authentication* rejection is
    never retried and never reads as stop: it raises :class:`QueueAuthError`
    so a mis-keyed worker fails loudly.
    """

    wants_results = True

    def __init__(
        self,
        url: str,
        timeout_s: float = CLIENT_TIMEOUT_S,
        secret: str | bytes | None = None,
        retries: int = CLIENT_RETRIES,
        backoff_s: float = CLIENT_BACKOFF_S,
    ) -> None:
        from repro.runtime.workqueue import parse_queue_url

        address = parse_queue_url(url)
        if address.scheme != "tcp":
            raise ExperimentError(f"NetWorkQueue needs a tcp:// url, got {url!r}")
        if retries < 0:
            raise ExperimentError("NetWorkQueue.retries must be >= 0")
        self.host, self.port = address.host, address.port
        self.timeout_s = timeout_s
        self.secret = resolve_queue_secret(secret)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)

    def _request_once(self, request: dict) -> dict:
        with socket.create_connection((self.host, self.port), timeout=self.timeout_s) as sock:
            send_frame(sock, request, secret=self.secret)
            response = recv_frame(sock, secret=self.secret)
        if not isinstance(response, dict) or not response.get("ok"):
            error = response.get("error", "malformed response") if isinstance(response, dict) else response
            raise ExperimentError(f"queue server at {self.host}:{self.port} rejected {request.get('op')!r}: {error}")
        return response

    def _request(self, request: dict) -> dict:
        """One request/response pair, retrying transient socket failures.

        Retries are bounded and only cover ``OSError`` (connection refused or
        reset, timeouts): a single refused connection mid-sweep — e.g. the
        coordinator's listen socket bouncing during a restart — used to read
        as a stop signal and drain every worker.  :class:`QueueAuthError` and
        server-side rejections propagate immediately.
        """
        delay = self.backoff_s
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(request)
            except QueueAuthError:
                raise  # misconfigured secret: retrying cannot help
            except OSError:
                if attempt == self.retries:
                    raise
                time.sleep(delay)
                delay *= 2

    def claim(self, worker_id: str, shard: int | None = None) -> TaskClaim | None:
        request = {"op": "claim", "worker_id": worker_id}
        if shard is not None:
            request["shard"] = shard
        try:
            response = self._request(request)
        except QueueAuthError:
            raise
        except OSError:
            return None  # server gone; stop_requested() tells the loop to exit
        if response["task_id"] is None:
            return None
        return TaskClaim(task_id=response["task_id"], payload=response["payload"])

    def renew(self, claim: TaskClaim) -> None:
        try:
            self._request({"op": "renew", "task_id": claim.task_id})
        except QueueAuthError:
            raise  # rotated/mis-keyed secret: fail loudly, like claim and ack
        except (OSError, ExperimentError):
            pass  # a missed heartbeat at worst expires the lease

    def ack(self, claim: TaskClaim, worker_id: str, result: ResultUpload | None = None) -> None:
        try:
            self._request(
                {"op": "ack", "task_id": claim.task_id, "worker_id": worker_id, "result": result}
            )
        except OSError:
            pass  # server gone: the lease expires and someone else re-runs it

    def fail(self, claim: TaskClaim, worker_id: str, error: str) -> None:
        try:
            self._request(
                {"op": "fail", "task_id": claim.task_id, "worker_id": worker_id, "error": error}
            )
        except OSError:
            pass

    def stop_requested(self) -> bool:
        try:
            return bool(self._request({"op": "poll"})["stop"])
        except OSError:
            return True  # unreachable coordinator == sweep over for this worker

    def stats(self) -> QueueStats:
        response = self._request({"op": "stats"})
        return QueueStats(
            pending=response["pending"],
            claimed=response["claimed"],
            done=response["done"],
            failed=response["failed"],
            shard_pending=tuple(
                (int(shard), int(count)) for shard, count in response.get("shard_pending", [])
            ),
        )

    def worker_done_counts(self) -> dict[str, int]:
        response = self._request({"op": "worker_counts"})
        return {str(worker): int(count) for worker, count in response.get("workers", {}).items()}

    def describe(self) -> str:
        return f"NetWorkQueue(tcp://{self.host}:{self.port})"
