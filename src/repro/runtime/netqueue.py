"""TCP transport of the distributed work queue: no shared filesystem needed.

The file-based :class:`~repro.runtime.workqueue.WorkQueue` assumes every
worker mounts the coordinator's filesystem.  This module drops that
assumption: the coordinator runs a :class:`QueueServer` — the in-memory queue
state behind a threaded TCP server — and workers talk to it through a
:class:`NetWorkQueue` client.  Finished results travel *back* over the socket
as a :class:`~repro.runtime.workqueue.ResultUpload` attached to the ack
frame, and the server persists them into the coordinator's local (possibly
sharded) result store.  Workers therefore need no path in common with the
coordinator: a sweep can span hosts that share nothing but a network route.

Wire protocol — one request frame and one response frame per connection::

    MAGIC (2 bytes, b"RQ") | length (4 bytes, big endian) | pickle(payload)

Leases are tracked server-side with ``time.monotonic()``: claim, renew and
expiry all read one clock on one host, so the cross-host clock-skew hazards
of mtime-based leases cannot arise here by construction.

Frames are pickled because task payloads are arbitrary Python objects
(:class:`~repro.runtime.parallel.SpecTaskPayload`), exactly as the file queue
pickles its task files.  Like any pickle-over-socket protocol this trusts the
network — run sweeps on a private interface, as you would for ``Dask`` or a
``multiprocessing`` manager.
"""

from __future__ import annotations

import pickle
import socket
import socketserver
import struct
import threading
import time
from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.runtime.result_store import ResultStore
from repro.runtime.workqueue import QueueStats, ResultUpload, TaskClaim

#: Frame header: magic + payload length.
MAGIC = b"RQ"
_HEADER = struct.Struct(">2sI")

#: Hard bound on one frame; a SpecTaskPayload or result dict is kilobytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Default client-side socket timeout (connect + one request/response pair).
CLIENT_TIMEOUT_S = 30.0


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: object) -> None:
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME_BYTES:
        raise ExperimentError(f"queue frame of {len(blob)} bytes exceeds {MAX_FRAME_BYTES}")
    sock.sendall(_HEADER.pack(MAGIC, len(blob)) + blob)


def recv_frame(sock: socket.socket) -> object:
    magic, length = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if magic != MAGIC:
        raise ConnectionError(f"bad queue frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"oversized queue frame ({length} bytes)")
    return pickle.loads(_recv_exact(sock, length))


@dataclass
class _Lease:
    """One claimed task: who holds it and when the lease runs out (monotonic)."""

    worker_id: str
    deadline: float
    payload: object


class _FrameHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised through the client
        try:
            request = recv_frame(self.request)
        except (ConnectionError, OSError, pickle.UnpicklingError):
            return
        try:
            response = self.server.queue._dispatch(request)
        except Exception as exc:  # surface server-side errors to the caller
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        try:
            send_frame(self.request, response)
        except OSError:
            pass


class _ThreadedTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class QueueServer:
    """Coordinator-side work queue served over TCP.

    Implements the full :class:`~repro.runtime.workqueue.QueueTransport`
    surface: the coordinator calls the methods directly (in process), workers
    reach the same state through :class:`NetWorkQueue`.  All state lives in
    memory under one lock; results uploaded with acks are persisted into
    ``result_store`` before the task is marked done, so a task is only ever
    "done" once its result is safely on the coordinator's disk.
    """

    #: Net workers share no filesystem: acks must carry the result.
    wants_results = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout_s: float = 60.0,
        result_store: ResultStore | None = None,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ExperimentError("QueueServer.lease_timeout_s must be positive")
        self.lease_timeout_s = float(lease_timeout_s)
        self.result_store = result_store
        self._lock = threading.Lock()
        self._pending: dict[str, object] = {}
        self._claims: dict[str, _Lease] = {}
        self._done: set[str] = set()
        self._failed: dict[str, str] = {}
        self._stop = False
        self._server = _ThreadedTCPServer((host, port), _FrameHandler)
        self._server.queue = self
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-queue-server", daemon=True
        )
        self._thread.start()
        self._closed = False

    @property
    def url(self) -> str:
        """The ``tcp://host:port`` address workers connect to."""
        host = "127.0.0.1" if self.host in ("0.0.0.0", "::") else self.host
        return f"tcp://{host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=10)

    # ------------------------------------------------------------------ coordinator
    def enqueue(self, task_id: str, payload: object) -> None:
        with self._lock:
            self._pending[task_id] = payload

    def requeue_expired(self) -> list[str]:
        """Re-queue every claim whose lease deadline (monotonic) has passed."""
        now = time.monotonic()
        with self._lock:
            expired = sorted(tid for tid, lease in self._claims.items() if lease.deadline < now)
            for task_id in expired:
                self._pending[task_id] = self._claims.pop(task_id).payload
        return expired

    def discard_failure(self, task_id: str) -> bool:
        with self._lock:
            return self._failed.pop(task_id, None) is not None

    def reset(self) -> int:
        with self._lock:
            removed = (
                len(self._pending) + len(self._claims) + len(self._done) + len(self._failed)
            )
            self._pending.clear()
            self._claims.clear()
            self._done.clear()
            self._failed.clear()
            self._stop = False
        return removed

    def write_stop(self) -> None:
        self._stop = True

    def clear_stop(self) -> None:
        self._stop = False

    def stop_requested(self) -> bool:
        return self._stop

    # ------------------------------------------------------------------ worker ops
    def claim(self, worker_id: str) -> TaskClaim | None:
        with self._lock:
            if not self._pending:
                return None
            task_id = min(self._pending)  # file-queue parity: lowest id first
            payload = self._pending.pop(task_id)
            self._claims[task_id] = _Lease(
                worker_id=worker_id,
                deadline=time.monotonic() + self.lease_timeout_s,
                payload=payload,
            )
        return TaskClaim(task_id=task_id, payload=payload)

    def renew(self, claim: TaskClaim) -> None:
        self._renew_id(claim.task_id)

    def _renew_id(self, task_id: str) -> None:
        with self._lock:
            lease = self._claims.get(task_id)
            if lease is not None:
                lease.deadline = time.monotonic() + self.lease_timeout_s

    def ack(self, claim: TaskClaim, worker_id: str, result: ResultUpload | None = None) -> None:
        self._ack_id(claim.task_id, worker_id, result)

    def _ack_id(self, task_id: str, worker_id: str, result: ResultUpload | None) -> None:
        if result is not None and self.result_store is not None:
            # Persist before marking done: a "done" task whose result was lost
            # would make the coordinator's final store load fail.  Store writes
            # are atomic, and double uploads after a lease expiry rewrite the
            # same bytes, so no lock is needed around the filesystem write.
            self.result_store.save_raw(result.key, result.result, result.fingerprint)
        with self._lock:
            self._claims.pop(task_id, None)
            # A zombie worker may ack a task that was already re-queued (and
            # possibly re-claimed): the result is identical either way, so the
            # ack wins and the duplicate pending/claimed entry is dropped.
            self._pending.pop(task_id, None)
            self._done.add(task_id)

    def fail(self, claim: TaskClaim, worker_id: str, error: str) -> None:
        self._fail_id(claim.task_id, worker_id, error)

    def _fail_id(self, task_id: str, worker_id: str, error: str) -> None:
        with self._lock:
            self._claims.pop(task_id, None)
            self._failed[task_id] = error

    # ------------------------------------------------------------------ inspection
    def pending_ids(self) -> set[str]:
        with self._lock:
            return set(self._pending)

    def claimed_ids(self) -> set[str]:
        with self._lock:
            return set(self._claims)

    def done_ids(self) -> set[str]:
        with self._lock:
            return set(self._done)

    def failed_tasks(self) -> dict[str, str]:
        with self._lock:
            return dict(self._failed)

    def has_live_claims(self) -> bool:
        now = time.monotonic()
        with self._lock:
            return any(lease.deadline >= now for lease in self._claims.values())

    def stats(self) -> QueueStats:
        with self._lock:
            return QueueStats(
                pending=len(self._pending),
                claimed=len(self._claims),
                done=len(self._done),
                failed=len(self._failed),
            )

    def describe(self) -> str:
        return f"QueueServer({self.url}, {self.stats().describe()})"

    # ------------------------------------------------------------------ wire
    def _dispatch(self, request: object) -> dict:
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "error": "malformed queue request"}
        op = request["op"]
        if op == "claim":
            claim = self.claim(str(request.get("worker_id", "unknown")))
            if claim is None:
                return {"ok": True, "task_id": None, "payload": None}
            return {"ok": True, "task_id": claim.task_id, "payload": claim.payload}
        if op == "renew":
            self._renew_id(str(request.get("task_id", "")))
            return {"ok": True}
        if op == "ack":
            result = request.get("result")
            if result is not None and not isinstance(result, ResultUpload):
                return {"ok": False, "error": "ack result must be a ResultUpload"}
            self._ack_id(
                str(request.get("task_id", "")), str(request.get("worker_id", "unknown")), result
            )
            return {"ok": True}
        if op == "fail":
            self._fail_id(
                str(request.get("task_id", "")),
                str(request.get("worker_id", "unknown")),
                str(request.get("error", "unknown error")),
            )
            return {"ok": True}
        if op == "poll":
            with self._lock:
                return {"ok": True, "stop": self._stop, "pending": len(self._pending)}
        if op == "stats":
            stats = self.stats()
            return {
                "ok": True,
                "pending": stats.pending,
                "claimed": stats.claimed,
                "done": stats.done,
                "failed": stats.failed,
            }
        return {"ok": False, "error": f"unknown queue op {op!r}"}


class NetWorkQueue:
    """Worker-side client of a :class:`QueueServer` (one frame per connection).

    Implements the :class:`~repro.runtime.workqueue.WorkerQueueTransport`
    surface.  A coordinator that stopped answering is treated as a finished
    sweep: ``claim`` returns ``None`` and ``stop_requested`` returns ``True``,
    so orphaned workers drain out instead of erroring or polling forever —
    any half-finished task's lease has died with the server anyway.
    """

    wants_results = True

    def __init__(self, url: str, timeout_s: float = CLIENT_TIMEOUT_S) -> None:
        from repro.runtime.workqueue import parse_queue_url

        address = parse_queue_url(url)
        if address.scheme != "tcp":
            raise ExperimentError(f"NetWorkQueue needs a tcp:// url, got {url!r}")
        self.host, self.port = address.host, address.port
        self.timeout_s = timeout_s

    def _request(self, request: dict) -> dict:
        with socket.create_connection((self.host, self.port), timeout=self.timeout_s) as sock:
            send_frame(sock, request)
            response = recv_frame(sock)
        if not isinstance(response, dict) or not response.get("ok"):
            error = response.get("error", "malformed response") if isinstance(response, dict) else response
            raise ExperimentError(f"queue server at {self.host}:{self.port} rejected {request.get('op')!r}: {error}")
        return response

    def claim(self, worker_id: str) -> TaskClaim | None:
        try:
            response = self._request({"op": "claim", "worker_id": worker_id})
        except OSError:
            return None  # server gone; stop_requested() tells the loop to exit
        if response["task_id"] is None:
            return None
        return TaskClaim(task_id=response["task_id"], payload=response["payload"])

    def renew(self, claim: TaskClaim) -> None:
        try:
            self._request({"op": "renew", "task_id": claim.task_id})
        except (OSError, ExperimentError):
            pass  # a missed heartbeat at worst expires the lease

    def ack(self, claim: TaskClaim, worker_id: str, result: ResultUpload | None = None) -> None:
        try:
            self._request(
                {"op": "ack", "task_id": claim.task_id, "worker_id": worker_id, "result": result}
            )
        except OSError:
            pass  # server gone: the lease expires and someone else re-runs it

    def fail(self, claim: TaskClaim, worker_id: str, error: str) -> None:
        try:
            self._request(
                {"op": "fail", "task_id": claim.task_id, "worker_id": worker_id, "error": error}
            )
        except OSError:
            pass

    def stop_requested(self) -> bool:
        try:
            return bool(self._request({"op": "poll"})["stop"])
        except OSError:
            return True  # unreachable coordinator == sweep over for this worker

    def stats(self) -> QueueStats:
        response = self._request({"op": "stats"})
        return QueueStats(
            pending=response["pending"],
            claimed=response["claimed"],
            done=response["done"],
            failed=response["failed"],
        )

    def describe(self) -> str:
        return f"NetWorkQueue(tcp://{self.host}:{self.port})"
