"""Plan-serving control plane: the optimizer as a long-lived network service.

Every experiment driver so far owned its :class:`~repro.optimizer.planner.
Planner` in process.  This module turns planning into a *service*: a
:class:`PlanServer` binds one database, accepts SQL text over the same
HMAC-authenticated frame codec the distributed work queue uses
(:mod:`repro.runtime.netqueue`), plans through the existing planner stack,
and answers with the physical plan plus cost, strategy and cache metadata.
Many clients — LQO training loops, ablation sweeps, the load harness in
``benchmarks/bench_plan_serving.py`` — then share **one cross-request
:class:`~repro.runtime.plan_cache.PlanCache`**, so a query planned for any
client is a cache hit for every other client with the same
(query, configuration, hints) fingerprints.

Security model (inherited from the netqueue codec, and the reason this
module reuses it rather than inventing framing): with a shared secret
(``REPRO_QUEUE_SECRET``), every frame is HMAC-SHA256 signed and the
signature is verified **while the payload is still opaque bytes** — an
unauthenticated or mis-keyed client can never reach ``pickle.loads`` and is
answered with a loud plain-text error frame, never silence.  See
``docs/SERVING.md`` for the full threat model.

Three server properties the drivers rely on:

* **Determinism / byte-identity.**  Planning is deterministic, and the
  served plan for a given (query, config, hints) is byte-identical under
  ``pickle.dumps`` to a direct ``Planner`` call in the client's own process,
  compared after one serialization hop on both sides — the served plan has
  already crossed the wire once, and CPython's unpickler can only *add*
  object sharing (one-character strings intern), never change content.  The
  service changes *where* planning runs, never its result.  Cache misses
  plan inside one server-side critical section, so concurrent misses of the
  same query collapse into a single planning pass (single-flight) instead
  of racing.
* **Bump-on-change invalidation.**  A catalog or statistics refresh cannot
  change any fingerprint, so the server exposes the cache's generation
  counter: the ``invalidate`` op bumps every served scope through
  :meth:`~repro.optimizer.planner.Planner.invalidate_cached_plans`, retiring
  all pre-bump entries without a restart (the hit-rate drop is visible in
  the stats frame).
* **Explicit admission control.**  A bounded TCP accept backlog plus
  per-client and global in-flight limits; a request over the limit gets a
  signed *reject* frame carrying a retry hint (:class:`repro.errors.
  PlanRejected` client-side) instead of queueing unboundedly or stalling
  silently.

Run standalone with ``python -m repro.runtime.planserver``.
"""

from __future__ import annotations

import argparse
import json
import pickle
import socketserver
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.config import PostgresConfig
from repro.errors import (
    HintError,
    OptimizerError,
    PlanServiceError,
    ReproError,
    SQLError,
)
from repro.optimizer.planner import Planner, PlannerResult
from repro.plans.hints import HintSet, NO_HINTS
from repro.runtime.netqueue import (
    FrameAuthError,
    SERVER_TIMEOUT_S,
    recv_frame,
    resolve_queue_secret,
    send_error_frame,
    send_frame,
)
from repro.runtime.plan_cache import PlanCache
from repro.sql.binder import BoundQuery, bind_sql
from repro.storage.database import Database

#: Default per-client in-flight request limit (admission control).
DEFAULT_CLIENT_INFLIGHT = 4

#: Default global in-flight request limit across all clients.
DEFAULT_TOTAL_INFLIGHT = 16

#: Default TCP accept backlog (the *bounded* connection queue: connections
#: beyond it are refused by the kernel instead of piling up unseen).
DEFAULT_BACKLOG = 32

#: How many recent request latencies the stats percentiles are computed over.
DEFAULT_LATENCY_WINDOW = 2048

#: Retry hint carried by reject frames, seconds.
REJECT_RETRY_AFTER_S = 0.05


def _percentile(sorted_samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty sample."""
    rank = min(len(sorted_samples) - 1, max(0, round(fraction * (len(sorted_samples) - 1))))
    return sorted_samples[rank]


@dataclass(frozen=True)
class PlanServerStats:
    """One point-in-time observation of a :class:`PlanServer`.

    The serving analogue of :class:`~repro.runtime.progress.ProgressSnapshot`:
    immutable, JSON-ready, safe to ship over the wire.  ``cache`` is the
    shared :class:`~repro.runtime.plan_cache.PlanCache` counter snapshot
    (hits/misses/evictions/invalidations/hit_rate); ``generations`` maps each
    served cache scope to its current generation, so a client can observe an
    invalidation bump without planning anything.
    """

    uptime_s: float
    served: int
    planned: int
    rejected: int
    auth_rejects: int
    errors: int
    inflight: int
    clients: dict[str, int] = field(default_factory=dict)
    cache: dict[str, float] = field(default_factory=dict)
    generations: dict[str, int] = field(default_factory=dict)
    latency_ms: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready form (keys are stable; the stats-frame surface)."""
        return {
            "uptime_s": round(self.uptime_s, 3),
            "served": self.served,
            "planned": self.planned,
            "rejected": self.rejected,
            "auth_rejects": self.auth_rejects,
            "errors": self.errors,
            "inflight": self.inflight,
            "clients": dict(sorted(self.clients.items())),
            "cache": self.cache,
            "generations": dict(sorted(self.generations.items())),
            "latency_ms": self.latency_ms,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def describe(self) -> str:
        hit_rate = self.cache.get("hit_rate", 0.0)
        p95 = self.latency_ms.get("p95", 0.0)
        return (
            f"PlanServer(served={self.served}, planned={self.planned}, "
            f"hit_rate={hit_rate:.1%}, rejected={self.rejected}, "
            f"auth_rejects={self.auth_rejects}, errors={self.errors}, "
            f"p95={p95:.2f}ms, up {self.uptime_s:.0f}s)"
        )


class _PlanFrameHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised through the client
        server: "PlanServer" = self.server.plan_server
        deadline = time.monotonic() + SERVER_TIMEOUT_S
        try:
            request = recv_frame(self.request, secret=server._secret, deadline=deadline)
        except FrameAuthError as exc:
            # Authentication failed while the payload was still opaque bytes:
            # count it, answer loudly in plain text, never unpickle.
            server._count_auth_reject()
            try:
                send_error_frame(self.request, f"plan server rejected the frame: {exc}")
            except OSError:
                pass
            return
        except (ConnectionError, OSError, pickle.UnpicklingError):
            return
        peer = self.client_address[0] if self.client_address else "unknown"
        try:
            response = server._dispatch(request, peer)
        except Exception as exc:  # surface server-side bugs to the caller
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        try:
            send_frame(self.request, response, secret=server._secret)
        except OSError:
            pass


class _PlanTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], backlog: int) -> None:
        # ``listen(backlog)`` reads this during activation: the accept queue
        # is bounded before the first client can connect.
        self.request_queue_size = backlog
        super().__init__(address, _PlanFrameHandler)


class PlanServer:
    """Optimizer-as-a-service over the authenticated frame codec.

    One server binds one :class:`~repro.storage.database.Database` and plans
    every request through :class:`~repro.optimizer.planner.Planner` instances
    that all share ``plan_cache``.  Requests may carry a configuration
    override: each distinct :class:`~repro.config.PostgresConfig` gets its own
    planner (planners are cheap; the cache is the shared asset), keyed by
    config fingerprint.

    Wire protocol — one signed request frame, one signed response frame per
    connection, payloads are dicts with an ``"op"`` key:

    ``{"op": "plan", "sql": str, "hints": HintSet?, "config": PostgresConfig?,
    "client": str?}``
        → ``{"ok": True, "plan": PlanNode, "strategy": str,
        "planning_time_ms": float, "estimated_cost": float,
        "estimated_rows": float, "cache_hit": bool, "server_latency_ms":
        float, "generation": int}`` — or a reject/error dict (below).
    ``{"op": "stats"}``
        → ``{"ok": True, "stats": <PlanServerStats.to_dict()>}``.
    ``{"op": "invalidate"}``
        → ``{"ok": True, "generations": {scope: new_generation}}`` — bumps
        every served scope (catalog/statistics changed).
    ``{"op": "ping"}``
        → ``{"ok": True, "database": str}``.

    Failure frames: ``{"ok": False, "rejected": True, "error": str,
    "retry_after_s": float}`` for admission-control rejections, and
    ``{"ok": False, "error": str, "kind": str}`` for request errors (parse,
    binding, hint validation, planning).  Unauthenticated frames never get
    this far — they are answered with a plain-text error frame before
    deserialization (see the module docstring).
    """

    def __init__(
        self,
        database: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        secret: str | bytes | None = None,
        plan_cache: PlanCache | None = None,
        max_client_inflight: int = DEFAULT_CLIENT_INFLIGHT,
        max_total_inflight: int = DEFAULT_TOTAL_INFLIGHT,
        backlog: int = DEFAULT_BACKLOG,
        latency_window: int = DEFAULT_LATENCY_WINDOW,
    ) -> None:
        if max_client_inflight <= 0 or max_total_inflight <= 0:
            raise PlanServiceError("PlanServer in-flight limits must be positive")
        if backlog <= 0:
            raise PlanServiceError("PlanServer backlog must be positive")
        self.database = database
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.max_client_inflight = int(max_client_inflight)
        self.max_total_inflight = int(max_total_inflight)
        #: Frame-signing secret (explicit, else REPRO_QUEUE_SECRET, else off).
        self._secret = resolve_queue_secret(secret)
        self._lock = threading.Lock()
        #: Cache-miss planning runs inside this critical section: concurrent
        #: misses of the same key collapse into one planning pass, and the
        #: pure-Python enumerators never interleave (single-flight).
        self._plan_lock = threading.Lock()
        #: One planner per distinct request configuration, sharing the cache.
        self._planners: dict[str, Planner] = {}
        self._inflight: dict[str, int] = {}
        self._total_inflight = 0
        self._served = 0
        self._planned = 0
        self._rejected = 0
        self._auth_rejects = 0
        self._errors = 0
        self._client_served: dict[str, int] = {}
        self._latencies_ms: deque[float] = deque(maxlen=latency_window)
        self._started = time.monotonic()
        self._default_planner = self._make_planner(None)
        self._server = _PlanTCPServer((host, port), backlog)
        self._server.plan_server = self
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-plan-server", daemon=True
        )
        self._thread.start()
        self._closed = False

    # ------------------------------------------------------------------ lifecycle
    @property
    def url(self) -> str:
        """The ``tcp://host:port`` address clients connect to."""
        host = "127.0.0.1" if self.host in ("0.0.0.0", "::") else self.host
        return f"tcp://{host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=10)

    def __enter__(self) -> "PlanServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ planners
    def _make_planner(self, config: PostgresConfig | None) -> Planner:
        planner = Planner(self.database, config=config, plan_cache=self.plan_cache)
        return planner

    def _planner_for(self, config: PostgresConfig | None) -> Planner:
        """The planner serving ``config`` (the database default for ``None``)."""
        if config is None:
            return self._default_planner
        fingerprint = config.fingerprint()
        with self._lock:
            planner = self._planners.get(fingerprint)
        if planner is not None:
            return planner
        # Built outside the stats lock (planner construction walks the
        # catalog); a racing duplicate is discarded — planners are stateless
        # per call and share the cache, so either instance serves identically.
        planner = self._make_planner(config)
        with self._lock:
            return self._planners.setdefault(fingerprint, planner)

    def invalidate(self) -> dict[str, int]:
        """Bump every served scope's generation (catalog/statistics changed).

        Pre-bump cache entries stop matching immediately — in-flight requests
        keyed before the bump simply miss and re-plan.  Returns the new
        generation per scope.
        """
        with self._lock:
            planners = [self._default_planner, *self._planners.values()]
        generations: dict[str, int] = {}
        for planner in planners:
            generations[planner.cache_scope] = planner.invalidate_cached_plans()
        return generations

    # ------------------------------------------------------------------ serving
    def _dispatch(self, request: object, peer: str) -> dict:
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "error": "malformed plan request", "kind": "protocol"}
        op = request["op"]
        if op == "plan":
            return self._serve_plan(request, peer)
        if op == "stats":
            return {"ok": True, "stats": self.stats().to_dict()}
        if op == "invalidate":
            return {"ok": True, "generations": self.invalidate()}
        if op == "ping":
            return {"ok": True, "database": self.database.name}
        return {"ok": False, "error": f"unknown plan op {op!r}", "kind": "protocol"}

    def _serve_plan(self, request: dict, peer: str) -> dict:
        client = str(request.get("client") or peer)
        if not self._admit(client):
            with self._lock:
                self._rejected += 1
            return {
                "ok": False,
                "rejected": True,
                "error": (
                    f"plan server at capacity for client {client!r} "
                    f"(per-client limit {self.max_client_inflight}, "
                    f"global limit {self.max_total_inflight})"
                ),
                "retry_after_s": REJECT_RETRY_AFTER_S,
            }
        try:
            started = time.perf_counter()
            response = self._plan_admitted(request)
            latency_ms = (time.perf_counter() - started) * 1000.0
            with self._lock:
                if response.get("ok"):
                    self._served += 1
                    self._client_served[client] = self._client_served.get(client, 0) + 1
                    self._latencies_ms.append(latency_ms)
                else:
                    self._errors += 1
            if response.get("ok"):
                response["server_latency_ms"] = latency_ms
            return response
        finally:
            self._release(client)

    def _plan_admitted(self, request: dict) -> dict:
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            return {"ok": False, "error": "plan request needs a non-empty 'sql'", "kind": "protocol"}
        hints = request.get("hints") or NO_HINTS
        if not isinstance(hints, HintSet):
            return {"ok": False, "error": "plan request 'hints' must be a HintSet", "kind": "protocol"}
        config = request.get("config")
        if config is not None and not isinstance(config, PostgresConfig):
            return {"ok": False, "error": "plan request 'config' must be a PostgresConfig", "kind": "protocol"}
        try:
            query = bind_sql(sql, self.database.schema)
        except SQLError as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}", "kind": "sql"}
        planner = self._planner_for(config)
        try:
            result, cache_hit = self._plan_single_flight(planner, query, hints)
        except (HintError, OptimizerError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}", "kind": "planning"}
        if not cache_hit:
            with self._lock:
                self._planned += 1
        return {
            "ok": True,
            "plan": result.plan,
            "strategy": result.strategy,
            "planning_time_ms": result.planning_time_ms,
            "estimated_cost": result.estimated_cost,
            "estimated_rows": result.estimated_rows,
            "cache_hit": cache_hit,
            "generation": self.plan_cache.generation(planner.cache_scope),
        }

    def _plan_single_flight(
        self, planner: Planner, query: BoundQuery, hints: HintSet
    ) -> tuple[PlannerResult, bool]:
        """Plan via the shared cache; misses run in the planning critical section.

        ``peek`` routes the request without touching hit/miss counters — the
        single ``Planner.plan_with_info`` call below is the one ``get`` that
        accounts it, so stats requests always equal hits + misses.  A miss
        re-peeks inside the lock: a concurrent client may have planned the
        same key while this one waited, turning the miss into a hit
        (single-flight).  An invalidation bump between peek and plan just
        changes the key — the request re-plans against the new generation.
        """
        key = planner.cache_key(query, hints)
        if self.plan_cache.peek(key) is not None:
            return planner.plan_with_info(query, hints), True
        with self._plan_lock:
            cache_hit = self.plan_cache.peek(key) is not None
            return planner.plan_with_info(query, hints), cache_hit

    # ------------------------------------------------------------ admission
    def _admit(self, client: str) -> bool:
        """Reserve an in-flight slot; ``False`` means reject (limits reached)."""
        with self._lock:
            if self._total_inflight >= self.max_total_inflight:
                return False
            if self._inflight.get(client, 0) >= self.max_client_inflight:
                return False
            self._inflight[client] = self._inflight.get(client, 0) + 1
            self._total_inflight += 1
            return True

    def _release(self, client: str) -> None:
        with self._lock:
            remaining = self._inflight.get(client, 1) - 1
            if remaining <= 0:
                self._inflight.pop(client, None)
            else:
                self._inflight[client] = remaining
            self._total_inflight = max(0, self._total_inflight - 1)

    def _count_auth_reject(self) -> None:
        with self._lock:
            self._auth_rejects += 1

    # ------------------------------------------------------------------ stats
    def stats(self) -> PlanServerStats:
        """A consistent stats snapshot (counters read under the lock)."""
        with self._lock:
            samples = sorted(self._latencies_ms)
            latency: dict[str, float] = {"count": float(len(samples))}
            if samples:
                latency.update(
                    mean=round(sum(samples) / len(samples), 4),
                    p50=round(_percentile(samples, 0.50), 4),
                    p95=round(_percentile(samples, 0.95), 4),
                    p99=round(_percentile(samples, 0.99), 4),
                )
            planners = [self._default_planner, *self._planners.values()]
            snapshot = PlanServerStats(
                uptime_s=time.monotonic() - self._started,
                served=self._served,
                planned=self._planned,
                rejected=self._rejected,
                auth_rejects=self._auth_rejects,
                errors=self._errors,
                inflight=self._total_inflight,
                clients=dict(self._client_served),
                cache=self.plan_cache.stats_snapshot().snapshot(),
                generations={
                    planner.cache_scope: self.plan_cache.generation(planner.cache_scope)
                    for planner in planners
                },
                latency_ms=latency,
            )
        return snapshot

    def describe(self) -> str:
        return f"PlanServer({self.url}, db={self.database.name}, {self.stats().describe()})"


# ---------------------------------------------------------------------- CLI
def main(argv: list[str] | None = None) -> int:
    """``python -m repro.runtime.planserver``: serve plans for a built database."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.planserver",
        description="Serve query plans over the authenticated frame codec.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: loopback)")
    parser.add_argument("--port", type=int, default=0, help="bind port (default: ephemeral)")
    parser.add_argument("--generator", default="imdb", help="database generator id (default: imdb)")
    parser.add_argument("--scale", type=float, default=0.5, help="database scale factor")
    parser.add_argument("--seed", type=int, default=42, help="database data seed")
    parser.add_argument(
        "--max-client-inflight", type=int, default=DEFAULT_CLIENT_INFLIGHT,
        help="per-client concurrent request limit",
    )
    parser.add_argument(
        "--max-total-inflight", type=int, default=DEFAULT_TOTAL_INFLIGHT,
        help="global concurrent request limit",
    )
    parser.add_argument(
        "--stats-interval-s", type=float, default=10.0,
        help="seconds between stats lines on stdout (0 disables)",
    )
    args = parser.parse_args(argv)

    from repro.config import SIMULATION_CONFIG
    from repro.storage.registry import get_process_registry
    from repro.storage.spec import DatabaseSpec

    spec = DatabaseSpec.create(
        args.generator, scale=args.scale, seed=args.seed, config=SIMULATION_CONFIG
    )
    try:
        database = get_process_registry().get(spec)
    except ReproError as exc:
        print(f"planserver: cannot build database: {exc}", file=sys.stderr)
        return 2
    server = PlanServer(
        database,
        host=args.host,
        port=args.port,
        max_client_inflight=args.max_client_inflight,
        max_total_inflight=args.max_total_inflight,
    )
    auth = "hmac" if server._secret is not None else "OFF (set REPRO_QUEUE_SECRET)"
    print(json.dumps({"url": server.url, "database": database.name, "auth": auth}), flush=True)
    try:
        while True:
            time.sleep(args.stats_interval_s if args.stats_interval_s > 0 else 60.0)
            if args.stats_interval_s > 0:
                print(server.stats().to_json(), flush=True)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        print(server.stats().to_json(), flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
