"""A resumable JSON result store with skip-existing semantics.

Modelled on PostBOUND's experiment harness: every completed (workload, split,
method, seed) task is persisted as one JSON file, and a re-run of the same
grid loads the stored results instead of recomputing them.  Killing a long
sweep halfway and restarting it therefore only pays for the tasks that were
still missing — the resume behaviour the paper's multi-hour experiment grids
need.

Stored payloads carry a *context fingerprint* (database configuration,
experiment knobs and split membership).  The fingerprint is part of the file
name, so runs of the same (workload, split, method, seed) under different
configurations coexist instead of overwriting each other, and a file whose
fingerprint does not match the requesting context is treated as missing —
stale results from an earlier configuration can never silently leak into a
new sweep.

For multi-host sweeps the :class:`ShardedResultStore` partitions results over
N shard directories by a stable hash of the :class:`TaskKey`, so independent
workers never contend on one directory; :meth:`ShardedResultStore.merge` /
:meth:`~ShardedResultStore.compact` fold the shards back into a flat store
for reporting.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us)
    from repro.core.metrics import MethodRunResult

#: Format version written into every result file.
STORE_FORMAT_VERSION = 1

#: Directories under a store root that never hold task results (saved
#: artefacts, the distributed work queue) and are skipped by result iteration.
RESERVED_DIRS = frozenset({"artifacts", "queue"})

#: Root-level bookkeeping files that are not task results.
MANIFEST_NAME = "manifest.json"

_SANITIZE_RE = re.compile(r"[^A-Za-z0-9._-]+")


def _sanitize(part: str) -> str:
    """File-system safe rendering of one key component."""
    cleaned = _SANITIZE_RE.sub("_", part.strip())
    return cleaned or "_"


def atomic_write_bytes(path: Path, blob: bytes) -> None:
    """Write ``blob`` to ``path`` atomically (write-to-temp + rename).

    Readers either see the previous content or the full new content, never a
    torn mix — the invariant every store file, queue task file and ack marker
    relies on.  The temp file is cleaned up on any failure.
    """
    fd, tmp_name = tempfile.mkstemp(prefix=path.stem + ".", suffix=".tmp", dir=str(path.parent))
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass(frozen=True)
class TaskKey:
    """Identity of one stored method run."""

    workload: str
    split_name: str
    method: str
    seed: int = 0

    def relative_path(self, context_fingerprint: str | None = None) -> Path:
        stem = f"{_sanitize(self.method)}-seed{self.seed}"
        if context_fingerprint is not None:
            stem += f"-{_sanitize(context_fingerprint)[:8]}"
        return Path(_sanitize(self.workload)) / _sanitize(self.split_name) / f"{stem}.json"

    def glob_patterns(self) -> tuple[str, str]:
        """Patterns matching this key's result files under *any* fingerprint.

        Only ``<stem>.json`` (no fingerprint) or ``<stem>-<fp>.json`` may
        match: the literal ``-`` keeps ``seed1`` from matching ``seed10``, and
        the ``.json`` suffix keeps stale ``<stem>.*.tmp`` leftovers of a
        crashed atomic write from counting as stored results (a half-written
        temp file would otherwise make ``exists()`` skip the task, or
        ``load()`` die on it, and poison every later resume).
        """
        stem = f"{_sanitize(self.method)}-seed{self.seed}"
        return (f"{stem}.json", f"{stem}-*.json")

    def shard_index(self, shard_count: int) -> int:
        """Stable shard assignment of this key (same in every process/host)."""
        identity = f"{self.workload}|{self.split_name}|{self.method}|{self.seed}"
        digest = hashlib.sha256(identity.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % shard_count

    def describe(self) -> str:
        return f"{self.workload}/{self.split_name}/{self.method} (seed {self.seed})"


class ResultStore:
    """Directory-backed store of :class:`MethodRunResult` payloads.

    Writes are atomic (write-to-temp + rename), so a killed run can never
    leave a half-written JSON file that would poison the next resume.
    """

    def __init__(self, root: str | os.PathLike, skip_existing: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.skip_existing = skip_existing
        #: Resume accounting: how many loads were served from disk vs. computed.
        self.loaded_count = 0
        self.stored_count = 0

    # ------------------------------------------------------------------ paths
    def path_for(self, key: TaskKey, context_fingerprint: str | None = None) -> Path:
        return self.root / key.relative_path(context_fingerprint)

    def _candidate_paths(self, key: TaskKey) -> list[Path]:
        """Every stored file for ``key``, regardless of context fingerprint.

        Only ``*.json`` files count: ``.tmp`` leftovers of a crashed
        :meth:`_atomic_write` are never usable results.
        """
        directory = self.path_for(key).parent
        if not directory.is_dir():
            return []
        found: set[Path] = set()
        for pattern in key.glob_patterns():
            found.update(directory.glob(pattern))
        return sorted(path for path in found if path.suffix == ".json")

    def exists(self, key: TaskKey, context_fingerprint: str | None = None) -> bool:
        """Whether a usable stored result exists for ``key``.

        With a ``context_fingerprint``, only a result produced under that
        exact context counts; without one, any stored variant does.
        """
        if context_fingerprint is None:
            return bool(self._candidate_paths(key))
        path = self.path_for(key, context_fingerprint)
        if not path.is_file():
            return False
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        return payload.get("context_fingerprint") == context_fingerprint

    # ------------------------------------------------------------------ access
    def save(
        self,
        key: TaskKey,
        result: "MethodRunResult",
        context_fingerprint: str | None = None,
    ) -> Path:
        """Atomically persist one method run."""
        return self.save_raw(key, result.to_dict(), context_fingerprint)

    def save_raw(
        self,
        key: TaskKey,
        result_payload: dict,
        context_fingerprint: str | None = None,
    ) -> Path:
        """Persist an already-serialized result dict.

        This is the coordinator-side sink of the TCP transport's result
        uploads: the worker ships ``result.to_dict()`` over the wire and the
        coordinator writes it verbatim, producing byte-for-byte the file the
        worker's own ``save`` would have written into a shared store (no
        deserialize/re-serialize round trip to drift through).
        """
        path = self.path_for(key, context_fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format_version": STORE_FORMAT_VERSION,
            "key": {
                "workload": key.workload,
                "split_name": key.split_name,
                "method": key.method,
                "seed": key.seed,
            },
            "context_fingerprint": context_fingerprint,
            "result": result_payload,
        }
        self._atomic_write(path, payload)
        self.stored_count += 1
        return path

    def load(self, key: TaskKey, context_fingerprint: str | None = None) -> "MethodRunResult":
        """Load one stored method run (raises :class:`ExperimentError` if unusable)."""
        from repro.core.metrics import MethodRunResult

        if context_fingerprint is not None:
            path = self.path_for(key, context_fingerprint)
        else:
            candidates = self._candidate_paths(key)
            if not candidates:
                raise ExperimentError(f"no stored result for {key.describe()}")
            path = candidates[0]
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError as exc:
            raise ExperimentError(f"no stored result for {key.describe()}") from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise ExperimentError(f"corrupt stored result at {path}") from exc
        if (
            context_fingerprint is not None
            and payload.get("context_fingerprint") != context_fingerprint
        ):
            raise ExperimentError(
                f"stored result for {key.describe()} was produced under a different "
                "configuration (context fingerprint mismatch)"
            )
        self.loaded_count += 1
        return MethodRunResult.from_dict(payload["result"])

    def load_or_run(
        self,
        key: TaskKey,
        thunk: Callable[[], "MethodRunResult"],
        context_fingerprint: str | None = None,
    ) -> tuple["MethodRunResult", bool]:
        """Return ``(result, was_resumed)``: load when possible, else run and save."""
        if self.skip_existing and self.exists(key, context_fingerprint):
            return self.load(key, context_fingerprint), True
        result = thunk()
        self.save(key, result, context_fingerprint)
        return result, False

    # ------------------------------------------------------------------ sweeps
    def pending(
        self, keys: Iterable[TaskKey], context_fingerprint: str | None = None
    ) -> list[TaskKey]:
        """The subset of ``keys`` that still needs to be computed."""
        if not self.skip_existing:
            return list(keys)
        return [key for key in keys if not self.exists(key, context_fingerprint)]

    def completed_files(self) -> Iterator[Path]:
        """Every stored *task result* file, in stable order.

        Saved artefacts (``artifacts/``), the distributed work queue
        (``queue/``) and the shard manifest are bookkeeping, not results:
        counting them in :meth:`describe` or deleting them in :meth:`clear`
        would corrupt the store's non-result state.
        """
        for path in sorted(self.root.rglob("*.json")):
            relative = path.relative_to(self.root)
            if relative.parts[0] in RESERVED_DIRS or relative.name == MANIFEST_NAME:
                continue
            yield path

    def clear(self) -> int:
        """Delete every stored result file (artifacts survive); returns the number removed."""
        removed = 0
        for path in list(self.completed_files()):
            path.unlink()
            removed += 1
        return removed

    # ------------------------------------------------------------------ artifacts
    def save_artifact(self, name: str, payload: object) -> Path:
        """Persist an arbitrary JSON artefact (summary tables, figure rows)."""
        path = self.root / "artifacts" / f"{_sanitize(name)}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, payload)
        return path

    def load_artifact(self, name: str) -> object:
        path = self.root / "artifacts" / f"{_sanitize(name)}.json"
        try:
            return json.loads(path.read_text())
        except FileNotFoundError as exc:
            raise ExperimentError(f"no stored artifact named {name!r}") from exc

    # ------------------------------------------------------------------ plumbing
    @staticmethod
    def _atomic_write(path: Path, payload: object) -> None:
        blob = json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")
        atomic_write_bytes(path, blob)

    def describe(self) -> str:
        n_files = sum(1 for _ in self.completed_files())
        return (
            f"ResultStore({self.root}, {n_files} stored results, "
            f"{self.loaded_count} resumed / {self.stored_count} written this run)"
        )


class ShardedResultStore(ResultStore):
    """A :class:`ResultStore` partitioned over N shard directories.

    Each :class:`TaskKey` routes to exactly one ``shard-XX/`` subdirectory by
    a stable content hash of its identity, so any number of workers — on any
    number of hosts sharing the store's filesystem — write into disjoint
    directories without ever contending on one directory's entry list.  The
    full :class:`ResultStore` interface (``exists`` / ``save`` / ``load`` /
    ``load_or_run`` / ``pending``) works unchanged; only the on-disk layout
    differs.

    A ``manifest.json`` at the store root records the shard count (validated
    on every open: mixing shard counts would route keys to the wrong
    directory) and, after :meth:`refresh_manifest`, the set of context
    fingerprints present.  :meth:`merge` copies every result into a flat
    :class:`ResultStore` for reporting; :meth:`compact` folds the shards into
    the root in place.
    """

    def __init__(
        self, root: str | os.PathLike, shard_count: int = 8, skip_existing: bool = True
    ) -> None:
        if shard_count < 1:
            raise ExperimentError("ShardedResultStore needs at least one shard")
        super().__init__(root, skip_existing=skip_existing)
        self.shard_count = shard_count
        self._init_manifest()

    # ------------------------------------------------------------------ layout
    def shard_dir(self, index: int) -> Path:
        return self.root / f"shard-{index:02d}"

    def shard_of(self, key: TaskKey) -> int:
        return key.shard_index(self.shard_count)

    def path_for(self, key: TaskKey, context_fingerprint: str | None = None) -> Path:
        return self.shard_dir(self.shard_of(key)) / key.relative_path(context_fingerprint)

    # ------------------------------------------------------------------ manifest
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _init_manifest(self) -> None:
        if self.manifest_path.is_file():
            stored = self.manifest()
            if stored.get("shard_count") != self.shard_count:
                raise ExperimentError(
                    f"store at {self.root} was created with "
                    f"{stored.get('shard_count')} shards, not {self.shard_count}: "
                    "a different shard count would route task keys to the wrong directory"
                )
            return
        self._atomic_write(
            self.manifest_path,
            {
                "format_version": STORE_FORMAT_VERSION,
                "shard_count": self.shard_count,
                "context_fingerprints": [],
            },
        )

    def manifest(self) -> dict:
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ExperimentError(f"unreadable shard manifest at {self.manifest_path}") from exc
        if not isinstance(payload, dict):
            raise ExperimentError(f"malformed shard manifest at {self.manifest_path}")
        return payload

    def refresh_manifest(self) -> dict:
        """Rewrite the manifest with the context fingerprints currently stored."""
        fingerprints: set[str] = set()
        for path in self.completed_files():
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            fingerprint = payload.get("context_fingerprint") if isinstance(payload, dict) else None
            if fingerprint:
                fingerprints.add(fingerprint)
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "shard_count": self.shard_count,
            "context_fingerprints": sorted(fingerprints),
        }
        self._atomic_write(self.manifest_path, manifest)
        return manifest

    # ------------------------------------------------------------------ folding
    def _flat_relative(self, path: Path) -> Path:
        """The shard file's path inside a flat (unsharded) store."""
        relative = path.relative_to(self.root)
        if relative.parts and relative.parts[0].startswith("shard-"):
            return Path(*relative.parts[1:])
        return relative

    def merge(self, target_root: str | os.PathLike) -> ResultStore:
        """Copy every result (and artefact) into a flat store at ``target_root``.

        Files are copied byte-for-byte, so results load from the merged store
        exactly as they would from the shards — same payload, same context
        fingerprint.  Keys route to exactly one shard, so two shards can never
        hold the same flat path.
        """
        flat = ResultStore(target_root, skip_existing=self.skip_existing)
        for path in self.completed_files():
            self._atomic_copy(path, flat.root / self._flat_relative(path))
        artifacts = self.root / "artifacts"
        if artifacts.is_dir():
            for path in sorted(artifacts.rglob("*.json")):
                self._atomic_copy(path, flat.root / path.relative_to(self.root))
        return flat

    def compact(self) -> ResultStore:
        """Fold the shards into the root in place and drop the shard layout.

        Returns the flat :class:`ResultStore` over the same root; this sharded
        view is stale afterwards and must not be used again.
        """
        for index in range(self.shard_count):
            shard = self.shard_dir(index)
            if not shard.is_dir():
                continue
            for path in sorted(shard.rglob("*.json")):
                destination = self.root / path.relative_to(shard)
                destination.parent.mkdir(parents=True, exist_ok=True)
                os.replace(path, destination)
            shutil.rmtree(shard)
        self.manifest_path.unlink(missing_ok=True)
        return ResultStore(self.root, skip_existing=self.skip_existing)

    @staticmethod
    def _atomic_copy(source: Path, destination: Path) -> None:
        destination.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(destination, source.read_bytes())

    def describe(self) -> str:
        n_files = sum(1 for _ in self.completed_files())
        return (
            f"ShardedResultStore({self.root}, {self.shard_count} shards, "
            f"{n_files} stored results, {self.loaded_count} resumed / "
            f"{self.stored_count} written this run)"
        )
