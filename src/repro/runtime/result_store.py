"""A resumable JSON result store with skip-existing semantics.

Modelled on PostBOUND's experiment harness: every completed (workload, split,
method, seed) task is persisted as one JSON file, and a re-run of the same
grid loads the stored results instead of recomputing them.  Killing a long
sweep halfway and restarting it therefore only pays for the tasks that were
still missing — the resume behaviour the paper's multi-hour experiment grids
need.

Stored payloads carry a *context fingerprint* (database configuration,
experiment knobs and split membership).  The fingerprint is part of the file
name, so runs of the same (workload, split, method, seed) under different
configurations coexist instead of overwriting each other, and a file whose
fingerprint does not match the requesting context is treated as missing —
stale results from an earlier configuration can never silently leak into a
new sweep.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports us)
    from repro.core.metrics import MethodRunResult

#: Format version written into every result file.
STORE_FORMAT_VERSION = 1

_SANITIZE_RE = re.compile(r"[^A-Za-z0-9._-]+")


def _sanitize(part: str) -> str:
    """File-system safe rendering of one key component."""
    cleaned = _SANITIZE_RE.sub("_", part.strip())
    return cleaned or "_"


@dataclass(frozen=True)
class TaskKey:
    """Identity of one stored method run."""

    workload: str
    split_name: str
    method: str
    seed: int = 0

    def relative_path(self, context_fingerprint: str | None = None) -> Path:
        stem = f"{_sanitize(self.method)}-seed{self.seed}"
        if context_fingerprint is not None:
            stem += f"-{_sanitize(context_fingerprint)[:8]}"
        return Path(_sanitize(self.workload)) / _sanitize(self.split_name) / f"{stem}.json"

    def glob_pattern(self) -> str:
        """Matches this key's files under *any* context fingerprint.

        The ``[.-]`` class keeps ``seed1`` from matching ``seed10``: after the
        seed only ``.json`` (no fingerprint) or ``-<fp>.json`` may follow.
        """
        return f"{_sanitize(self.method)}-seed{self.seed}[.-]*"

    def describe(self) -> str:
        return f"{self.workload}/{self.split_name}/{self.method} (seed {self.seed})"


class ResultStore:
    """Directory-backed store of :class:`MethodRunResult` payloads.

    Writes are atomic (write-to-temp + rename), so a killed run can never
    leave a half-written JSON file that would poison the next resume.
    """

    def __init__(self, root: str | os.PathLike, skip_existing: bool = True) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.skip_existing = skip_existing
        #: Resume accounting: how many loads were served from disk vs. computed.
        self.loaded_count = 0
        self.stored_count = 0

    # ------------------------------------------------------------------ paths
    def path_for(self, key: TaskKey, context_fingerprint: str | None = None) -> Path:
        return self.root / key.relative_path(context_fingerprint)

    def _candidate_paths(self, key: TaskKey) -> list[Path]:
        """Every stored file for ``key``, regardless of context fingerprint."""
        directory = self.path_for(key).parent
        if not directory.is_dir():
            return []
        return sorted(directory.glob(key.glob_pattern()))

    def exists(self, key: TaskKey, context_fingerprint: str | None = None) -> bool:
        """Whether a usable stored result exists for ``key``.

        With a ``context_fingerprint``, only a result produced under that
        exact context counts; without one, any stored variant does.
        """
        if context_fingerprint is None:
            return bool(self._candidate_paths(key))
        path = self.path_for(key, context_fingerprint)
        if not path.is_file():
            return False
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        return payload.get("context_fingerprint") == context_fingerprint

    # ------------------------------------------------------------------ access
    def save(
        self,
        key: TaskKey,
        result: "MethodRunResult",
        context_fingerprint: str | None = None,
    ) -> Path:
        """Atomically persist one method run."""
        path = self.path_for(key, context_fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format_version": STORE_FORMAT_VERSION,
            "key": {
                "workload": key.workload,
                "split_name": key.split_name,
                "method": key.method,
                "seed": key.seed,
            },
            "context_fingerprint": context_fingerprint,
            "result": result.to_dict(),
        }
        self._atomic_write(path, payload)
        self.stored_count += 1
        return path

    def load(self, key: TaskKey, context_fingerprint: str | None = None) -> "MethodRunResult":
        """Load one stored method run (raises :class:`ExperimentError` if unusable)."""
        from repro.core.metrics import MethodRunResult

        if context_fingerprint is not None:
            path = self.path_for(key, context_fingerprint)
        else:
            candidates = self._candidate_paths(key)
            if not candidates:
                raise ExperimentError(f"no stored result for {key.describe()}")
            path = candidates[0]
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError as exc:
            raise ExperimentError(f"no stored result for {key.describe()}") from exc
        except (OSError, json.JSONDecodeError) as exc:
            raise ExperimentError(f"corrupt stored result at {path}") from exc
        if (
            context_fingerprint is not None
            and payload.get("context_fingerprint") != context_fingerprint
        ):
            raise ExperimentError(
                f"stored result for {key.describe()} was produced under a different "
                "configuration (context fingerprint mismatch)"
            )
        self.loaded_count += 1
        return MethodRunResult.from_dict(payload["result"])

    def load_or_run(
        self,
        key: TaskKey,
        thunk: Callable[[], "MethodRunResult"],
        context_fingerprint: str | None = None,
    ) -> tuple["MethodRunResult", bool]:
        """Return ``(result, was_resumed)``: load when possible, else run and save."""
        if self.skip_existing and self.exists(key, context_fingerprint):
            return self.load(key, context_fingerprint), True
        result = thunk()
        self.save(key, result, context_fingerprint)
        return result, False

    # ------------------------------------------------------------------ sweeps
    def pending(
        self, keys: Iterable[TaskKey], context_fingerprint: str | None = None
    ) -> list[TaskKey]:
        """The subset of ``keys`` that still needs to be computed."""
        if not self.skip_existing:
            return list(keys)
        return [key for key in keys if not self.exists(key, context_fingerprint)]

    def completed_files(self) -> Iterator[Path]:
        yield from sorted(self.root.rglob("*.json"))

    def clear(self) -> int:
        """Delete every stored result file; returns the number removed."""
        removed = 0
        for path in list(self.completed_files()):
            path.unlink()
            removed += 1
        return removed

    # ------------------------------------------------------------------ artifacts
    def save_artifact(self, name: str, payload: object) -> Path:
        """Persist an arbitrary JSON artefact (summary tables, figure rows)."""
        path = self.root / "artifacts" / f"{_sanitize(name)}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, payload)
        return path

    def load_artifact(self, name: str) -> object:
        path = self.root / "artifacts" / f"{_sanitize(name)}.json"
        try:
            return json.loads(path.read_text())
        except FileNotFoundError as exc:
            raise ExperimentError(f"no stored artifact named {name!r}") from exc

    # ------------------------------------------------------------------ plumbing
    @staticmethod
    def _atomic_write(path: Path, payload: object) -> None:
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.stem + ".", suffix=".tmp", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def describe(self) -> str:
        n_files = sum(1 for _ in self.completed_files())
        return (
            f"ResultStore({self.root}, {n_files} stored results, "
            f"{self.loaded_count} resumed / {self.stored_count} written this run)"
        )
