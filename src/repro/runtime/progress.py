"""Live progress telemetry for distributed sweeps.

A multi-hour sweep coordinated through a work queue used to be a black box:
the only signals were worker log lines and the final result store.  This
module turns the queue's own bookkeeping into a periodic, machine-readable
:class:`ProgressSnapshot` — tasks pending/claimed/done/failed, per-shard
backlog, per-worker completion counts, overall and recent throughput, and an
ETA — without adding any new coordination state: everything is derived from
:meth:`~repro.runtime.workqueue.QueueTransport.stats` (directory counts on
the file queue, one locked read on the TCP server) plus the per-worker ack
counts both transports already record.

:class:`SweepProgress` is the reporter: it polls on a background thread every
``interval_s`` seconds (``RuntimeConfig.progress_interval_s`` on the
coordinator, ``--progress`` on ``python -m repro.runtime.worker``), hands
each snapshot to an optional callback (``ParallelExperimentRunner``'s
``progress_callback``), and keeps the history for post-hoc inspection.
``poll_once()`` is the same computation without the thread, for deterministic
use (and the coordinator's final end-of-sweep snapshot).
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.runtime.netqueue import QueueAuthError
from repro.runtime.workqueue import QueueStats, WorkerQueueTransport

#: What a progress poll may swallow (counted in ``stats_errors``): transport
#: failures (``OSError`` covers sockets, timeouts and filesystem scans) and
#: queue-protocol rejections (``ExperimentError``).  Genuine bugs — an
#: ``AttributeError`` from a refactor, a ``TypeError`` in a callback — must
#: propagate, not read as "queue idle"; :class:`QueueAuthError` is re-raised
#: explicitly because a mis-keyed worker has to fail loudly.
_POLL_ERRORS = (OSError, ExperimentError)

#: Interval used when a callback is installed but no interval was configured.
DEFAULT_PROGRESS_INTERVAL_S = 5.0


@dataclass(frozen=True)
class ProgressSnapshot:
    """One observation of a sweep's queue state, with derived rates.

    ``total`` is the number of tasks the observer expects the sweep to
    complete; ``None`` when unknown (a worker watching a foreign queue), in
    which case ``remaining`` and ``eta_s`` are ``None`` too.  Throughputs are
    completed tasks per second: ``throughput_per_s`` since the reporter
    started, ``recent_throughput_per_s`` since the previous snapshot (the ETA
    uses the recent rate when it is positive — it adapts to workers joining
    or leaving — and falls back to the overall rate).
    """

    sequence: int
    elapsed_s: float
    pending: int
    claimed: int
    done: int
    failed: int
    total: int | None
    throughput_per_s: float
    recent_throughput_per_s: float
    eta_s: float | None
    workers: dict[str, int] = field(default_factory=dict)
    shard_pending: tuple[tuple[int, int], ...] = ()
    stolen: int = 0
    #: Cumulative transport errors the reporter swallowed while polling
    #: (failed ``stats()``/``worker_done_counts()`` calls).  A nonzero count
    #: distinguishes "the queue is idle" from "the reporter cannot see the
    #: queue" — previously both looked identical.
    stats_errors: int = 0

    @property
    def remaining(self) -> int | None:
        return None if self.total is None else max(self.total - self.done, 0)

    def to_dict(self) -> dict:
        """JSON-ready form (the machine-readable surface; keys are stable)."""
        return {
            "sequence": self.sequence,
            "elapsed_s": round(self.elapsed_s, 3),
            "pending": self.pending,
            "claimed": self.claimed,
            "done": self.done,
            "failed": self.failed,
            "total": self.total,
            "remaining": self.remaining,
            "throughput_per_s": round(self.throughput_per_s, 4),
            "recent_throughput_per_s": round(self.recent_throughput_per_s, 4),
            "eta_s": None if self.eta_s is None else round(self.eta_s, 1),
            "workers": dict(sorted(self.workers.items())),
            "shard_pending": [list(pair) for pair in self.shard_pending],
            "stolen": self.stolen,
            "stats_errors": self.stats_errors,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def describe(self) -> str:
        """One human-readable line (the machine surface is ``to_dict``)."""
        if self.total is not None:
            head = f"[{self.done}/{self.total}]"
        else:
            head = f"[{self.done} done]"
        eta = "eta --" if self.eta_s is None else f"eta {self.eta_s:.0f}s"
        parts = [
            head,
            f"{self.pending} pending",
            f"{self.claimed} claimed",
            f"{self.failed} failed",
            f"{self.throughput_per_s:.2f} tasks/s",
            eta,
        ]
        if self.workers:
            busiest = ", ".join(f"{w}:{n}" for w, n in sorted(self.workers.items()))
            parts.append(f"workers {busiest}")
        if self.stolen:
            parts.append(f"{self.stolen} stolen")
        if self.stats_errors:
            parts.append(f"{self.stats_errors} stats errors")
        return " | ".join(parts)


class SweepProgress:
    """Periodic reporter over one queue transport.

    ``queue`` needs only the worker-side surface (``stats`` — and, when
    available, ``worker_done_counts``); ``stolen`` is an optional callable
    reporting how many tasks the coordinator's rebalance sweep has moved so
    far.  The polling thread never takes the sweep down: a poll that fails
    (e.g. the TCP server vanishing mid-shutdown) is skipped.
    """

    def __init__(
        self,
        queue: WorkerQueueTransport,
        total: int | None = None,
        interval_s: float = DEFAULT_PROGRESS_INTERVAL_S,
        callback: Callable[[ProgressSnapshot], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        stolen: Callable[[], int] | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ExperimentError("SweepProgress.interval_s must be positive")
        if total is not None and total < 0:
            raise ExperimentError("SweepProgress.total must be >= 0 (or None when unknown)")
        self.queue = queue
        self.total = total
        self.interval_s = float(interval_s)
        self.callback = callback
        self._clock = clock
        self._stolen = stolen
        self._lock = threading.Lock()
        self._started_at = clock()
        self._last_at = self._started_at
        self._last_done = 0
        self._poll_errors = 0
        self.snapshots: list[ProgressSnapshot] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def latest(self) -> ProgressSnapshot | None:
        with self._lock:
            return self.snapshots[-1] if self.snapshots else None

    def poll_once(self) -> ProgressSnapshot:
        """Take one snapshot now (raises if the queue is unreachable).

        Transport failures of the *secondary* reads (worker counts, stolen
        counter) degrade to empty values and are tallied into the snapshot's
        ``stats_errors``; anything else — an ``AttributeError`` from a
        refactor, a mis-keyed :class:`QueueAuthError` — propagates.
        """
        stats: QueueStats = self.queue.stats()
        workers: dict[str, int] = {}
        errors = 0
        counts = getattr(self.queue, "worker_done_counts", None)
        if counts is not None:
            try:
                workers = counts()
            except QueueAuthError:
                raise  # authentication failures must stay loud
            except _POLL_ERRORS:  # reachable stats but not counts: degrade, counted
                workers = {}
                errors += 1
        stolen = 0
        if self._stolen is not None:
            try:
                stolen = int(self._stolen())
            except _POLL_ERRORS:
                stolen = 0
                errors += 1
        now = self._clock()
        with self._lock:
            self._poll_errors += errors
            elapsed = max(now - self._started_at, 1e-9)
            overall = stats.done / elapsed
            window = max(now - self._last_at, 1e-9)
            delta = stats.done - self._last_done
            recent = overall if not self.snapshots else max(delta, 0) / window
            remaining = None if self.total is None else max(self.total - stats.done, 0)
            if remaining is None:
                eta = None
            elif remaining == 0:
                eta = 0.0
            else:
                rate = recent if recent > 0 else overall
                eta = remaining / rate if rate > 0 else None
            snapshot = ProgressSnapshot(
                sequence=len(self.snapshots),
                elapsed_s=elapsed,
                pending=stats.pending,
                claimed=stats.claimed,
                done=stats.done,
                failed=stats.failed,
                total=self.total,
                throughput_per_s=overall,
                recent_throughput_per_s=recent,
                eta_s=eta,
                workers=workers,
                shard_pending=stats.shard_pending,
                stolen=stolen,
                stats_errors=self._poll_errors,
            )
            self.snapshots.append(snapshot)
            self._last_at = now
            self._last_done = stats.done
        if self.callback is not None:
            self.callback(snapshot)
        return snapshot

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.poll_once()
            except QueueAuthError:
                raise  # mis-keyed secret: fail loudly, never read as idle
            except _POLL_ERRORS:
                # A *transport* failure (queue torn down mid-shutdown, a
                # transient socket error) must never kill the reporter — the
                # next interval tries again, and stop() ends the loop.  The
                # skipped poll is tallied so the next snapshot's
                # ``stats_errors`` reveals it; any other exception (a genuine
                # bug, an authentication rejection) propagates and takes the
                # thread down with a traceback instead of reading as idle.
                with self._lock:
                    self._poll_errors += 1
                continue

    def start(self) -> "SweepProgress":
        """Start the background polling thread (idempotent)."""
        with self._lock:
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="repro-sweep-progress", daemon=True
                )
                self._thread.start()
        return self

    def stop(self) -> None:
        """Stop polling and join the thread (idempotent; takes no final snapshot)."""
        self._stop.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10)
