"""A shared LRU cache for planner results.

Planning is deterministic for a given (query, configuration, hint set), so the
simulated DBMS can reuse a produced plan whenever the same request recurs —
which it constantly does: the hot-cache protocol plans every query once but
executes it three times per repetition, ablations sweep knobs around a fixed
workload, and LQO training loops re-plan the same training queries every
iteration.  Entries are keyed by content fingerprints
(:mod:`repro.runtime.fingerprint`) plus a planner-provided scope covering the
database identity and GEQO parameters, so any knob, hint, database or
enumeration change maps to a different entry — sharing one cache across
differently-configured planners is then safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import PostgresConfig
from repro.plans.hints import HintSet
from repro.runtime.fingerprint import plan_request_key
from repro.sql.binder import BoundQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner imports us)
    from repro.optimizer.planner import PlannerResult

#: Default number of cached planner results (a PlannerResult is small; the
#: dominant memory cost is the plan tree, a few KB per entry).
DEFAULT_CACHE_ENTRIES = 1024


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`PlanCache`.

    Counters are mutated only under the owning cache's lock; the stats object
    itself carries no synchronization.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class PlanCache:
    """Thread-safe LRU cache mapping plan-request fingerprints to planner results.

    A ``max_entries`` of ``0`` disables caching entirely (every lookup misses
    and nothing is stored), which keeps the planner code path uniform.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries < 0:
            raise ValueError("PlanCache max_entries must be >= 0")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, "PlannerResult"] = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ keying
    @staticmethod
    def key_for(
        query: BoundQuery,
        config: PostgresConfig,
        hints: HintSet,
        scope: str = "",
    ) -> tuple:
        """Full cache key of one planning request.

        ``scope`` disambiguates everything the request fingerprints cannot
        see — the planner passes a digest of its database identity and GEQO
        parameters, so one cache can serve many planners.
        """
        return (*plan_request_key(query, config, hints), scope)

    # ------------------------------------------------------------------ access
    def get(self, key: tuple) -> "PlannerResult | None":
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: tuple, result: "PlannerResult") -> None:
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    # ------------------------------------------------------------------ management
    def clear(self) -> None:
        """Drop every entry (hit/miss counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def describe(self) -> str:
        stats = self.stats
        return (
            f"PlanCache({len(self)}/{self.max_entries} entries, "
            f"{stats.hits} hits / {stats.misses} misses, "
            f"hit rate {stats.hit_rate:.1%}, {stats.evictions} evictions)"
        )
