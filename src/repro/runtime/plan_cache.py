"""A shared LRU cache for planner results.

Planning is deterministic for a given (query, configuration, hint set), so the
simulated DBMS can reuse a produced plan whenever the same request recurs —
which it constantly does: the hot-cache protocol plans every query once but
executes it three times per repetition, ablations sweep knobs around a fixed
workload, LQO training loops re-plan the same training queries every
iteration, and the plan-serving control plane (:mod:`repro.runtime.planserver`)
answers entire client streams out of one shared cache.  Entries are keyed by
content fingerprints (:mod:`repro.runtime.fingerprint`) plus a
planner-provided scope covering the database identity and GEQO parameters, so
any knob, hint, database or enumeration change maps to a different entry —
sharing one cache across differently-configured planners is then safe.

Long-lived sharing needs invalidation: a catalog or statistics refresh changes
what the *correct* plan is without changing any fingerprint.  The cache
therefore keeps a **generation counter** per scope (plus one global
generation) and embeds it in every key: :meth:`PlanCache.invalidate_scope`
bumps the counter, so every entry produced before the bump simply stops
matching — no entry is ever served across a generation boundary, and the
stale ones age out through normal LRU eviction (a scoped bump also purges
them eagerly).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import PostgresConfig
from repro.plans.hints import HintSet
from repro.runtime.fingerprint import plan_request_key
from repro.sql.binder import BoundQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner imports us)
    from repro.optimizer.planner import PlannerResult

#: Default number of cached planner results (a PlannerResult is small; the
#: dominant memory cost is the plan tree, a few KB per entry).
DEFAULT_CACHE_ENTRIES = 1024

#: Index of the scope component inside a full cache key (see ``key_for``).
_KEY_SCOPE_INDEX = 3


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`PlanCache`.

    Counters are mutated only under the owning cache's lock; the stats object
    itself carries no synchronization — read it through
    :meth:`PlanCache.stats_snapshot` (or :meth:`PlanCache.describe`) when the
    cache is shared across threads.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Generation bumps performed through ``invalidate_scope`` (each one
    #: retires every entry of the bumped scope — or of all scopes).
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.requests
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }

    def copy(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            invalidations=self.invalidations,
        )


class PlanCache:
    """Thread-safe LRU cache mapping plan-request fingerprints to planner results.

    A ``max_entries`` of ``0`` disables caching entirely (every lookup misses
    and nothing is stored), which keeps the planner code path uniform.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries < 0:
            raise ValueError("PlanCache max_entries must be >= 0")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, "PlannerResult"] = OrderedDict()
        #: Catalog/statistics generation per scope; missing scopes are at 0.
        self._scope_generations: dict[str, int] = {}
        #: Global generation: bumping it invalidates every scope at once.
        self._global_generation = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ keying
    def key_for(
        self,
        query: BoundQuery,
        config: PostgresConfig,
        hints: HintSet,
        scope: str = "",
    ) -> tuple:
        """Full cache key of one planning request.

        ``scope`` disambiguates everything the request fingerprints cannot
        see — the planner passes a digest of its database identity and GEQO
        parameters, so one cache can serve many planners.  The scope's
        current generation (see :meth:`invalidate_scope`) is embedded in the
        key, so a bump retires every earlier entry without touching them.
        """
        return (*plan_request_key(query, config, hints), scope, self.generation(scope))

    def generation(self, scope: str = "") -> int:
        """Current effective generation of ``scope`` (global + per-scope)."""
        with self._lock:
            return self._generation_locked(scope)

    def _generation_locked(self, scope: str) -> int:
        """Effective generation; caller holds the lock (or owns the cache)."""
        return self._global_generation + self._scope_generations.get(scope, 0)

    # ------------------------------------------------------------------ access
    def get(self, key: tuple) -> "PlannerResult | None":
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def peek(self, key: tuple) -> "PlannerResult | None":
        """Presence probe: like :meth:`get` but touches neither stats nor LRU.

        The serving layer uses this to route cache misses into its planning
        critical section without double-counting the request — exactly one
        :meth:`get` (inside the planner) accounts for it afterwards.
        """
        with self._lock:
            return self._entries.get(key)

    def put(self, key: tuple, result: "PlannerResult") -> None:
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    # ------------------------------------------------------------------ management
    def invalidate_scope(self, scope: str | None = None) -> int:
        """Bump a generation counter, retiring every entry produced before it.

        With a ``scope`` (a planner's cache-scope digest) only that scope's
        entries are invalidated — its keys stop matching and the stored
        entries are purged eagerly.  With ``None`` the *global* generation is
        bumped: every scope is invalidated at once (a catalog/statistics
        refresh the service cannot attribute to one database) and the whole
        entry map is dropped.  Returns the scope's new effective generation.
        Hit/miss counters survive, so a hit-rate drop after a bump stays
        visible in the stats.
        """
        with self._lock:
            self.stats.invalidations += 1
            if scope is None:
                self._global_generation += 1
                self._entries.clear()
                return self._global_generation
            self._scope_generations[scope] = self._scope_generations.get(scope, 0) + 1
            for key in [k for k in self._entries if k[_KEY_SCOPE_INDEX] == scope]:
                del self._entries[key]
            return self._generation_locked(scope)

    def clear(self) -> None:
        """Drop every entry (hit/miss counters and generations are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def stats_snapshot(self) -> CacheStats:
        """A consistent point-in-time copy of the counters (taken under the lock)."""
        with self._lock:
            return self.stats.copy()

    def describe(self) -> str:
        with self._lock:
            stats = self.stats.copy()
            entries = len(self._entries)
        return (
            f"PlanCache({entries}/{self.max_entries} entries, "
            f"{stats.hits} hits / {stats.misses} misses, "
            f"hit rate {stats.hit_rate:.1%}, {stats.evictions} evictions, "
            f"{stats.invalidations} invalidations)"
        )
