"""Client of the plan-serving control plane (:mod:`repro.runtime.planserver`).

:class:`PlanClient` speaks the one-frame-per-connection protocol of the
:class:`~repro.runtime.planserver.PlanServer` over the authenticated codec of
:mod:`repro.runtime.netqueue`: with a shared secret every frame is
HMAC-signed, responses are verified before unpickling, and a mis-keyed or
unconfigured client fails loudly with
:class:`~repro.runtime.netqueue.QueueAuthError` — never by silently planning
nothing.

Failure taxonomy, deliberately three-way:

* **Transient transport errors** (refused connection during a server restart,
  a dropped SYN) are retried with exponential backoff, like
  :class:`~repro.runtime.netqueue.NetWorkQueue`.
* **Admission-control rejections** raise :class:`repro.errors.PlanRejected`
  carrying the server's ``retry_after_s`` hint.  They are *not* retried
  internally by default — backpressure is the caller's signal to slow down,
  and hiding it would turn an overloaded server back into a silent stall.
  Pass ``reject_retries`` to opt into bounded client-side backoff instead.
* **Request errors** (unparseable SQL, unknown tables, invalid hints) raise
  :class:`repro.errors.PlanServiceError` immediately; retrying cannot help.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field

from repro.config import PostgresConfig
from repro.errors import ExperimentError, PlanRejected, PlanServiceError
from repro.plans.hints import HintSet, NO_HINTS
from repro.plans.physical import PlanNode
from repro.runtime.netqueue import (
    CLIENT_BACKOFF_S,
    CLIENT_RETRIES,
    CLIENT_TIMEOUT_S,
    QueueAuthError,
    recv_frame,
    resolve_queue_secret,
    send_frame,
)


@dataclass(frozen=True)
class ServedPlan:
    """One planned query as answered by the server.

    ``plan`` is byte-identical (under ``pickle.dumps``, after one
    serialization hop on both sides — this plan has already crossed the
    wire) to what a local :class:`~repro.optimizer.planner.Planner` produces
    for the same (query, config, hints) — the serving layer adds only
    metadata:
    ``cache_hit`` says whether the shared server cache answered,
    ``server_latency_ms`` is the server-side request latency, and
    ``generation`` is the cache generation the plan was served under (it
    changes when the server's catalog/statistics are invalidated).
    """

    plan: PlanNode
    strategy: str
    planning_time_ms: float
    estimated_cost: float
    estimated_rows: float
    cache_hit: bool
    server_latency_ms: float
    generation: int
    round_trip_ms: float = field(default=0.0, compare=False)


class PlanClient:
    """Blocking client; one request/response frame pair per connection."""

    def __init__(
        self,
        url: str,
        client_id: str = "",
        timeout_s: float = CLIENT_TIMEOUT_S,
        secret: str | bytes | None = None,
        retries: int = CLIENT_RETRIES,
        backoff_s: float = CLIENT_BACKOFF_S,
        reject_retries: int = 0,
    ) -> None:
        from repro.runtime.workqueue import parse_queue_url

        address = parse_queue_url(url)
        if address.scheme != "tcp":
            raise ExperimentError(f"PlanClient needs a tcp:// url, got {url!r}")
        if retries < 0 or reject_retries < 0:
            raise ExperimentError("PlanClient retry budgets must be >= 0")
        self.host, self.port = address.host, address.port
        self.client_id = client_id
        self.timeout_s = timeout_s
        self.secret = resolve_queue_secret(secret)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.reject_retries = int(reject_retries)

    # ------------------------------------------------------------------ transport
    def _request_once(self, request: dict) -> dict:
        with socket.create_connection((self.host, self.port), timeout=self.timeout_s) as sock:
            send_frame(sock, request, secret=self.secret)
            response = recv_frame(sock, secret=self.secret)
        if not isinstance(response, dict):
            raise PlanServiceError(
                f"plan server at {self.host}:{self.port} sent a malformed response"
            )
        if response.get("rejected"):
            raise PlanRejected(
                str(response.get("error", "plan server at capacity")),
                retry_after_s=float(response.get("retry_after_s", 0.05)),
            )
        if not response.get("ok"):
            raise PlanServiceError(
                f"plan server at {self.host}:{self.port} rejected "
                f"{request.get('op')!r}: {response.get('error', 'unknown error')}"
            )
        return response

    def _request(self, request: dict) -> dict:
        """One request, retrying transient transport failures (never auth).

        Backpressure rejections have their own (default-zero) budget,
        separate from the transport budget: a server that is alive-but-busy
        is a different situation from one that is unreachable.
        """
        delay = self.backoff_s
        transports_left = self.retries
        rejects_left = self.reject_retries
        while True:
            try:
                return self._request_once(request)
            except QueueAuthError:
                raise  # mis-keyed secret: retrying cannot help, fail loudly
            except PlanRejected as exc:
                if rejects_left <= 0:
                    raise
                rejects_left -= 1
                time.sleep(exc.retry_after_s)
            except OSError:
                if transports_left <= 0:
                    raise
                transports_left -= 1
                time.sleep(delay)
                delay *= 2

    # ------------------------------------------------------------------ operations
    def plan(
        self,
        sql: str,
        hints: HintSet = NO_HINTS,
        config: PostgresConfig | None = None,
    ) -> ServedPlan:
        """Plan ``sql`` on the server; see :class:`ServedPlan` for guarantees."""
        request: dict = {"op": "plan", "sql": sql, "hints": hints}
        if config is not None:
            request["config"] = config
        if self.client_id:
            request["client"] = self.client_id
        started = time.perf_counter()
        response = self._request(request)
        round_trip_ms = (time.perf_counter() - started) * 1000.0
        return ServedPlan(
            plan=response["plan"],
            strategy=str(response["strategy"]),
            planning_time_ms=float(response["planning_time_ms"]),
            estimated_cost=float(response["estimated_cost"]),
            estimated_rows=float(response["estimated_rows"]),
            cache_hit=bool(response["cache_hit"]),
            server_latency_ms=float(response["server_latency_ms"]),
            generation=int(response["generation"]),
            round_trip_ms=round_trip_ms,
        )

    def stats(self) -> dict:
        """The server's :class:`~repro.runtime.planserver.PlanServerStats` dict."""
        return self._request({"op": "stats"})["stats"]

    def invalidate(self) -> dict[str, int]:
        """Bump every served scope's generation; returns the new generations."""
        generations = self._request({"op": "invalidate"})["generations"]
        return {str(scope): int(gen) for scope, gen in generations.items()}

    def ping(self) -> str:
        """Round-trip liveness probe; returns the served database's name."""
        return str(self._request({"op": "ping"})["database"])

    def describe(self) -> str:
        return f"PlanClient(tcp://{self.host}:{self.port}, client_id={self.client_id!r})"
