"""File-based work queue for multi-host experiment fan-out.

The coordinator and any number of workers share one queue directory on a
common filesystem (local disk for same-host pools, NFS/CephFS/... for
multi-host sweeps).  All coordination happens through atomic ``os.rename``:

* ``pending/<task_id>.task`` — a pickled :class:`~repro.runtime.parallel.SpecTaskPayload`,
  enqueued by the coordinator via write-to-temp + rename.
* ``claimed/<task_id>.task`` — a worker claims a task by renaming it out of
  ``pending/``; rename is atomic, so exactly one worker wins a task no matter
  how many race on it.  The claimed file's mtime is the *lease heartbeat*:
  the winning worker touches it on claim and periodically while executing.
* ``done/<task_id>.json`` / ``failed/<task_id>.json`` — ack markers written by
  the worker after executing (results themselves go into the shared result
  store, not the queue).
* ``stop`` — sentinel the coordinator drops when the sweep is complete;
  workers exit once they find no work and the sentinel is present.

A worker that dies (SIGKILL, OOM, host loss) simply stops touching its
claimed files; once a claim's mtime is older than the lease timeout,
:meth:`WorkQueue.requeue_expired` renames it back into ``pending/`` and
another worker picks it up.  Lease ages are measured against the *shared
filesystem's* clock (touch-and-stat of a probe file in the queue root), never
the coordinator's wall clock: claim mtimes are stamped by the filesystem, so
comparing them against a possibly-skewed local ``time.time()`` would re-queue
live claims (coordinator clock ahead) or never expire dead ones (behind).
Task execution is idempotent (results are persisted with atomic writes under
content-addressed names), so the rare double execution after a lease expiry
is harmless.

This module also defines the transport-agnostic queue API: the
:class:`QueueTransport` protocol (coordinator + worker surface) that this
file-based queue and the TCP transport in :mod:`repro.runtime.netqueue` both
implement, and the :class:`ResultUpload` frame a transport that carries
results back to the coordinator attaches to its acks.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.errors import ExperimentError
from repro.runtime.result_store import TaskKey, atomic_write_bytes

#: Subdirectory names of the queue layout.
PENDING, CLAIMED, DONE, FAILED = "pending", "claimed", "done", "failed"

#: Stop sentinel file name.
STOP_SENTINEL = "stop"

#: Probe file the lease-expiry sweep touches to read the filesystem's clock.
CLOCK_PROBE = ".clock-probe"

_TASK_ID_RE = re.compile(r"^[A-Za-z0-9._-]+$")


@dataclass(frozen=True)
class TaskClaim:
    """A successfully claimed task: its id, payload and (file transport only)
    the claimed-file path whose mtime is the lease heartbeat."""

    task_id: str
    payload: object
    path: Path | None = None


@dataclass(frozen=True)
class ResultUpload:
    """A finished task's result, pushed back to the coordinator with the ack.

    Only transports whose workers share no filesystem with the coordinator
    (``wants_results`` is true, i.e. the TCP transport) carry these; file-queue
    workers write the shared result store directly and ack without one.
    """

    key: TaskKey
    fingerprint: str | None
    result: dict


@dataclass(frozen=True)
class QueueAddress:
    """Parsed form of a queue url (``RuntimeConfig.queue_url``)."""

    scheme: str  #: ``"file"`` or ``"tcp"``
    path: str | None = None
    host: str | None = None
    port: int | None = None


def parse_queue_url(url: str | os.PathLike) -> QueueAddress:
    """Parse ``file:///dir``, ``tcp://host:port`` or a bare directory path."""
    text = str(url)
    if text.startswith("tcp://"):
        host, sep, port_text = text[len("tcp://"):].rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            port = -1
        if not sep or not host or not 0 <= port <= 65535:
            raise ExperimentError(
                f"queue url {text!r} is not of the form tcp://<host>:<port> "
                "(port 0 binds an ephemeral port on the coordinator)"
            )
        return QueueAddress(scheme="tcp", host=host, port=port)
    if text.startswith("file://"):
        rest = text[len("file://"):]
        if rest.startswith("/"):
            path = rest  # file:///abs/dir — empty authority
        else:
            # file://<authority>/<path>: only the local host is meaningful; a
            # remote authority silently treated as a relative path would point
            # the coordinator at the wrong local directory.
            authority, sep, tail = rest.partition("/")
            if authority != "localhost" or not sep:
                raise ExperimentError(
                    f"queue url {text!r} names authority {authority!r}; file:// queues "
                    "are local — use file:///abs/dir (three slashes) or file://localhost/abs/dir"
                )
            path = "/" + tail
        if not path.rstrip("/"):
            raise ExperimentError(f"queue url {text!r} names no directory")
        return QueueAddress(scheme="file", path=path)
    if "://" in text:
        scheme = text.split("://", 1)[0]
        raise ExperimentError(
            f"unsupported queue url scheme {scheme!r} in {text!r}; expected file:// or tcp://"
        )
    return QueueAddress(scheme="file", path=text)


@runtime_checkable
class WorkerQueueTransport(Protocol):
    """The worker-side queue surface: what the claim-execute-ack loop needs."""

    #: Whether acks must carry a :class:`ResultUpload` (the transport delivers
    #: results to the coordinator) instead of the worker writing a shared store.
    wants_results: bool

    def claim(self, worker_id: str) -> TaskClaim | None: ...

    def renew(self, claim: TaskClaim) -> None: ...

    def ack(self, claim: TaskClaim, worker_id: str, result: ResultUpload | None = None) -> None: ...

    def fail(self, claim: TaskClaim, worker_id: str, error: str) -> None: ...

    def stop_requested(self) -> bool: ...


@runtime_checkable
class QueueTransport(WorkerQueueTransport, Protocol):
    """The full (coordinator + worker) surface of a work-queue transport."""

    def enqueue(self, task_id: str, payload: object) -> object: ...

    def requeue_expired(self) -> list[str]: ...

    def discard_failure(self, task_id: str) -> bool: ...

    def reset(self) -> int: ...

    def write_stop(self) -> None: ...

    def clear_stop(self) -> None: ...

    def done_ids(self) -> set[str]: ...

    def failed_tasks(self) -> dict[str, str]: ...

    def has_live_claims(self) -> bool: ...

    def stats(self) -> "QueueStats": ...

    def close(self) -> None: ...


@dataclass(frozen=True)
class QueueStats:
    """Snapshot of the queue state (counts racy by nature, exact per directory)."""

    pending: int
    claimed: int
    done: int
    failed: int

    def describe(self) -> str:
        return (
            f"{self.pending} pending, {self.claimed} claimed, "
            f"{self.done} done, {self.failed} failed"
        )


class WorkQueue:
    """Coordinator/worker handle over one shared queue directory."""

    #: File-queue workers persist results into the shared store themselves.
    wants_results = False

    def __init__(self, root: str | os.PathLike, lease_timeout_s: float = 60.0) -> None:
        if lease_timeout_s <= 0:
            raise ExperimentError("WorkQueue.lease_timeout_s must be positive")
        self.root = Path(root)
        self.lease_timeout_s = float(lease_timeout_s)
        for name in (PENDING, CLAIMED, DONE, FAILED):
            (self.root / name).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ paths
    def _dir(self, name: str) -> Path:
        return self.root / name

    @property
    def stop_path(self) -> Path:
        return self.root / STOP_SENTINEL

    def filesystem_now(self) -> float:
        """Now according to the clock that stamps claim mtimes.

        Touch-and-stat a probe file in the queue root: on a network filesystem
        both the probe's and the claims' mtimes are assigned by the same
        server, so lease ages computed against this value are immune to clock
        skew between the coordinator and the filesystem (or the worker hosts).
        Comparing claim mtimes against the coordinator's ``time.time()``
        instead would spuriously re-queue live claims whenever the coordinator
        ran ahead by more than the lease timeout — or never expire dead ones
        when it ran behind.
        """
        probe = self.root / CLOCK_PROBE
        try:
            probe.touch()
            return probe.stat().st_mtime
        except OSError:  # pragma: no cover - probe unwritable: degrade gracefully
            return time.time()

    # ------------------------------------------------------------------ coordinator
    def enqueue(self, task_id: str, payload: object) -> Path:
        """Make one task claimable (atomic: a worker never sees a partial file)."""
        if not _TASK_ID_RE.match(task_id):
            raise ExperimentError(f"task id {task_id!r} is not filesystem-safe")
        target = self._dir(PENDING) / f"{task_id}.task"
        atomic_write_bytes(target, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        return target

    def requeue_expired(self) -> list[str]:
        """Re-queue every claim whose lease heartbeat has gone stale.

        A live worker touches its claim more often than the lease timeout;
        a claim that stopped being touched belongs to a dead worker and goes
        back to ``pending/`` for someone else.
        """
        now = self.filesystem_now()
        requeued: list[str] = []
        for path in sorted(self._dir(CLAIMED).glob("*.task")):
            try:
                age = now - path.stat().st_mtime
            except FileNotFoundError:  # acked or requeued under us
                continue
            if age <= self.lease_timeout_s:
                continue
            try:
                os.rename(path, self._dir(PENDING) / path.name)
            except FileNotFoundError:
                continue
            requeued.append(path.stem)
        return requeued

    def reset(self) -> int:
        """Drop every task file, ack marker and the stop sentinel.

        A coordinator owns its queue directory: calling this before enqueueing
        reconciles a directory left behind by a crashed earlier sweep —
        orphaned pending/claimed tasks would otherwise be drained (and
        re-executed) by the new sweep's workers, and done/failed markers would
        accumulate without bound.  ``.tmp`` orphans of crashed atomic writes
        are dropped too — nothing else removes them, so a reused queue
        directory would otherwise collect them forever.  Returns the number of
        files removed.
        """
        removed = 0
        for kind, pattern in ((PENDING, "*.task"), (CLAIMED, "*.task"),
                              (DONE, "*.json"), (FAILED, "*.json"),
                              (PENDING, "*.tmp"), (CLAIMED, "*.tmp"),
                              (DONE, "*.tmp"), (FAILED, "*.tmp")):
            for path in self._dir(kind).glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:  # pragma: no cover - racing leftover worker
                    continue
        self.clear_stop()
        return removed

    def write_stop(self) -> None:
        self.stop_path.touch()

    def clear_stop(self) -> None:
        self.stop_path.unlink(missing_ok=True)

    def stop_requested(self) -> bool:
        return self.stop_path.is_file()

    # ------------------------------------------------------------------ worker
    def claim(self, worker_id: str) -> TaskClaim | None:
        """Atomically claim one pending task, or ``None`` when nothing is claimable.

        The rename is the claim: losing the race on one candidate just moves
        on to the next.  A claim whose payload cannot be unpickled is marked
        failed instead of being executed.
        """
        for candidate in sorted(self._dir(PENDING).glob("*.task")):
            target = self._dir(CLAIMED) / candidate.name
            try:
                os.rename(candidate, target)
            except FileNotFoundError:
                continue  # another worker won this one; any other OSError is a
                # real filesystem problem and must surface, not hang the sweep
            try:
                os.utime(target)  # start the lease heartbeat at claim time
                payload = pickle.loads(target.read_bytes())
            except FileNotFoundError:
                continue  # requeued out from under us before we could start
            except Exception as exc:  # corrupt payload: never executable
                self._write_marker(FAILED, target.stem, worker_id, error=f"unreadable payload: {exc}")
                target.unlink(missing_ok=True)
                continue
            return TaskClaim(task_id=target.stem, path=target, payload=payload)
        return None

    def renew(self, claim: TaskClaim) -> None:
        """Refresh the claim's lease heartbeat (no-op if the claim was requeued)."""
        try:
            os.utime(claim.path)
        except FileNotFoundError:
            pass

    def ack(self, claim: TaskClaim, worker_id: str, result: ResultUpload | None = None) -> None:
        """Mark a claim as completed and release it.

        ``result`` is accepted for transport-protocol uniformity and ignored:
        file-queue workers have already written the shared result store.
        """
        self._write_marker(DONE, claim.task_id, worker_id)
        if claim.path is not None:
            claim.path.unlink(missing_ok=True)

    def fail(self, claim: TaskClaim, worker_id: str, error: str) -> None:
        """Mark a claim as failed (re-queueing is the coordinator's call: it
        retries a failed task up to ``RuntimeConfig.task_retries`` times)."""
        self._write_marker(FAILED, claim.task_id, worker_id, error=error)
        if claim.path is not None:
            claim.path.unlink(missing_ok=True)

    def discard_failure(self, task_id: str) -> bool:
        """Drop a task's failure marker (the coordinator is about to retry it)."""
        try:
            (self._dir(FAILED) / f"{task_id}.json").unlink()
            return True
        except FileNotFoundError:
            return False

    def _write_marker(self, kind: str, task_id: str, worker_id: str, error: str | None = None) -> None:
        marker = {"task_id": task_id, "worker": worker_id, "status": kind}
        if error is not None:
            marker["error"] = error
        target = self._dir(kind) / f"{task_id}.json"
        atomic_write_bytes(target, json.dumps(marker, indent=1, sort_keys=True).encode("utf-8"))

    # ------------------------------------------------------------------ inspection
    def pending_ids(self) -> set[str]:
        return {path.stem for path in self._dir(PENDING).glob("*.task")}

    def claimed_ids(self) -> set[str]:
        return {path.stem for path in self._dir(CLAIMED).glob("*.task")}

    def done_ids(self) -> set[str]:
        return {path.stem for path in self._dir(DONE).glob("*.json")}

    def failed_tasks(self) -> dict[str, str]:
        """Failed task ids mapped to their error messages."""
        out: dict[str, str] = {}
        for path in sorted(self._dir(FAILED).glob("*.json")):
            try:
                marker = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                marker = {}
            out[path.stem] = str(marker.get("error", "unknown error"))
        return out

    def has_live_claims(self) -> bool:
        """Whether any claim's lease is still being heart-beaten."""
        now = self.filesystem_now()
        for path in self._dir(CLAIMED).glob("*.task"):
            try:
                if now - path.stat().st_mtime <= self.lease_timeout_s:
                    return True
            except FileNotFoundError:
                continue
        return False

    def stats(self) -> QueueStats:
        """Directory-entry counts only: the coordinator polls this every few
        hundred milliseconds, so it must never read or parse marker contents
        (``failed_tasks`` does, and stays reserved for error reporting)."""
        return QueueStats(
            pending=sum(1 for _ in self._dir(PENDING).glob("*.task")),
            claimed=sum(1 for _ in self._dir(CLAIMED).glob("*.task")),
            done=sum(1 for _ in self._dir(DONE).glob("*.json")),
            failed=sum(1 for _ in self._dir(FAILED).glob("*.json")),
        )

    def close(self) -> None:
        """Nothing to release: the file transport holds no connections."""

    def describe(self) -> str:
        return f"WorkQueue({self.root}, {self.stats().describe()})"
