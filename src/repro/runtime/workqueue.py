"""File-based work queue for multi-host experiment fan-out.

The coordinator and any number of workers share one queue directory on a
common filesystem (local disk for same-host pools, NFS/CephFS/... for
multi-host sweeps).  All coordination happens through atomic ``os.rename``:

* ``pending/<task_id>.task`` — a pickled :class:`~repro.runtime.parallel.SpecTaskPayload`,
  enqueued by the coordinator via write-to-temp + rename.
* ``claimed/<task_id>.task`` — a worker claims a task by renaming it out of
  ``pending/``; rename is atomic, so exactly one worker wins a task no matter
  how many race on it.  The claimed file's mtime is the *lease heartbeat*:
  the winning worker touches it on claim and periodically while executing.
* ``done/<task_id>.json`` / ``failed/<task_id>.json`` — ack markers written by
  the worker after executing (results themselves go into the shared result
  store, not the queue).
* ``stop`` — sentinel the coordinator drops when the sweep is complete;
  workers exit once they find no work and the sentinel is present.

A worker that dies (SIGKILL, OOM, host loss) simply stops touching its
claimed files; once a claim's mtime is older than the lease timeout,
:meth:`WorkQueue.requeue_expired` renames it back into ``pending/`` and
another worker picks it up.  Task execution is idempotent (results are
persisted with atomic writes under content-addressed names), so the rare
double execution after a lease expiry is harmless.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ExperimentError
from repro.runtime.result_store import atomic_write_bytes

#: Subdirectory names of the queue layout.
PENDING, CLAIMED, DONE, FAILED = "pending", "claimed", "done", "failed"

#: Stop sentinel file name.
STOP_SENTINEL = "stop"

_TASK_ID_RE = re.compile(r"^[A-Za-z0-9._-]+$")


@dataclass(frozen=True)
class TaskClaim:
    """A successfully claimed task: its id, claimed-file path and payload."""

    task_id: str
    path: Path
    payload: object


@dataclass(frozen=True)
class QueueStats:
    """Snapshot of the queue state (counts racy by nature, exact per directory)."""

    pending: int
    claimed: int
    done: int
    failed: int

    def describe(self) -> str:
        return (
            f"{self.pending} pending, {self.claimed} claimed, "
            f"{self.done} done, {self.failed} failed"
        )


class WorkQueue:
    """Coordinator/worker handle over one shared queue directory."""

    def __init__(self, root: str | os.PathLike, lease_timeout_s: float = 60.0) -> None:
        if lease_timeout_s <= 0:
            raise ExperimentError("WorkQueue.lease_timeout_s must be positive")
        self.root = Path(root)
        self.lease_timeout_s = float(lease_timeout_s)
        for name in (PENDING, CLAIMED, DONE, FAILED):
            (self.root / name).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ paths
    def _dir(self, name: str) -> Path:
        return self.root / name

    @property
    def stop_path(self) -> Path:
        return self.root / STOP_SENTINEL

    # ------------------------------------------------------------------ coordinator
    def enqueue(self, task_id: str, payload: object) -> Path:
        """Make one task claimable (atomic: a worker never sees a partial file)."""
        if not _TASK_ID_RE.match(task_id):
            raise ExperimentError(f"task id {task_id!r} is not filesystem-safe")
        target = self._dir(PENDING) / f"{task_id}.task"
        atomic_write_bytes(target, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        return target

    def requeue_expired(self) -> list[str]:
        """Re-queue every claim whose lease heartbeat has gone stale.

        A live worker touches its claim more often than the lease timeout;
        a claim that stopped being touched belongs to a dead worker and goes
        back to ``pending/`` for someone else.
        """
        now = time.time()
        requeued: list[str] = []
        for path in sorted(self._dir(CLAIMED).glob("*.task")):
            try:
                age = now - path.stat().st_mtime
            except FileNotFoundError:  # acked or requeued under us
                continue
            if age <= self.lease_timeout_s:
                continue
            try:
                os.rename(path, self._dir(PENDING) / path.name)
            except FileNotFoundError:
                continue
            requeued.append(path.stem)
        return requeued

    def reset(self) -> int:
        """Drop every task file, ack marker and the stop sentinel.

        A coordinator owns its queue directory: calling this before enqueueing
        reconciles a directory left behind by a crashed earlier sweep —
        orphaned pending/claimed tasks would otherwise be drained (and
        re-executed) by the new sweep's workers, and done/failed markers would
        accumulate without bound.  Returns the number of files removed.
        """
        removed = 0
        for kind, pattern in ((PENDING, "*.task"), (CLAIMED, "*.task"),
                              (DONE, "*.json"), (FAILED, "*.json")):
            for path in self._dir(kind).glob(pattern):
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:  # pragma: no cover - racing leftover worker
                    continue
        self.clear_stop()
        return removed

    def write_stop(self) -> None:
        self.stop_path.touch()

    def clear_stop(self) -> None:
        self.stop_path.unlink(missing_ok=True)

    def stop_requested(self) -> bool:
        return self.stop_path.is_file()

    # ------------------------------------------------------------------ worker
    def claim(self, worker_id: str) -> TaskClaim | None:
        """Atomically claim one pending task, or ``None`` when nothing is claimable.

        The rename is the claim: losing the race on one candidate just moves
        on to the next.  A claim whose payload cannot be unpickled is marked
        failed instead of being executed.
        """
        for candidate in sorted(self._dir(PENDING).glob("*.task")):
            target = self._dir(CLAIMED) / candidate.name
            try:
                os.rename(candidate, target)
            except FileNotFoundError:
                continue  # another worker won this one; any other OSError is a
                # real filesystem problem and must surface, not hang the sweep
            try:
                os.utime(target)  # start the lease heartbeat at claim time
                payload = pickle.loads(target.read_bytes())
            except FileNotFoundError:
                continue  # requeued out from under us before we could start
            except Exception as exc:  # corrupt payload: never executable
                self._write_marker(FAILED, target.stem, worker_id, error=f"unreadable payload: {exc}")
                target.unlink(missing_ok=True)
                continue
            return TaskClaim(task_id=target.stem, path=target, payload=payload)
        return None

    def renew(self, claim: TaskClaim) -> None:
        """Refresh the claim's lease heartbeat (no-op if the claim was requeued)."""
        try:
            os.utime(claim.path)
        except FileNotFoundError:
            pass

    def ack(self, claim: TaskClaim, worker_id: str) -> None:
        """Mark a claim as completed and release it."""
        self._write_marker(DONE, claim.task_id, worker_id)
        claim.path.unlink(missing_ok=True)

    def fail(self, claim: TaskClaim, worker_id: str, error: str) -> None:
        """Mark a claim as failed (it is *not* re-queued: the error is deterministic
        until someone changes the code or inputs, unlike a dead worker's lease)."""
        self._write_marker(FAILED, claim.task_id, worker_id, error=error)
        claim.path.unlink(missing_ok=True)

    def _write_marker(self, kind: str, task_id: str, worker_id: str, error: str | None = None) -> None:
        marker = {"task_id": task_id, "worker": worker_id, "status": kind}
        if error is not None:
            marker["error"] = error
        target = self._dir(kind) / f"{task_id}.json"
        atomic_write_bytes(target, json.dumps(marker, indent=1, sort_keys=True).encode("utf-8"))

    # ------------------------------------------------------------------ inspection
    def pending_ids(self) -> set[str]:
        return {path.stem for path in self._dir(PENDING).glob("*.task")}

    def claimed_ids(self) -> set[str]:
        return {path.stem for path in self._dir(CLAIMED).glob("*.task")}

    def done_ids(self) -> set[str]:
        return {path.stem for path in self._dir(DONE).glob("*.json")}

    def failed_tasks(self) -> dict[str, str]:
        """Failed task ids mapped to their error messages."""
        out: dict[str, str] = {}
        for path in sorted(self._dir(FAILED).glob("*.json")):
            try:
                marker = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                marker = {}
            out[path.stem] = str(marker.get("error", "unknown error"))
        return out

    def has_live_claims(self) -> bool:
        """Whether any claim's lease is still being heart-beaten."""
        now = time.time()
        for path in self._dir(CLAIMED).glob("*.task"):
            try:
                if now - path.stat().st_mtime <= self.lease_timeout_s:
                    return True
            except FileNotFoundError:
                continue
        return False

    def stats(self) -> QueueStats:
        return QueueStats(
            pending=len(self.pending_ids()),
            claimed=len(self.claimed_ids()),
            done=len(self.done_ids()),
            failed=len(self.failed_tasks()),
        )

    def describe(self) -> str:
        return f"WorkQueue({self.root}, {self.stats().describe()})"
