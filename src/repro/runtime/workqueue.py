"""File-based work queue for multi-host experiment fan-out.

The coordinator and any number of workers share one queue directory on a
common filesystem (local disk for same-host pools, NFS/CephFS/... for
multi-host sweeps).  All coordination happens through atomic ``os.rename``:

* ``pending/<task_id>.task`` — a pickled :class:`~repro.runtime.parallel.SpecTaskPayload`,
  enqueued by the coordinator via write-to-temp + rename.
* ``claimed/<task_id>.task`` — a worker claims a task by renaming it out of
  ``pending/``; rename is atomic, so exactly one worker wins a task no matter
  how many race on it.  The claimed file's mtime is the *lease heartbeat*:
  the winning worker touches it on claim and periodically while executing.
* ``done/<task_id>.json`` / ``failed/<task_id>.json`` — ack markers written by
  the worker after executing (results themselves go into the shared result
  store, not the queue).
* ``stop`` — sentinel the coordinator drops when the sweep is complete;
  workers exit once they find no work and the sentinel is present.

A worker that dies (SIGKILL, OOM, host loss) simply stops touching its
claimed files; once a claim's mtime is older than the lease timeout,
:meth:`WorkQueue.requeue_expired` renames it back into ``pending/`` and
another worker picks it up.  Lease ages are measured against the *shared
filesystem's* clock (touch-and-stat of a probe file in the queue root), never
the coordinator's wall clock: claim mtimes are stamped by the filesystem, so
comparing them against a possibly-skewed local ``time.time()`` would re-queue
live claims (coordinator clock ahead) or never expire dead ones (behind).
Task execution is idempotent (results are persisted with atomic writes under
content-addressed names), so the rare double execution after a lease expiry
is harmless.

**Shard affinity and work stealing.**  A queue opened with ``shard_count > 0``
partitions ``pending/`` into ``pending/shard-XX/`` subdirectories; the
coordinator enqueues each task into the shard its result routes to
(:meth:`~repro.runtime.result_store.TaskKey.shard_index`), and a worker
started with a preferred shard claims from that subdirectory first, falling
back to the shared root pool (``pending/*.task``, where expired leases are
re-queued).  A preferred-shard worker that finds *nothing* claimable touches a
``hungry/shard-XX`` marker; the coordinator's :meth:`WorkQueue.rebalance`
sweep reads fresh markers and **steals** pending tasks for the starving shard
from the fullest other shard — an atomic rename within ``pending/``, so the
exactly-once claim semantics (one rename winner per task) are untouched, and
because task results are deterministic in the task identity, a stolen sweep
stays byte-identical to a serial run.  Workers with no preferred shard (the
default for hand-started ``python -m repro.runtime.worker``) scan every shard
and need no stealing.

This module also defines the transport-agnostic queue API: the
:class:`QueueTransport` protocol (coordinator + worker surface) that this
file-based queue and the TCP transport in :mod:`repro.runtime.netqueue` both
implement, and the :class:`ResultUpload` frame a transport that carries
results back to the coordinator attaches to its acks.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.errors import ExperimentError
from repro.runtime.result_store import TaskKey, atomic_write_bytes

#: Subdirectory names of the queue layout.
PENDING, CLAIMED, DONE, FAILED = "pending", "claimed", "done", "failed"

#: Directory of per-shard starvation markers (work-stealing signals).
HUNGRY = "hungry"

#: Stop sentinel file name.
STOP_SENTINEL = "stop"

#: Probe file the lease-expiry sweep touches to read the filesystem's clock.
CLOCK_PROBE = ".clock-probe"

#: How long a ``hungry/shard-XX`` marker counts as a live starvation signal.
#: Stale markers (a worker that moved on or died) must not keep attracting
#: stolen work into a shard nobody drains.
HUNGRY_TTL_S = 30.0

_TASK_ID_RE = re.compile(r"^[A-Za-z0-9._-]+$")
_SHARD_DIR_RE = re.compile(r"^shard-(\d+)$")


def shard_dir_name(shard: int) -> str:
    """Directory name of one pending shard (mirrors the result-store layout)."""
    return f"shard-{shard:02d}"


@dataclass(frozen=True)
class TaskClaim:
    """A successfully claimed task: its id, payload and (file transport only)
    the claimed-file path whose mtime is the lease heartbeat."""

    task_id: str
    payload: object
    path: Path | None = None


@dataclass(frozen=True)
class ResultUpload:
    """A finished task's result, pushed back to the coordinator with the ack.

    Only transports whose workers share no filesystem with the coordinator
    (``wants_results`` is true, i.e. the TCP transport) carry these; file-queue
    workers write the shared result store directly and ack without one.
    """

    key: TaskKey
    fingerprint: str | None
    result: dict


@dataclass(frozen=True)
class QueueAddress:
    """Parsed form of a queue url (``RuntimeConfig.queue_url``)."""

    scheme: str  #: ``"file"`` or ``"tcp"``
    path: str | None = None
    host: str | None = None
    port: int | None = None


def parse_queue_url(url: str | os.PathLike) -> QueueAddress:
    """Parse ``file:///dir``, ``tcp://host:port`` or a bare directory path."""
    text = str(url)
    if text.startswith("tcp://"):
        host, sep, port_text = text[len("tcp://"):].rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            port = -1
        if not sep or not host or not 0 <= port <= 65535:
            raise ExperimentError(
                f"queue url {text!r} is not of the form tcp://<host>:<port> "
                "(port 0 binds an ephemeral port on the coordinator)"
            )
        return QueueAddress(scheme="tcp", host=host, port=port)
    if text.startswith("file://"):
        rest = text[len("file://"):]
        if rest.startswith("/"):
            path = rest  # file:///abs/dir — empty authority
        else:
            # file://<authority>/<path>: only the local host is meaningful; a
            # remote authority silently treated as a relative path would point
            # the coordinator at the wrong local directory.
            authority, sep, tail = rest.partition("/")
            if authority != "localhost" or not sep:
                raise ExperimentError(
                    f"queue url {text!r} names authority {authority!r}; file:// queues "
                    "are local — use file:///abs/dir (three slashes) or file://localhost/abs/dir"
                )
            path = "/" + tail
        if not path.rstrip("/"):
            raise ExperimentError(f"queue url {text!r} names no directory")
        return QueueAddress(scheme="file", path=path)
    if "://" in text:
        scheme = text.split("://", 1)[0]
        raise ExperimentError(
            f"unsupported queue url scheme {scheme!r} in {text!r}; expected file:// or tcp://"
        )
    return QueueAddress(scheme="file", path=text)


@runtime_checkable
class WorkerQueueTransport(Protocol):
    """The worker-side queue surface: what the claim-execute-ack loop needs."""

    #: Whether acks must carry a :class:`ResultUpload` (the transport delivers
    #: results to the coordinator) instead of the worker writing a shared store.
    wants_results: bool

    def claim(self, worker_id: str, shard: int | None = None) -> TaskClaim | None: ...

    def renew(self, claim: TaskClaim) -> None: ...

    def ack(self, claim: TaskClaim, worker_id: str, result: ResultUpload | None = None) -> None: ...

    def fail(self, claim: TaskClaim, worker_id: str, error: str) -> None: ...

    def stop_requested(self) -> bool: ...


@runtime_checkable
class QueueTransport(WorkerQueueTransport, Protocol):
    """The full (coordinator + worker) surface of a work-queue transport."""

    def enqueue(self, task_id: str, payload: object, shard: int | None = None) -> object: ...

    def requeue_expired(self) -> list[str]: ...

    def rebalance(self) -> list["StolenTask"]: ...

    def worker_done_counts(self) -> dict[str, int]: ...

    def discard_failure(self, task_id: str) -> bool: ...

    def reset(self) -> int: ...

    def write_stop(self) -> None: ...

    def clear_stop(self) -> None: ...

    def done_ids(self) -> set[str]: ...

    def failed_tasks(self) -> dict[str, str]: ...

    def has_live_claims(self) -> bool: ...

    def stats(self) -> "QueueStats": ...

    def close(self) -> None: ...


@dataclass(frozen=True)
class StolenTask:
    """One pending task the coordinator's rebalance sweep moved between shards.

    Steals only ever move between shard partitions: the shared root pool is
    claimable by every worker already, so nothing is stolen out of (or into)
    it on either transport.
    """

    task_id: str
    from_shard: int
    to_shard: int


def plan_steal(candidates: dict[int, list[str]]) -> tuple[int, list[str]] | None:
    """The stealing policy, shared by both transports: pick the victim tasks
    one hungry shard should receive.

    ``candidates`` maps each *other* shard to its sorted pending task names.
    Returns ``(source shard, names to move)`` — the fullest shard (lowest
    index on ties) gives up the back half (rounded up) of its sorted order,
    furthest from the names its own worker claims next — or ``None`` when
    nothing is stealable.  Pure decision logic: the per-transport mechanics
    (atomic renames vs. locked dict moves) stay with the callers, so the two
    implementations cannot drift apart on policy.
    """
    source = max(candidates, key=lambda shard: (len(candidates[shard]), -shard), default=None)
    if source is None or not candidates[source]:
        return None
    names = candidates[source]
    return source, names[len(names) // 2:]


@dataclass(frozen=True)
class QueueStats:
    """Snapshot of the queue state (counts racy by nature, exact per directory).

    ``shard_pending`` breaks the pending count down per shard as
    ``(shard, count)`` pairs — empty for unsharded queues, and only non-empty
    shards appear.  ``describe()`` intentionally sticks to the four headline
    counts; the progress reporter renders the shard breakdown.
    """

    pending: int
    claimed: int
    done: int
    failed: int
    shard_pending: tuple[tuple[int, int], ...] = ()

    def describe(self) -> str:
        return (
            f"{self.pending} pending, {self.claimed} claimed, "
            f"{self.done} done, {self.failed} failed"
        )


class WorkQueue:
    """Coordinator/worker handle over one shared queue directory."""

    #: File-queue workers persist results into the shared store themselves.
    wants_results = False

    def __init__(
        self,
        root: str | os.PathLike,
        lease_timeout_s: float = 60.0,
        shard_count: int = 0,
        hungry_ttl_s: float = HUNGRY_TTL_S,
    ) -> None:
        if lease_timeout_s <= 0:
            raise ExperimentError("WorkQueue.lease_timeout_s must be positive")
        if shard_count < 0:
            raise ExperimentError("WorkQueue.shard_count must be >= 0")
        self.root = Path(root)
        self.lease_timeout_s = float(lease_timeout_s)
        self.hungry_ttl_s = float(hungry_ttl_s)
        for name in (PENDING, CLAIMED, DONE, FAILED, HUNGRY):
            (self.root / name).mkdir(parents=True, exist_ok=True)
        #: Memo of parsed done markers (file name -> worker id): markers are
        #: immutable once written, so ``worker_done_counts`` only reads files
        #: it has not seen — O(new markers) per progress poll, not O(all).
        self._done_worker_cache: dict[str, str] = {}
        # Shard subdirectories are created eagerly by the coordinator (which
        # knows the count) and *discovered* by everyone else: a worker opened
        # with shard_count=0 still claims from whatever shard-XX/ dirs exist.
        for shard in range(shard_count):
            (self._dir(PENDING) / shard_dir_name(shard)).mkdir(exist_ok=True)

    # ------------------------------------------------------------------ paths
    def _dir(self, name: str) -> Path:
        return self.root / name

    def _shard_dirs(self) -> list[tuple[int, Path]]:
        """Discover the ``pending/shard-XX/`` partitions present on disk."""
        out = []
        for path in self._dir(PENDING).iterdir():
            match = _SHARD_DIR_RE.match(path.name)
            if match is not None and path.is_dir():
                out.append((int(match.group(1)), path))
        return sorted(out)

    def _pending_shard_dir(self, shard: int) -> Path:
        if shard < 0:
            raise ExperimentError(f"queue shard must be >= 0, got {shard}")
        path = self._dir(PENDING) / shard_dir_name(shard)
        path.mkdir(exist_ok=True)
        return path

    @property
    def stop_path(self) -> Path:
        return self.root / STOP_SENTINEL

    def filesystem_now(self) -> float:
        """Now according to the clock that stamps claim mtimes.

        Touch-and-stat a probe file in the queue root: on a network filesystem
        both the probe's and the claims' mtimes are assigned by the same
        server, so lease ages computed against this value are immune to clock
        skew between the coordinator and the filesystem (or the worker hosts).
        Comparing claim mtimes against the coordinator's ``time.time()``
        instead would spuriously re-queue live claims whenever the coordinator
        ran ahead by more than the lease timeout — or never expire dead ones
        when it ran behind.
        """
        probe = self.root / CLOCK_PROBE
        try:
            probe.touch()
            return probe.stat().st_mtime
        except OSError:  # pragma: no cover - probe unwritable: degrade gracefully
            return time.time()

    # ------------------------------------------------------------------ coordinator
    def enqueue(self, task_id: str, payload: object, shard: int | None = None) -> Path:
        """Make one task claimable (atomic: a worker never sees a partial file).

        With ``shard`` given the task lands in that ``pending/shard-XX/``
        partition and is claimed preferentially by that shard's workers;
        without one it goes into the shared root pool every worker scans.
        """
        if not _TASK_ID_RE.match(task_id):
            raise ExperimentError(f"task id {task_id!r} is not filesystem-safe")
        parent = self._dir(PENDING) if shard is None else self._pending_shard_dir(shard)
        target = parent / f"{task_id}.task"
        atomic_write_bytes(target, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        return target

    def requeue_expired(self) -> list[str]:
        """Re-queue every claim whose lease heartbeat has gone stale.

        A live worker touches its claim more often than the lease timeout;
        a claim that stopped being touched belongs to a dead worker and goes
        back to pending for someone else.  Re-queued tasks land in the shared
        *root* pool, not their original shard: the shard's own worker may be
        the one that died, and the root pool is claimable by everyone.
        """
        now = self.filesystem_now()
        requeued: list[str] = []
        for path in sorted(self._dir(CLAIMED).glob("*.task")):
            try:
                age = now - path.stat().st_mtime
            except FileNotFoundError:  # acked or requeued under us
                continue
            if age <= self.lease_timeout_s:
                continue
            try:
                os.rename(path, self._dir(PENDING) / path.name)
            except FileNotFoundError:
                continue
            requeued.append(path.stem)
        return requeued

    def rebalance(self) -> list[StolenTask]:
        """Steal pending work for starving shards (the coordinator's sweep).

        For every shard with a *fresh* ``hungry/`` marker (a preferred-shard
        worker recently found nothing claimable) that is still empty, move
        half of the fullest other shard's pending tasks into it — stolen from
        the *back* of that shard's sorted order, away from the names its own
        worker claims first.  Every move is one atomic rename inside
        ``pending/``, so a task is claimable in exactly one place at any
        instant and the rename-wins claim semantics are preserved; losing a
        rename race with a concurrent claim just skips that task.
        """
        shard_dirs = dict(self._shard_dirs())
        if len(shard_dirs) < 2:
            return []
        now = self.filesystem_now()
        moved: list[StolenTask] = []
        for marker in sorted(self._dir(HUNGRY).glob("shard-*")):
            match = _SHARD_DIR_RE.match(marker.name)
            if match is None or int(match.group(1)) not in shard_dirs:
                continue
            hungry_shard = int(match.group(1))
            try:
                if now - marker.stat().st_mtime > self.hungry_ttl_s:
                    marker.unlink(missing_ok=True)  # stale signal: nobody is waiting
                    continue
            except FileNotFoundError:
                continue
            target_dir = shard_dirs[hungry_shard]
            if any(target_dir.glob("*.task")):
                marker.unlink(missing_ok=True)  # shard has work again
                continue
            plan = plan_steal({
                shard: sorted(path.name for path in directory.glob("*.task"))
                for shard, directory in shard_dirs.items()
                if shard != hungry_shard
            })
            if plan is None:
                continue  # nothing to steal; leave the marker for the next sweep
            source, names = plan
            stolen_here = 0
            for name in reversed(names):
                try:
                    os.rename(shard_dirs[source] / name, target_dir / name)
                except FileNotFoundError:
                    continue  # claimed (or stolen) out from under us
                moved.append(StolenTask(Path(name).stem, source, hungry_shard))
                stolen_here += 1
            if stolen_here:
                marker.unlink(missing_ok=True)
        return moved

    def reset(self) -> int:
        """Drop every task file, ack marker and the stop sentinel.

        A coordinator owns its queue directory: calling this before enqueueing
        reconciles a directory left behind by a crashed earlier sweep —
        orphaned pending/claimed tasks would otherwise be drained (and
        re-executed) by the new sweep's workers, and done/failed markers would
        accumulate without bound.  ``.tmp`` orphans of crashed atomic writes
        are dropped too — nothing else removes them, so a reused queue
        directory would otherwise collect them forever.  Returns the number of
        files removed.
        """
        removed = 0
        for kind, pattern in ((PENDING, "*.task"), (CLAIMED, "*.task"),
                              (DONE, "*.json"), (FAILED, "*.json"),
                              (PENDING, "*.tmp"), (CLAIMED, "*.tmp"),
                              (DONE, "*.tmp"), (FAILED, "*.tmp")):
            paths = self._dir(kind).glob(pattern)
            if kind == PENDING:  # shard partitions hold tasks (and .tmp orphans) too
                paths = list(paths) + list(self._dir(PENDING).glob(f"shard-*/{pattern}"))
            for path in paths:
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:  # pragma: no cover - racing leftover worker
                    continue
        for marker in self._dir(HUNGRY).glob("shard-*"):
            marker.unlink(missing_ok=True)
        self._done_worker_cache.clear()  # the markers it described are gone
        self.clear_stop()
        return removed

    def write_stop(self) -> None:
        self.stop_path.touch()

    def clear_stop(self) -> None:
        self.stop_path.unlink(missing_ok=True)

    def stop_requested(self) -> bool:
        return self.stop_path.is_file()

    # ------------------------------------------------------------------ worker
    def claim(self, worker_id: str, shard: int | None = None) -> TaskClaim | None:
        """Atomically claim one pending task, or ``None`` when nothing is claimable.

        The rename is the claim: losing the race on one candidate just moves
        on to the next.  A claim whose payload cannot be unpickled is marked
        failed instead of being executed.

        With a preferred ``shard``, candidates come from that shard's
        partition first, then the shared root pool (re-queued leases) — never
        from other shards; a fully empty scan touches the shard's ``hungry/``
        marker so the coordinator's :meth:`rebalance` steals work over.
        Without one (the default), every partition plus the root pool is
        scanned in global task-id order.
        """
        if shard is None:
            candidates = sorted(
                list(self._dir(PENDING).glob("*.task"))
                + [path for _, directory in self._shard_dirs() for path in directory.glob("*.task")],
                key=lambda path: path.name,
            )
        else:
            candidates = sorted(self._pending_shard_dir(shard).glob("*.task")) + sorted(
                self._dir(PENDING).glob("*.task")
            )
        claimed = self._claim_first(candidates, worker_id)
        if claimed is None and shard is not None:
            self._mark_hungry(shard)
        return claimed

    def _mark_hungry(self, shard: int) -> None:
        """Record a preferred-shard worker's empty scan (a steal-here signal)."""
        try:
            (self._dir(HUNGRY) / shard_dir_name(shard)).touch()
        except OSError:  # pragma: no cover - marker dir unwritable: stealing degrades
            pass

    def _claim_first(self, candidates: list[Path], worker_id: str) -> TaskClaim | None:
        for candidate in candidates:
            target = self._dir(CLAIMED) / candidate.name
            try:
                os.rename(candidate, target)
            except FileNotFoundError:
                continue  # another worker won this one; any other OSError is a
                # real filesystem problem and must surface, not hang the sweep
            try:
                os.utime(target)  # start the lease heartbeat at claim time
                payload = pickle.loads(target.read_bytes())
            except FileNotFoundError:
                continue  # requeued out from under us before we could start
            except Exception as exc:  # corrupt payload: never executable
                self._write_marker(FAILED, target.stem, worker_id, error=f"unreadable payload: {exc}")
                target.unlink(missing_ok=True)
                continue
            return TaskClaim(task_id=target.stem, path=target, payload=payload)
        return None

    def renew(self, claim: TaskClaim) -> None:
        """Refresh the claim's lease heartbeat (no-op if the claim was requeued)."""
        try:
            os.utime(claim.path)
        except FileNotFoundError:
            pass

    def ack(self, claim: TaskClaim, worker_id: str, result: ResultUpload | None = None) -> None:
        """Mark a claim as completed and release it.

        ``result`` is accepted for transport-protocol uniformity and ignored:
        file-queue workers have already written the shared result store.
        """
        self._write_marker(DONE, claim.task_id, worker_id)
        if claim.path is not None:
            claim.path.unlink(missing_ok=True)

    def fail(self, claim: TaskClaim, worker_id: str, error: str) -> None:
        """Mark a claim as failed (re-queueing is the coordinator's call: it
        retries a failed task up to ``RuntimeConfig.task_retries`` times)."""
        self._write_marker(FAILED, claim.task_id, worker_id, error=error)
        if claim.path is not None:
            claim.path.unlink(missing_ok=True)

    def discard_failure(self, task_id: str) -> bool:
        """Drop a task's failure marker (the coordinator is about to retry it)."""
        try:
            (self._dir(FAILED) / f"{task_id}.json").unlink()
            return True
        except FileNotFoundError:
            return False

    def _write_marker(self, kind: str, task_id: str, worker_id: str, error: str | None = None) -> None:
        marker = {"task_id": task_id, "worker": worker_id, "status": kind}
        if error is not None:
            marker["error"] = error
        target = self._dir(kind) / f"{task_id}.json"
        atomic_write_bytes(target, json.dumps(marker, indent=1, sort_keys=True).encode("utf-8"))

    # ------------------------------------------------------------------ inspection
    def pending_ids(self) -> set[str]:
        return {path.stem for path in self._dir(PENDING).glob("*.task")} | {
            path.stem for path in self._dir(PENDING).glob("shard-*/*.task")
        }

    def claimed_ids(self) -> set[str]:
        return {path.stem for path in self._dir(CLAIMED).glob("*.task")}

    def done_ids(self) -> set[str]:
        return {path.stem for path in self._dir(DONE).glob("*.json")}

    def failed_tasks(self) -> dict[str, str]:
        """Failed task ids mapped to their error messages."""
        out: dict[str, str] = {}
        for path in sorted(self._dir(FAILED).glob("*.json")):
            try:
                marker = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                marker = {}
            out[path.stem] = str(marker.get("error", "unknown error"))
        return out

    def worker_done_counts(self) -> dict[str, int]:
        """Completed-task counts per worker id (from the ack markers).

        Unlike :meth:`stats` this *does* read marker contents — but each
        marker is parsed once ever (they are immutable), so a progress poll
        costs O(markers acked since the last poll), not O(all markers).
        """
        counts: dict[str, int] = {}
        for path in self._dir(DONE).glob("*.json"):
            worker = self._done_worker_cache.get(path.name)
            if worker is None:
                try:
                    worker = str(json.loads(path.read_text()).get("worker", "unknown"))
                except (OSError, json.JSONDecodeError):  # racing writer: count it next poll
                    continue
                self._done_worker_cache[path.name] = worker
            counts[worker] = counts.get(worker, 0) + 1
        return counts

    def has_live_claims(self) -> bool:
        """Whether any claim's lease is still being heart-beaten."""
        now = self.filesystem_now()
        for path in self._dir(CLAIMED).glob("*.task"):
            try:
                if now - path.stat().st_mtime <= self.lease_timeout_s:
                    return True
            except FileNotFoundError:
                continue
        return False

    def stats(self) -> QueueStats:
        """Directory-entry counts only: the coordinator polls this every few
        hundred milliseconds, so it must never read or parse marker contents
        (``failed_tasks`` does, and stays reserved for error reporting)."""
        shard_pending = tuple(
            (shard, count)
            for shard, directory in self._shard_dirs()
            if (count := sum(1 for _ in directory.glob("*.task")))
        )
        return QueueStats(
            pending=sum(1 for _ in self._dir(PENDING).glob("*.task"))
            + sum(count for _, count in shard_pending),
            claimed=sum(1 for _ in self._dir(CLAIMED).glob("*.task")),
            done=sum(1 for _ in self._dir(DONE).glob("*.json")),
            failed=sum(1 for _ in self._dir(FAILED).glob("*.json")),
            shard_pending=shard_pending,
        )

    def close(self) -> None:
        """Nothing to release: the file transport holds no connections."""

    def describe(self) -> str:
        return f"WorkQueue({self.root}, {self.stats().describe()})"
