"""Claim-execute-ack worker of the distributed experiment runtime.

Run one of these per host (or several per host) against either a queue
directory on a shared filesystem or a coordinator's TCP queue server::

    PYTHONPATH=src python -m repro.runtime.worker /shared/sweep/store/queue
    PYTHONPATH=src python -m repro.runtime.worker tcp://coordinator:7077

The worker loops: atomically claim a task, rebuild the database from the
task's :class:`~repro.storage.spec.DatabaseSpec` (reusing the per-process
registry across tasks), execute the grid cell, deliver the result and ack.
How the result travels depends on the transport: file-queue workers persist
it into the payload's shared (possibly sharded) result store themselves,
while TCP workers — which share **no** filesystem with the coordinator —
upload it back inside the ack frame and the coordinator persists it locally.
A heartbeat thread renews the claim's lease while the task runs so the
coordinator's expiry sweep never re-queues a task that is merely slow; if
this process is killed, the heartbeat stops with it and the lease expires.

The worker exits when the coordinator signals stop and no work is claimable
(for TCP, an unreachable coordinator counts as stop), after ``--max-tasks``
tasks, or after ``--idle-timeout`` seconds without work.

``--shard N`` pins the worker's claim preference to one queue shard (its
starvation is what triggers the coordinator's work stealing); ``--progress
[S]`` prints a machine-readable JSON progress snapshot of the queue every S
seconds (default 5) to stdout.  Against a secured TCP coordinator, export
``REPRO_QUEUE_SECRET`` with the shared frame-signing secret — it is read from
the environment only, never from argv.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time

from repro.runtime.progress import SweepProgress
from repro.runtime.workqueue import (
    ResultUpload,
    TaskClaim,
    WorkerQueueTransport,
    WorkQueue,
    parse_queue_url,
)


#: Serializes every line this process writes to stdout/stderr: the progress
#: reporter thread and the claim loop share the streams, and two concurrent
#: ``print``s can tear a JSON snapshot line mid-write otherwise.
_PRINT_LOCK = threading.Lock()


def _emit(line: str, stream=None) -> None:
    with _PRINT_LOCK:
        print(line, file=stream if stream is not None else sys.stdout, flush=True)


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def open_queue(target: str) -> WorkerQueueTransport:
    """Open the worker-side transport for a queue directory or ``tcp://`` url."""
    address = parse_queue_url(target)
    if address.scheme == "tcp":
        # Imported lazily: file-queue workers never need the socket client.
        from repro.runtime.netqueue import NetWorkQueue

        return NetWorkQueue(target)
    return WorkQueue(address.path)


def _heartbeat(
    queue: WorkerQueueTransport, claim: TaskClaim, stop: threading.Event, interval_s: float
) -> None:
    while not stop.wait(interval_s):
        queue.renew(claim)


def run_worker(
    queue_target: str,
    worker_id: str | None = None,
    poll_interval_s: float = 0.2,
    idle_timeout_s: float | None = None,
    max_tasks: int | None = None,
    lease_renew_s: float = 5.0,
    shard: int | None = None,
    progress_interval_s: float | None = None,
) -> int:
    """Drain tasks from ``queue_target`` until stopped; returns the number completed."""
    # Imported here so ``python -m repro.runtime.worker --help`` stays instant.
    from repro.runtime.parallel import execute_spec_payload, execute_spec_payload_with_identity

    queue = open_queue(str(queue_target))
    worker_id = worker_id or default_worker_id()
    reporter: SweepProgress | None = None
    if progress_interval_s is not None:
        reporter = SweepProgress(
            queue,
            total=None,  # a worker cannot know the sweep's size, only its state
            interval_s=progress_interval_s,
            callback=lambda snapshot: _emit(snapshot.to_json()),
        ).start()
    try:
        completed = _worker_loop(
            queue, worker_id, poll_interval_s, idle_timeout_s, max_tasks, lease_renew_s, shard,
            execute_spec_payload, execute_spec_payload_with_identity,
        )
    finally:
        if reporter is not None:
            reporter.stop()
    _emit(f"[{worker_id}] exiting after {completed} task(s)")
    return completed


def _worker_loop(
    queue: WorkerQueueTransport,
    worker_id: str,
    poll_interval_s: float,
    idle_timeout_s: float | None,
    max_tasks: int | None,
    lease_renew_s: float,
    shard: int | None,
    execute_spec_payload,
    execute_spec_payload_with_identity,
) -> int:
    completed = 0
    idle_since = time.monotonic()
    while max_tasks is None or completed < max_tasks:
        claim = queue.claim(worker_id, shard=shard)
        if claim is None:
            if queue.stop_requested():
                break
            if idle_timeout_s is not None and time.monotonic() - idle_since > idle_timeout_s:
                break
            time.sleep(poll_interval_s)
            continue
        idle_since = time.monotonic()
        stop_heartbeat = threading.Event()
        beat = threading.Thread(
            target=_heartbeat, args=(queue, claim, stop_heartbeat, lease_renew_s), daemon=True
        )
        beat.start()
        try:
            if queue.wants_results:
                result, key, fingerprint = execute_spec_payload_with_identity(claim.payload)
                upload = ResultUpload(key=key, fingerprint=fingerprint, result=result.to_dict())
            else:
                execute_spec_payload(claim.payload)
                upload = None
        except Exception as exc:
            stop_heartbeat.set()
            beat.join()
            queue.fail(claim, worker_id, f"{type(exc).__name__}: {exc}")
            _emit(f"[{worker_id}] FAILED {claim.task_id}: {exc}", stream=sys.stderr)
            continue
        stop_heartbeat.set()
        beat.join()
        try:
            queue.ack(claim, worker_id, upload)
        except Exception as exc:
            # The coordinator rejected the ack (e.g. its result store is
            # unwritable).  Dying here would take every worker down one by one
            # with a misleading "all workers exited" sweep error; a failure
            # marker carries the real cause to the coordinator instead, whose
            # retry budget turns a persistent rejection into a sweep abort.
            try:
                queue.fail(claim, worker_id, f"ack rejected: {type(exc).__name__}: {exc}")
            except Exception:  # pragma: no cover - transport also down
                pass
            _emit(f"[{worker_id}] ACK REJECTED {claim.task_id}: {exc}", stream=sys.stderr)
            continue
        completed += 1
        _emit(f"[{worker_id}] completed {claim.task_id}")
    return completed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.worker",
        description="Claim and execute distributed experiment tasks from a work queue "
        "(shared directory or tcp://host:port coordinator).",
    )
    parser.add_argument("queue", help="queue directory on a shared filesystem, or the "
                        "coordinator's tcp://host:port queue address")
    parser.add_argument("--worker-id", default=None, help="identity written into ack markers "
                        "(default: <hostname>-<pid>)")
    parser.add_argument("--poll-interval", type=float, default=0.2, metavar="S",
                        help="seconds between claim attempts when idle (default 0.2)")
    parser.add_argument("--idle-timeout", type=float, default=None, metavar="S",
                        help="exit after this many idle seconds (default: wait for the stop signal)")
    parser.add_argument("--max-tasks", type=int, default=None, metavar="N",
                        help="exit after completing N tasks (default: unlimited)")
    parser.add_argument("--lease-renew", type=float, default=5.0, metavar="S",
                        help="heartbeat interval while executing; keep it well below the "
                        "coordinator's lease timeout (default 5)")
    parser.add_argument("--shard", type=int, default=None, metavar="N",
                        help="preferred queue shard to claim from (starvation triggers the "
                        "coordinator's work stealing); default: claim from every shard")
    parser.add_argument("--progress", type=float, nargs="?", const=5.0, default=None,
                        metavar="S", help="print a machine-readable JSON progress snapshot "
                        "of the queue every S seconds (default 5 when the flag is given)")
    args = parser.parse_args(argv)
    run_worker(
        args.queue,
        worker_id=args.worker_id,
        poll_interval_s=args.poll_interval,
        idle_timeout_s=args.idle_timeout,
        max_tasks=args.max_tasks,
        lease_renew_s=args.lease_renew,
        shard=args.shard,
        progress_interval_s=args.progress,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
