"""Claim-execute-ack worker of the distributed experiment runtime.

Run one of these per host (or several per host) against a queue directory on
a shared filesystem::

    PYTHONPATH=src python -m repro.runtime.worker /shared/sweep/store/queue

The worker loops: atomically claim a task from ``pending/``, rebuild the
database from the task's :class:`~repro.storage.spec.DatabaseSpec` (reusing
the per-process registry across tasks), execute the grid cell, persist the
result into the payload's (possibly sharded) result store, and ack.  A
heartbeat thread touches the claimed file while the task runs so the
coordinator's lease-expiry sweep never re-queues a task that is merely slow;
if this process is killed, the heartbeat stops with it and the lease expires.

The worker exits when the coordinator drops the queue's ``stop`` sentinel and
no work is claimable, after ``--max-tasks`` tasks, or after ``--idle-timeout``
seconds without work.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time

from repro.runtime.workqueue import TaskClaim, WorkQueue


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _heartbeat(queue: WorkQueue, claim: TaskClaim, stop: threading.Event, interval_s: float) -> None:
    while not stop.wait(interval_s):
        queue.renew(claim)


def run_worker(
    queue_dir: str,
    worker_id: str | None = None,
    poll_interval_s: float = 0.2,
    idle_timeout_s: float | None = None,
    max_tasks: int | None = None,
    lease_renew_s: float = 5.0,
) -> int:
    """Drain tasks from ``queue_dir`` until stopped; returns the number completed."""
    # Imported here so ``python -m repro.runtime.worker --help`` stays instant.
    from repro.runtime.parallel import execute_spec_payload

    queue = WorkQueue(queue_dir)
    worker_id = worker_id or default_worker_id()
    completed = 0
    idle_since = time.monotonic()
    while max_tasks is None or completed < max_tasks:
        claim = queue.claim(worker_id)
        if claim is None:
            if queue.stop_requested():
                break
            if idle_timeout_s is not None and time.monotonic() - idle_since > idle_timeout_s:
                break
            time.sleep(poll_interval_s)
            continue
        idle_since = time.monotonic()
        stop_heartbeat = threading.Event()
        beat = threading.Thread(
            target=_heartbeat, args=(queue, claim, stop_heartbeat, lease_renew_s), daemon=True
        )
        beat.start()
        try:
            execute_spec_payload(claim.payload)
        except Exception as exc:
            stop_heartbeat.set()
            beat.join()
            queue.fail(claim, worker_id, f"{type(exc).__name__}: {exc}")
            print(f"[{worker_id}] FAILED {claim.task_id}: {exc}", file=sys.stderr, flush=True)
            continue
        stop_heartbeat.set()
        beat.join()
        queue.ack(claim, worker_id)
        completed += 1
        print(f"[{worker_id}] completed {claim.task_id}", flush=True)
    print(f"[{worker_id}] exiting after {completed} task(s)", flush=True)
    return completed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.worker",
        description="Claim and execute distributed experiment tasks from a shared work queue.",
    )
    parser.add_argument("queue_dir", help="queue directory on the shared filesystem")
    parser.add_argument("--worker-id", default=None, help="identity written into ack markers "
                        "(default: <hostname>-<pid>)")
    parser.add_argument("--poll-interval", type=float, default=0.2, metavar="S",
                        help="seconds between claim attempts when idle (default 0.2)")
    parser.add_argument("--idle-timeout", type=float, default=None, metavar="S",
                        help="exit after this many idle seconds (default: wait for the stop sentinel)")
    parser.add_argument("--max-tasks", type=int, default=None, metavar="N",
                        help="exit after completing N tasks (default: unlimited)")
    parser.add_argument("--lease-renew", type=float, default=5.0, metavar="S",
                        help="heartbeat interval while executing; keep it well below the "
                        "coordinator's lease timeout (default 5)")
    args = parser.parse_args(argv)
    run_worker(
        args.queue_dir,
        worker_id=args.worker_id,
        poll_interval_s=args.poll_interval,
        idle_timeout_s=args.idle_timeout,
        max_tasks=args.max_tasks,
        lease_renew_s=args.lease_renew,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in tests
    sys.exit(main())
