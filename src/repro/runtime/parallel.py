"""Parallel fan-out of the (method, split, seed) experiment grid.

The paper's headline experiments sweep a grid of (method × split × seed)
combinations whose tasks are mutually independent: every task trains and
evaluates one optimizer on one split under its own seeded environment.  The
:class:`ParallelExperimentRunner` exploits that independence by dispatching
tasks onto a :mod:`concurrent.futures` pool while guaranteeing *bit-identical*
results to serial execution:

* **Task isolation** — every task runs against its own database view
  (:meth:`repro.storage.database.Database.with_config` shares the read-only
  table data but gives the task a private buffer pool), so no task can observe
  another task's cache state.
* **Deterministic seeding** — each task's seed is a stable digest of the task
  identity (method, split, repeat), independent of scheduling order.
* **Deterministic timing** — tasks run with
  ``ExperimentConfig.deterministic_timing`` enabled, replacing wall-clock
  inference/training measurement with simulated times (execution latencies
  were already simulated).  Nothing in a task result depends on the wall
  clock, so thread interleaving cannot perturb it.

* **Spec-based dispatch** — when the database is addressable by a
  :class:`~repro.storage.spec.DatabaseSpec` (it was built through the catalog
  factories, or a spec was passed directly) and the workload is rebuildable by
  name, process-pool tasks ship only a :class:`SpecTaskPayload` of a few
  hundred bytes.  The worker rebuilds — or, via its per-process
  :class:`~repro.storage.registry.DatabaseRegistry`, reuses — the database
  deterministically, so dispatch cost no longer grows with database scale.
  Databases without a spec fall back to legacy whole-database pickling.

With a :class:`~repro.runtime.result_store.ResultStore` attached the grid is
resumable: completed tasks are skipped (PostBOUND-style ``skip_existing``) and
fresh results are persisted as they arrive.

* **Distributed execution** — ``executor_kind="distributed"`` pushes the same
  :class:`SpecTaskPayload`\\ s through a work-queue transport instead of a
  process pool.  With the default file transport
  (:class:`~repro.runtime.workqueue.WorkQueue`) the coordinator enqueues
  claimable task files, launches ``workers`` local worker processes
  (``python -m repro.runtime.worker``), and any number of additional workers
  on other hosts sharing the store's filesystem can drain the same queue,
  persisting results into the shared — typically
  :class:`~repro.runtime.result_store.ShardedResultStore` — store.  With
  ``RuntimeConfig.queue_url = "tcp://host:port"`` the coordinator instead
  serves the queue over a socket (:class:`~repro.runtime.netqueue.QueueServer`)
  and workers need no filesystem in common with it: they claim over TCP and
  upload finished results back with their acks, which the coordinator persists
  into its local store.  Either way, dead workers' claims are re-queued after
  a lease timeout, failed tasks are retried up to ``task_retries`` times, and
  the coordinator assembles grid-ordered results from the store once every
  task is acked.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Union

from repro.config import PostgresConfig, RuntimeConfig
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.metrics import MethodRunResult
from repro.core.splits import DatasetSplit
from repro.errors import ExperimentError
from repro.runtime.fingerprint import stable_seed
from repro.runtime.plan_cache import PlanCache
from repro.runtime.progress import DEFAULT_PROGRESS_INTERVAL_S, ProgressSnapshot, SweepProgress
from repro.runtime.result_store import ResultStore, ShardedResultStore, TaskKey
from repro.runtime.workqueue import QueueAddress, QueueTransport, WorkQueue, parse_queue_url
from repro.storage.database import Database
from repro.storage.registry import get_process_registry, resolve_database
from repro.storage.spec import DatabaseSpec
from repro.workloads import build_workload, is_registered_workload
from repro.workloads.workload import Workload

#: Seconds between coordinator polls of the distributed queue state.
COORDINATOR_POLL_S = 0.2


@dataclass(frozen=True)
class ExperimentTask:
    """One cell of the experiment grid."""

    method: str
    split: DatasetSplit
    repeat: int = 0
    base_seed: int = 0

    @property
    def task_seed(self) -> int:
        """Deterministic per-task seed — a stable digest of the task identity.

        Independent of grid order and scheduling, so adding or removing other
        tasks never changes this task's result.
        """
        return stable_seed(self.base_seed, self.method, self.split.name, self.repeat)

    def describe(self) -> str:
        return f"{self.method} on {self.split.name} (repeat {self.repeat})"


@dataclass(frozen=True)
class SpecTaskPayload:
    """Everything a worker process needs to run one grid cell, spec-sized.

    The payload replaces the legacy pickle of the whole runner (database
    included): it names the database recipe and the workload, both of which
    the worker rebuilds deterministically.  Its pickled size is a few hundred
    bytes regardless of database scale.
    """

    spec: DatabaseSpec
    workload_name: str
    workload_fingerprint: str
    db_config: PostgresConfig
    experiment_config: ExperimentConfig
    plan_cache_entries: int
    store_root: str | None
    skip_existing: bool
    task: ExperimentTask
    #: Shard count of the result store at ``store_root``; ``0`` means the flat
    #: single-directory layout.  Part of the payload so a remote worker opens
    #: the store with the same routing as every other writer.
    store_shards: int = 0


#: Per-process memo of worker-rebuilt workloads, keyed by (workload name,
#: database-spec fingerprint): an N-task grid rebinds the workload once per
#: worker process instead of once per task, mirroring the database registry.
_WORKER_WORKLOADS: dict[tuple[str, str], Workload] = {}
_WORKER_WORKLOADS_LOCK = threading.Lock()
_WORKER_WORKLOADS_MAX = 32


def _worker_workload(payload: SpecTaskPayload, database: Database) -> Workload:
    """Rebuild (or reuse) and validate the payload's workload in this process."""
    key = (payload.workload_name, payload.spec.fingerprint())
    with _WORKER_WORKLOADS_LOCK:
        workload = _WORKER_WORKLOADS.get(key)
    if workload is None:
        workload = build_workload(payload.workload_name, database.schema)
        with _WORKER_WORKLOADS_LOCK:
            if len(_WORKER_WORKLOADS) >= _WORKER_WORKLOADS_MAX:
                _WORKER_WORKLOADS.clear()
            workload = _WORKER_WORKLOADS.setdefault(key, workload)
    if workload.fingerprint() != payload.workload_fingerprint:
        # The caller's workload shares a registered name but different
        # content (e.g. a hand-built subset named "job"): refusing here keeps
        # process-pool results from silently diverging from serial/thread
        # execution, which uses the caller's instance.
        raise ExperimentError(
            f"worker rebuild of workload {payload.workload_name!r} does not match the "
            "dispatched workload (content fingerprint mismatch); pass the canonically "
            "built workload, register the custom one under its own name, or use the "
            "thread executor"
        )
    return workload


def _payload_store(payload: SpecTaskPayload) -> ResultStore | None:
    """Open the payload's result store with the layout the coordinator used."""
    if payload.store_root is None:
        return None
    if payload.store_shards:
        return ShardedResultStore(
            payload.store_root,
            shard_count=payload.store_shards,
            skip_existing=payload.skip_existing,
        )
    return ResultStore(payload.store_root, skip_existing=payload.skip_existing)


def _execute_payload(payload: SpecTaskPayload) -> tuple[MethodRunResult, "ParallelExperimentRunner"]:
    """Run one payload in this process; returns the result and its runner."""
    database = get_process_registry().get(payload.spec)
    workload = _worker_workload(payload, database)
    store = _payload_store(payload)
    runner = ParallelExperimentRunner(
        database,
        workload,
        config=payload.db_config,
        experiment_config=payload.experiment_config,
        runtime_config=RuntimeConfig(
            workers=1,
            executor_kind="serial",
            plan_cache_entries=payload.plan_cache_entries,
        ),
        result_store=store,
    )
    return runner._run_or_resume(payload.task), runner


def execute_spec_payload(payload: SpecTaskPayload) -> MethodRunResult:
    """Worker-side entry point of spec-based dispatch (module level: picklable).

    The database comes out of the worker's process registry — built once on
    the first task, reused by every later task of the same spec (and, under a
    forking start method, inherited from the parent without any rebuild).
    The workload is likewise rebuilt once per process and reused.  Both the
    process-pool executor and the distributed queue worker funnel through
    this function, so every executor kind runs tasks identically.
    """
    result, _ = _execute_payload(payload)
    return result


def execute_spec_payload_with_identity(payload: SpecTaskPayload) -> tuple[MethodRunResult, TaskKey, str]:
    """Run one payload and return ``(result, task key, context fingerprint)``.

    Used by queue transports that upload results to the coordinator
    (``wants_results``): the worker computes the key and fingerprint from its
    own deterministic rebuild — exactly the values a shared-store worker would
    save under — and ships all three back in the ack frame.
    """
    result, runner = _execute_payload(payload)
    task = payload.task
    return result, runner.task_key(task), runner.task_fingerprint(task)


def reconcile_failed_tasks(
    queue: QueueTransport,
    remaining: set[str],
    payloads: dict[str, object],
    retries_used: dict[str, int],
    task_retries: int,
) -> list[str]:
    """Apply the bounded-retry policy to this poll round's failure markers.

    Failed tasks still within their budget are re-queued (marker discarded,
    payload enqueued again) and returned; one permanent (transient) failure
    must not abort a multi-hour sweep.  A task that has already been retried
    ``task_retries`` times raises instead, and the error reports how many
    attempts were made.
    """
    failed = {tid: msg for tid, msg in queue.failed_tasks().items() if tid in remaining}
    if not failed:
        return []
    exhausted = {
        tid: msg for tid, msg in failed.items() if retries_used.get(tid, 0) >= task_retries
    }
    if exhausted:
        task_id, message = sorted(exhausted.items())[0]
        attempts = retries_used.get(task_id, 0) + 1
        raise ExperimentError(
            f"{len(exhausted)} distributed task(s) failed permanently; first ({task_id}) "
            f"failed after {attempts} attempt(s): {message}"
        )
    retried: list[str] = []
    for task_id in sorted(failed):
        retries_used[task_id] = retries_used.get(task_id, 0) + 1
        queue.discard_failure(task_id)
        queue.enqueue(task_id, payloads[task_id])
        retried.append(task_id)
    return retried


class ParallelExperimentRunner:
    """Runs the experiment grid concurrently with serial-identical results."""

    def __init__(
        self,
        database: Union[Database, DatabaseSpec],
        workload: Workload,
        config: PostgresConfig | None = None,
        experiment_config: ExperimentConfig | None = None,
        runtime_config: RuntimeConfig | None = None,
        result_store: ResultStore | None = None,
        progress_callback: "Callable[[ProgressSnapshot], None] | None" = None,
    ) -> None:
        #: The dispatchable recipe: either the spec passed in, or the one the
        #: database carries from its factory build.  ``None`` means the
        #: database cannot be rebuilt remotely (legacy pickling applies).
        self.database_spec = database if isinstance(database, DatabaseSpec) else database.spec
        self.database = resolve_database(database)
        self.workload = workload
        self.db_config = config or self.database.config
        base = experiment_config or ExperimentConfig()
        # Deterministic timing is not optional here: without it, per-task
        # results would embed scheduling-dependent wall clocks and the
        # serial-equivalence guarantee (and any resume) would be meaningless.
        self.experiment_config = replace(base, deterministic_timing=True)
        self.runtime_config = runtime_config or RuntimeConfig()
        if result_store is None and self.runtime_config.store_dir is not None:
            if self.runtime_config.shard_count > 0:
                result_store = ShardedResultStore(
                    self.runtime_config.store_dir,
                    shard_count=self.runtime_config.shard_count,
                    skip_existing=self.runtime_config.skip_existing,
                )
            else:
                result_store = ResultStore(
                    self.runtime_config.store_dir,
                    skip_existing=self.runtime_config.skip_existing,
                )
        self.result_store = result_store
        #: Called with every :class:`ProgressSnapshot` a distributed sweep's
        #: reporter takes (periodic plus the final end-of-sweep snapshot).
        self.progress_callback = progress_callback
        #: Local worker processes of the most recent distributed sweep
        #: (observability: lets callers and the crash-recovery demo reach them).
        self._distributed_procs: list[subprocess.Popen] = []
        #: Number of expired claims the most recent distributed sweep re-queued.
        self._distributed_requeued = 0
        #: Number of pending tasks the coordinator's work-stealing rebalance
        #: moved between shards in the most recent distributed sweep.
        self._distributed_stolen = 0
        #: Coordinator-side queue transport of the most recent distributed
        #: sweep (observability: live ``stats()`` for progress reporting).
        self._distributed_queue: QueueTransport | None = None
        #: Progress reporter of the most recent distributed sweep (``None``
        #: until one runs with progress enabled); ``.snapshots`` is the
        #: telemetry history, ``.latest`` the end-of-sweep snapshot.
        self._distributed_progress: SweepProgress | None = None

    # ------------------------------------------------------------------ grid
    def tasks_for(
        self,
        methods: tuple[str, ...] | list[str],
        splits: list[DatasetSplit] | tuple[DatasetSplit, ...],
        repeats: int = 1,
    ) -> list[ExperimentTask]:
        """Expand the (method × split × repeat) grid in deterministic order."""
        if repeats < 1:
            raise ExperimentError("experiment grid needs at least one repeat")
        return [
            ExperimentTask(
                method=method,
                split=split,
                repeat=repeat,
                base_seed=self.experiment_config.seed,
            )
            for repeat in range(repeats)
            for split in splits
            for method in methods
        ]

    # ------------------------------------------------------------------ one task
    def _task_runner(self, task: ExperimentTask) -> ExperimentRunner:
        """A pristine serial runner for one task.

        ``with_config`` shares the immutable table data, indexes and
        statistics but allocates a fresh, empty buffer pool — the task starts
        cold regardless of what other tasks (or earlier grids) executed.
        """
        task_db = self.database.with_config(self.db_config)
        return ExperimentRunner(
            task_db,
            self.workload,
            config=self.db_config,
            experiment_config=self.experiment_config.with_seed(task.task_seed),
            # A zero-capacity cache genuinely disables caching (put() is a
            # no-op); passing None would fall back to the planner's default.
            plan_cache=PlanCache(self.runtime_config.plan_cache_entries),
        )

    def run_task(self, task: ExperimentTask) -> MethodRunResult:
        """Execute one grid cell in isolation (no store interaction)."""
        return self._task_runner(task).run_method(task.method, task.split)

    def task_key(self, task: ExperimentTask) -> TaskKey:
        return TaskKey(
            workload=self.workload.name,
            split_name=task.split.name,
            method=task.method,
            seed=task.task_seed,
        )

    def task_fingerprint(self, task: ExperimentTask) -> str:
        """The store fingerprint of one task (context + split membership)."""
        return self._task_runner(task).task_fingerprint(task.split)

    def _run_or_resume(self, task: ExperimentTask) -> MethodRunResult:
        if self.result_store is None:
            return self.run_task(task)
        # One runner serves both the fingerprint and the (possibly skipped)
        # execution — building a second one per task would double the
        # database-view and plan-cache setup cost.
        runner = self._task_runner(task)
        result, _ = self.result_store.load_or_run(
            self.task_key(task),
            lambda: runner.run_method(task.method, task.split),
            runner.task_fingerprint(task.split),
        )
        return result

    # ------------------------------------------------------------------ fan-out
    def run_grid(
        self,
        methods: tuple[str, ...] | list[str],
        splits: list[DatasetSplit] | tuple[DatasetSplit, ...],
        repeats: int = 1,
    ) -> list[MethodRunResult]:
        """Run every grid cell; results are returned in grid order.

        The output list is ordered by (repeat, split, method) regardless of
        completion order, so downstream reporting is scheduling-independent.
        """
        tasks = self.tasks_for(methods, splits, repeats)
        return self.run_tasks(tasks)

    # ------------------------------------------------------------------ spec dispatch
    @property
    def uses_spec_dispatch(self) -> bool:
        """Whether process-pool tasks ship specs instead of pickled databases.

        Requires a database spec (factory-built database or spec passed to the
        constructor) and a workload rebuildable by name in the worker.
        """
        return self.database_spec is not None and is_registered_workload(self.workload.name)

    def spec_payload(self, task: ExperimentTask) -> SpecTaskPayload:
        """The scale-independent dispatch payload of one grid cell."""
        if not self.uses_spec_dispatch:
            raise ExperimentError(
                "spec dispatch unavailable: the database carries no DatabaseSpec "
                "or the workload is not registered for rebuilding"
            )
        store = self.result_store
        return SpecTaskPayload(
            spec=self.database_spec,
            workload_name=self.workload.name,
            workload_fingerprint=self.workload.fingerprint(),
            db_config=self.db_config,
            experiment_config=self.experiment_config,
            plan_cache_entries=self.runtime_config.plan_cache_entries,
            store_root=str(store.root) if store is not None else None,
            skip_existing=store.skip_existing if store else True,
            task=task,
            store_shards=store.shard_count if isinstance(store, ShardedResultStore) else 0,
        )

    def run_tasks(self, tasks: list[ExperimentTask]) -> list[MethodRunResult]:
        kind = self.runtime_config.executor_kind
        if kind == "distributed":
            return self._run_distributed(tasks)
        workers = min(self.runtime_config.workers, max(len(tasks), 1))
        if workers <= 1 or kind == "serial" or len(tasks) <= 1:
            return [self._run_or_resume(task) for task in tasks]
        with self._make_executor(kind, workers) as pool:
            if kind == "process" and self.uses_spec_dispatch:
                # Ship the spec, not the database: per-task pickling cost is
                # constant in database scale.  Note that store bookkeeping
                # (loaded/stored counters) then happens in the workers; the
                # parent-side ResultStore counters only reflect parent loads.
                futures = [
                    pool.submit(execute_spec_payload, self.spec_payload(task)) for task in tasks
                ]
            else:
                futures = [pool.submit(self._run_or_resume, task) for task in tasks]
            return [future.result() for future in futures]

    @staticmethod
    def _make_executor(kind: str, workers: int) -> Executor:
        if kind == "process":
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-task")

    # ------------------------------------------------------------------ distributed
    @property
    def _queue_shard_count(self) -> int:
        """Queue shards mirror the result store's shards (0 = unsharded)."""
        store = self.result_store
        return store.shard_count if isinstance(store, ShardedResultStore) else 0

    def _open_coordinator_queue(
        self, store: ResultStore
    ) -> tuple[QueueTransport, str, Path, bool]:
        """Open the coordinator-side transport named by the runtime config.

        Returns ``(queue, worker_target, log_dir, detached)``: the transport,
        the address string handed to spawned workers, where local worker logs
        go, and whether payloads must be *detached* from the coordinator's
        filesystem (TCP transport: workers upload results instead of writing a
        shared store).
        """
        config = self.runtime_config
        if config.queue_url is not None:
            address = parse_queue_url(config.queue_url)
        else:
            address = QueueAddress(scheme="file", path=config.queue_dir)
        if address.scheme == "tcp":
            # Imported lazily: file-transport sweeps never need the server.
            from repro.runtime.netqueue import QueueServer

            server = QueueServer(
                host=address.host or "127.0.0.1",
                port=address.port or 0,
                lease_timeout_s=config.lease_timeout_s,
                result_store=store,
                secret=config.queue_secret,  # None falls back to REPRO_QUEUE_SECRET
            )
            return server, server.url, store.root / "worker-logs", True
        queue_root = Path(address.path) if address.path is not None else store.root / "queue"
        queue = WorkQueue(
            queue_root,
            lease_timeout_s=config.lease_timeout_s,
            shard_count=self._queue_shard_count,
        )
        return queue, str(queue_root), queue_root / "workers", False

    def _run_distributed(self, tasks: list[ExperimentTask]) -> list[MethodRunResult]:
        """Coordinate one sweep over the work queue (file or TCP transport).

        Pending tasks (not already in the store) are enqueued as claimable
        payloads, ``workers`` local worker processes are launched, and the
        coordinator polls the queue — re-queuing expired leases of dead
        workers and retrying failed tasks within ``task_retries`` — until
        every enqueued task is acked.  Results are then assembled from the
        store in grid order, so the output is identical to every other
        executor kind.
        """
        if not tasks:
            return []
        if not self.uses_spec_dispatch:
            raise ExperimentError(
                "distributed execution requires spec dispatch: build the database "
                "through the catalog factories (or pass a DatabaseSpec) and use a "
                "workload registered for rebuilding"
            )
        store = self.result_store
        if store is None:
            raise ExperimentError(
                "distributed execution requires a result store (set RuntimeConfig.store_dir; "
                "with the file queue the workers must share its filesystem, with a tcp:// "
                "queue_url it is coordinator-local)"
            )
        config = self.runtime_config
        queue, worker_target, log_dir, detached = self._open_coordinator_queue(store)
        self._distributed_queue = queue
        self._distributed_requeued = 0
        self._distributed_stolen = 0
        self._distributed_progress = None
        shard_count = self._queue_shard_count
        procs: list[subprocess.Popen] = []
        reporter: SweepProgress | None = None
        try:
            # The coordinator owns the queue: drop whatever a crashed earlier
            # sweep left behind (orphan tasks would be pointlessly re-executed;
            # stale ack markers and .tmp orphans accumulate forever).  Results
            # are unaffected — they live in the store, and completed tasks are
            # skipped below before anything is enqueued.
            queue.reset()

            keyed = [(task, self.task_key(task), self.task_fingerprint(task)) for task in tasks]
            # A sweep-unique id prefix keeps this run's ack markers apart from
            # any earlier sweep that used the same queue directory.
            sweep_id = os.urandom(4).hex()
            payloads: dict[str, SpecTaskPayload] = {}
            shards: dict[str, int | None] = {}
            for index, (task, key, fingerprint) in enumerate(keyed):
                if store.skip_existing and store.exists(key, fingerprint):
                    continue  # resume: already stored, never hits the queue
                payload = self.spec_payload(task)
                if detached:
                    # TCP workers share no filesystem with the coordinator:
                    # strip the store paths so they never try to open (and
                    # create) a store of their own — the transport carries the
                    # result back instead.
                    payload = replace(payload, store_root=None, store_shards=0)
                task_id = f"{sweep_id}-{index:04d}"
                payloads[task_id] = payload
                # Queue shard = result shard: a file-transport worker pinned
                # to this shard claims exactly the tasks whose results it will
                # write into the matching store shard directory.
                shards[task_id] = key.shard_index(shard_count) if shard_count else None
            for task_id, payload in payloads.items():
                queue.enqueue(task_id, payload, shard=shards[task_id])

            if payloads:
                # Workers are pinned to shards only when the coordinator will
                # steal for them: a pinned worker whose shard holds no tasks
                # would otherwise starve with no rebalance to feed it.
                pin_shards = shard_count if config.work_stealing else 0
                procs = [
                    self._spawn_worker(
                        worker_target,
                        index,
                        config.lease_timeout_s,
                        log_dir,
                        shard=index % pin_shards if pin_shards else None,
                        secret=config.queue_secret,
                    )
                    for index in range(min(config.workers, len(payloads)))
                ]
            self._distributed_procs = procs
            if config.progress_interval_s is not None or self.progress_callback is not None:
                reporter = SweepProgress(
                    queue,
                    total=len(payloads),
                    interval_s=config.progress_interval_s or DEFAULT_PROGRESS_INTERVAL_S,
                    callback=self.progress_callback,
                    stolen=lambda: self._distributed_stolen,
                )
                self._distributed_progress = reporter
                if payloads and config.progress_interval_s is not None:
                    # None means no *periodic* polling (as documented on
                    # RuntimeConfig): a callback alone still receives the
                    # final end-of-sweep snapshot below.  A fully-resumed
                    # sweep (nothing enqueued) skips the thread too but still
                    # emits its final done==total==0 completion snapshot.
                    reporter.start()
            self._await_queue(queue, payloads, procs, log_dir)
        finally:
            if reporter is not None:
                reporter.stop()
                try:
                    # The end-of-sweep snapshot: even a sweep shorter than the
                    # interval emits at least one complete observation.
                    reporter.poll_once()
                except Exception:  # pragma: no cover - queue already torn down
                    pass
            queue.write_stop()
            for proc in procs:
                try:
                    proc.wait(timeout=60)
                except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                    proc.kill()
                    proc.wait()
            # Close only after every local worker exited: remote workers that
            # poll a vanished TCP server treat it as a stop request anyway.
            queue.close()
        if isinstance(store, ShardedResultStore):
            store.refresh_manifest()
        return [store.load(key, fingerprint) for _, key, fingerprint in keyed]

    def _await_queue(
        self,
        queue: QueueTransport,
        payloads: dict[str, SpecTaskPayload],
        procs: list[subprocess.Popen],
        log_dir: Path,
    ) -> None:
        remaining = set(payloads)
        retries_used: dict[str, int] = {}
        while remaining:
            remaining -= queue.done_ids()
            if not remaining:
                return
            reconcile_failed_tasks(
                queue, remaining, payloads, retries_used, self.runtime_config.task_retries
            )
            self._distributed_requeued += len(queue.requeue_expired())
            if self.runtime_config.work_stealing:
                # Feed starving shards from loaded ones (no-op while every
                # preferred-shard worker still finds work where it looks).
                self._distributed_stolen += len(queue.rebalance())
            if (
                procs
                and all(proc.poll() is not None for proc in procs)
                and not queue.has_live_claims()
            ):
                # Every local worker exited and nobody (local or remote) holds
                # a live lease: without intervention the sweep can never
                # finish, so surface it instead of polling forever.
                codes = [proc.returncode for proc in procs]
                raise ExperimentError(
                    f"all {len(procs)} local distributed workers exited (return codes "
                    f"{codes}) with {len(remaining)} task(s) unfinished; worker logs are "
                    f"under {log_dir}"
                )
            time.sleep(COORDINATOR_POLL_S)

    @staticmethod
    def _spawn_worker(
        target: str | os.PathLike,
        index: int,
        lease_timeout_s: float,
        log_dir: Path | None = None,
        shard: int | None = None,
        secret: str | None = None,
    ) -> subprocess.Popen:
        """Launch one local queue worker against a queue directory or tcp:// url.

        ``shard`` pins the worker's claim preference to one queue shard (the
        coordinator's rebalance steals work over when it starves); ``secret``
        is exported as ``REPRO_QUEUE_SECRET`` — environment, never argv, so it
        cannot leak through a process listing.
        """
        target_text = str(target)
        if log_dir is None:
            address = parse_queue_url(target_text)
            if address.scheme != "file":
                raise ExperimentError(
                    "_spawn_worker needs an explicit log_dir for network transports"
                )
            log_dir = Path(address.path) / "workers"
        source_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = str(source_root) + (os.pathsep + existing if existing else "")
        if secret is not None:
            env["REPRO_QUEUE_SECRET"] = secret
        log_dir.mkdir(parents=True, exist_ok=True)
        command = [
            sys.executable,
            "-m",
            "repro.runtime.worker",
            target_text,
            "--worker-id",
            f"local-{index}",
            "--lease-renew",
            # Heartbeat several times per lease so a live-but-slow worker's
            # claims are never mistaken for a dead worker's.
            str(max(lease_timeout_s / 4.0, 0.05)),
            "--idle-timeout",
            # Orphan bound: if this coordinator dies without writing the stop
            # sentinel, its workers must not poll forever.  A live sweep never
            # idles a worker anywhere near this long — re-queued work appears
            # within one lease timeout.
            str(max(10.0 * lease_timeout_s, 300.0)),
        ]
        if shard is not None:
            command += ["--shard", str(shard)]
        with open(log_dir / f"local-{index}.log", "ab") as log:
            return subprocess.Popen(command, stdout=log, stderr=subprocess.STDOUT, env=env)

    # ------------------------------------------------------------------ parity
    def run_comparison(
        self,
        methods: tuple[str, ...] | list[str],
        splits: list[DatasetSplit] | tuple[DatasetSplit, ...],
    ) -> list[MethodRunResult]:
        """Drop-in replacement for :meth:`ExperimentRunner.run_comparison`.

        Note the ordering difference: the serial runner iterates splits
        outermost, which matches this runner's (split, method) grid order.
        """
        return self.run_grid(methods, list(splits))
