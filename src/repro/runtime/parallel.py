"""Parallel fan-out of the (method, split, seed) experiment grid.

The paper's headline experiments sweep a grid of (method × split × seed)
combinations whose tasks are mutually independent: every task trains and
evaluates one optimizer on one split under its own seeded environment.  The
:class:`ParallelExperimentRunner` exploits that independence by dispatching
tasks onto a :mod:`concurrent.futures` pool while guaranteeing *bit-identical*
results to serial execution:

* **Task isolation** — every task runs against its own database view
  (:meth:`repro.storage.database.Database.with_config` shares the read-only
  table data but gives the task a private buffer pool), so no task can observe
  another task's cache state.
* **Deterministic seeding** — each task's seed is a stable digest of the task
  identity (method, split, repeat), independent of scheduling order.
* **Deterministic timing** — tasks run with
  ``ExperimentConfig.deterministic_timing`` enabled, replacing wall-clock
  inference/training measurement with simulated times (execution latencies
  were already simulated).  Nothing in a task result depends on the wall
  clock, so thread interleaving cannot perturb it.

With a :class:`~repro.runtime.result_store.ResultStore` attached the grid is
resumable: completed tasks are skipped (PostBOUND-style ``skip_existing``) and
fresh results are persisted as they arrive.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.config import PostgresConfig, RuntimeConfig
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.metrics import MethodRunResult
from repro.core.splits import DatasetSplit
from repro.errors import ExperimentError
from repro.runtime.fingerprint import stable_seed
from repro.runtime.plan_cache import PlanCache
from repro.runtime.result_store import ResultStore, TaskKey
from repro.storage.database import Database
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class ExperimentTask:
    """One cell of the experiment grid."""

    method: str
    split: DatasetSplit
    repeat: int = 0
    base_seed: int = 0

    @property
    def task_seed(self) -> int:
        """Deterministic per-task seed — a stable digest of the task identity.

        Independent of grid order and scheduling, so adding or removing other
        tasks never changes this task's result.
        """
        return stable_seed(self.base_seed, self.method, self.split.name, self.repeat)

    def describe(self) -> str:
        return f"{self.method} on {self.split.name} (repeat {self.repeat})"


class ParallelExperimentRunner:
    """Runs the experiment grid concurrently with serial-identical results."""

    def __init__(
        self,
        database: Database,
        workload: Workload,
        config: PostgresConfig | None = None,
        experiment_config: ExperimentConfig | None = None,
        runtime_config: RuntimeConfig | None = None,
        result_store: ResultStore | None = None,
    ) -> None:
        self.database = database
        self.workload = workload
        self.db_config = config or database.config
        base = experiment_config or ExperimentConfig()
        # Deterministic timing is not optional here: without it, per-task
        # results would embed scheduling-dependent wall clocks and the
        # serial-equivalence guarantee (and any resume) would be meaningless.
        self.experiment_config = replace(base, deterministic_timing=True)
        self.runtime_config = runtime_config or RuntimeConfig()
        if result_store is None and self.runtime_config.store_dir is not None:
            result_store = ResultStore(
                self.runtime_config.store_dir,
                skip_existing=self.runtime_config.skip_existing,
            )
        self.result_store = result_store

    # ------------------------------------------------------------------ grid
    def tasks_for(
        self,
        methods: tuple[str, ...] | list[str],
        splits: list[DatasetSplit] | tuple[DatasetSplit, ...],
        repeats: int = 1,
    ) -> list[ExperimentTask]:
        """Expand the (method × split × repeat) grid in deterministic order."""
        if repeats < 1:
            raise ExperimentError("experiment grid needs at least one repeat")
        return [
            ExperimentTask(
                method=method,
                split=split,
                repeat=repeat,
                base_seed=self.experiment_config.seed,
            )
            for repeat in range(repeats)
            for split in splits
            for method in methods
        ]

    # ------------------------------------------------------------------ one task
    def _task_runner(self, task: ExperimentTask) -> ExperimentRunner:
        """A pristine serial runner for one task.

        ``with_config`` shares the immutable table data, indexes and
        statistics but allocates a fresh, empty buffer pool — the task starts
        cold regardless of what other tasks (or earlier grids) executed.
        """
        task_db = self.database.with_config(self.db_config)
        return ExperimentRunner(
            task_db,
            self.workload,
            config=self.db_config,
            experiment_config=self.experiment_config.with_seed(task.task_seed),
            # A zero-capacity cache genuinely disables caching (put() is a
            # no-op); passing None would fall back to the planner's default.
            plan_cache=PlanCache(self.runtime_config.plan_cache_entries),
        )

    def run_task(self, task: ExperimentTask) -> MethodRunResult:
        """Execute one grid cell in isolation (no store interaction)."""
        return self._task_runner(task).run_method(task.method, task.split)

    def task_key(self, task: ExperimentTask) -> TaskKey:
        return TaskKey(
            workload=self.workload.name,
            split_name=task.split.name,
            method=task.method,
            seed=task.task_seed,
        )

    def task_fingerprint(self, task: ExperimentTask) -> str:
        """The store fingerprint of one task (context + split membership)."""
        return self._task_runner(task).task_fingerprint(task.split)

    def _run_or_resume(self, task: ExperimentTask) -> MethodRunResult:
        if self.result_store is None:
            return self.run_task(task)
        # One runner serves both the fingerprint and the (possibly skipped)
        # execution — building a second one per task would double the
        # database-view and plan-cache setup cost.
        runner = self._task_runner(task)
        result, _ = self.result_store.load_or_run(
            self.task_key(task),
            lambda: runner.run_method(task.method, task.split),
            runner.task_fingerprint(task.split),
        )
        return result

    # ------------------------------------------------------------------ fan-out
    def run_grid(
        self,
        methods: tuple[str, ...] | list[str],
        splits: list[DatasetSplit] | tuple[DatasetSplit, ...],
        repeats: int = 1,
    ) -> list[MethodRunResult]:
        """Run every grid cell; results are returned in grid order.

        The output list is ordered by (repeat, split, method) regardless of
        completion order, so downstream reporting is scheduling-independent.
        """
        tasks = self.tasks_for(methods, splits, repeats)
        return self.run_tasks(tasks)

    def run_tasks(self, tasks: list[ExperimentTask]) -> list[MethodRunResult]:
        workers = min(self.runtime_config.workers, max(len(tasks), 1))
        kind = self.runtime_config.executor_kind
        if workers <= 1 or kind == "serial" or len(tasks) <= 1:
            return [self._run_or_resume(task) for task in tasks]
        with self._make_executor(kind, workers) as pool:
            futures = [pool.submit(self._run_or_resume, task) for task in tasks]
            return [future.result() for future in futures]

    @staticmethod
    def _make_executor(kind: str, workers: int) -> Executor:
        if kind == "process":
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-task")

    # ------------------------------------------------------------------ parity
    def run_comparison(
        self,
        methods: tuple[str, ...] | list[str],
        splits: list[DatasetSplit] | tuple[DatasetSplit, ...],
    ) -> list[MethodRunResult]:
        """Drop-in replacement for :meth:`ExperimentRunner.run_comparison`.

        Note the ordering difference: the serial runner iterates splits
        outermost, which matches this runner's (split, method) grid order.
        """
        return self.run_grid(methods, list(splits))
