"""Parallel fan-out of the (method, split, seed) experiment grid.

The paper's headline experiments sweep a grid of (method × split × seed)
combinations whose tasks are mutually independent: every task trains and
evaluates one optimizer on one split under its own seeded environment.  The
:class:`ParallelExperimentRunner` exploits that independence by dispatching
tasks onto a :mod:`concurrent.futures` pool while guaranteeing *bit-identical*
results to serial execution:

* **Task isolation** — every task runs against its own database view
  (:meth:`repro.storage.database.Database.with_config` shares the read-only
  table data but gives the task a private buffer pool), so no task can observe
  another task's cache state.
* **Deterministic seeding** — each task's seed is a stable digest of the task
  identity (method, split, repeat), independent of scheduling order.
* **Deterministic timing** — tasks run with
  ``ExperimentConfig.deterministic_timing`` enabled, replacing wall-clock
  inference/training measurement with simulated times (execution latencies
  were already simulated).  Nothing in a task result depends on the wall
  clock, so thread interleaving cannot perturb it.

* **Spec-based dispatch** — when the database is addressable by a
  :class:`~repro.storage.spec.DatabaseSpec` (it was built through the catalog
  factories, or a spec was passed directly) and the workload is rebuildable by
  name, process-pool tasks ship only a :class:`SpecTaskPayload` of a few
  hundred bytes.  The worker rebuilds — or, via its per-process
  :class:`~repro.storage.registry.DatabaseRegistry`, reuses — the database
  deterministically, so dispatch cost no longer grows with database scale.
  Databases without a spec fall back to legacy whole-database pickling.

With a :class:`~repro.runtime.result_store.ResultStore` attached the grid is
resumable: completed tasks are skipped (PostBOUND-style ``skip_existing``) and
fresh results are persisted as they arrive.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Union

from repro.config import PostgresConfig, RuntimeConfig
from repro.core.experiment import ExperimentConfig, ExperimentRunner
from repro.core.metrics import MethodRunResult
from repro.core.splits import DatasetSplit
from repro.errors import ExperimentError
from repro.runtime.fingerprint import stable_seed
from repro.runtime.plan_cache import PlanCache
from repro.runtime.result_store import ResultStore, TaskKey
from repro.storage.database import Database
from repro.storage.registry import get_process_registry, resolve_database
from repro.storage.spec import DatabaseSpec
from repro.workloads import build_workload, is_registered_workload
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class ExperimentTask:
    """One cell of the experiment grid."""

    method: str
    split: DatasetSplit
    repeat: int = 0
    base_seed: int = 0

    @property
    def task_seed(self) -> int:
        """Deterministic per-task seed — a stable digest of the task identity.

        Independent of grid order and scheduling, so adding or removing other
        tasks never changes this task's result.
        """
        return stable_seed(self.base_seed, self.method, self.split.name, self.repeat)

    def describe(self) -> str:
        return f"{self.method} on {self.split.name} (repeat {self.repeat})"


@dataclass(frozen=True)
class SpecTaskPayload:
    """Everything a worker process needs to run one grid cell, spec-sized.

    The payload replaces the legacy pickle of the whole runner (database
    included): it names the database recipe and the workload, both of which
    the worker rebuilds deterministically.  Its pickled size is a few hundred
    bytes regardless of database scale.
    """

    spec: DatabaseSpec
    workload_name: str
    workload_fingerprint: str
    db_config: PostgresConfig
    experiment_config: ExperimentConfig
    plan_cache_entries: int
    store_root: str | None
    skip_existing: bool
    task: ExperimentTask


#: Per-process memo of worker-rebuilt workloads, keyed by (workload name,
#: database-spec fingerprint): an N-task grid rebinds the workload once per
#: worker process instead of once per task, mirroring the database registry.
_WORKER_WORKLOADS: dict[tuple[str, str], Workload] = {}
_WORKER_WORKLOADS_LOCK = threading.Lock()
_WORKER_WORKLOADS_MAX = 32


def _worker_workload(payload: SpecTaskPayload, database: Database) -> Workload:
    """Rebuild (or reuse) and validate the payload's workload in this process."""
    key = (payload.workload_name, payload.spec.fingerprint())
    with _WORKER_WORKLOADS_LOCK:
        workload = _WORKER_WORKLOADS.get(key)
    if workload is None:
        workload = build_workload(payload.workload_name, database.schema)
        with _WORKER_WORKLOADS_LOCK:
            if len(_WORKER_WORKLOADS) >= _WORKER_WORKLOADS_MAX:
                _WORKER_WORKLOADS.clear()
            workload = _WORKER_WORKLOADS.setdefault(key, workload)
    if workload.fingerprint() != payload.workload_fingerprint:
        # The caller's workload shares a registered name but different
        # content (e.g. a hand-built subset named "job"): refusing here keeps
        # process-pool results from silently diverging from serial/thread
        # execution, which uses the caller's instance.
        raise ExperimentError(
            f"worker rebuild of workload {payload.workload_name!r} does not match the "
            "dispatched workload (content fingerprint mismatch); pass the canonically "
            "built workload, register the custom one under its own name, or use the "
            "thread executor"
        )
    return workload


def _run_spec_task(payload: SpecTaskPayload) -> MethodRunResult:
    """Worker-side entry point of spec-based dispatch (module level: picklable).

    The database comes out of the worker's process registry — built once on
    the first task, reused by every later task of the same spec (and, under a
    forking start method, inherited from the parent without any rebuild).
    The workload is likewise rebuilt once per process and reused.
    """
    database = get_process_registry().get(payload.spec)
    workload = _worker_workload(payload, database)
    store = (
        ResultStore(payload.store_root, skip_existing=payload.skip_existing)
        if payload.store_root is not None
        else None
    )
    runner = ParallelExperimentRunner(
        database,
        workload,
        config=payload.db_config,
        experiment_config=payload.experiment_config,
        runtime_config=RuntimeConfig(
            workers=1,
            executor_kind="serial",
            plan_cache_entries=payload.plan_cache_entries,
        ),
        result_store=store,
    )
    return runner._run_or_resume(payload.task)


class ParallelExperimentRunner:
    """Runs the experiment grid concurrently with serial-identical results."""

    def __init__(
        self,
        database: Union[Database, DatabaseSpec],
        workload: Workload,
        config: PostgresConfig | None = None,
        experiment_config: ExperimentConfig | None = None,
        runtime_config: RuntimeConfig | None = None,
        result_store: ResultStore | None = None,
    ) -> None:
        #: The dispatchable recipe: either the spec passed in, or the one the
        #: database carries from its factory build.  ``None`` means the
        #: database cannot be rebuilt remotely (legacy pickling applies).
        self.database_spec = database if isinstance(database, DatabaseSpec) else database.spec
        self.database = resolve_database(database)
        self.workload = workload
        self.db_config = config or self.database.config
        base = experiment_config or ExperimentConfig()
        # Deterministic timing is not optional here: without it, per-task
        # results would embed scheduling-dependent wall clocks and the
        # serial-equivalence guarantee (and any resume) would be meaningless.
        self.experiment_config = replace(base, deterministic_timing=True)
        self.runtime_config = runtime_config or RuntimeConfig()
        if result_store is None and self.runtime_config.store_dir is not None:
            result_store = ResultStore(
                self.runtime_config.store_dir,
                skip_existing=self.runtime_config.skip_existing,
            )
        self.result_store = result_store

    # ------------------------------------------------------------------ grid
    def tasks_for(
        self,
        methods: tuple[str, ...] | list[str],
        splits: list[DatasetSplit] | tuple[DatasetSplit, ...],
        repeats: int = 1,
    ) -> list[ExperimentTask]:
        """Expand the (method × split × repeat) grid in deterministic order."""
        if repeats < 1:
            raise ExperimentError("experiment grid needs at least one repeat")
        return [
            ExperimentTask(
                method=method,
                split=split,
                repeat=repeat,
                base_seed=self.experiment_config.seed,
            )
            for repeat in range(repeats)
            for split in splits
            for method in methods
        ]

    # ------------------------------------------------------------------ one task
    def _task_runner(self, task: ExperimentTask) -> ExperimentRunner:
        """A pristine serial runner for one task.

        ``with_config`` shares the immutable table data, indexes and
        statistics but allocates a fresh, empty buffer pool — the task starts
        cold regardless of what other tasks (or earlier grids) executed.
        """
        task_db = self.database.with_config(self.db_config)
        return ExperimentRunner(
            task_db,
            self.workload,
            config=self.db_config,
            experiment_config=self.experiment_config.with_seed(task.task_seed),
            # A zero-capacity cache genuinely disables caching (put() is a
            # no-op); passing None would fall back to the planner's default.
            plan_cache=PlanCache(self.runtime_config.plan_cache_entries),
        )

    def run_task(self, task: ExperimentTask) -> MethodRunResult:
        """Execute one grid cell in isolation (no store interaction)."""
        return self._task_runner(task).run_method(task.method, task.split)

    def task_key(self, task: ExperimentTask) -> TaskKey:
        return TaskKey(
            workload=self.workload.name,
            split_name=task.split.name,
            method=task.method,
            seed=task.task_seed,
        )

    def task_fingerprint(self, task: ExperimentTask) -> str:
        """The store fingerprint of one task (context + split membership)."""
        return self._task_runner(task).task_fingerprint(task.split)

    def _run_or_resume(self, task: ExperimentTask) -> MethodRunResult:
        if self.result_store is None:
            return self.run_task(task)
        # One runner serves both the fingerprint and the (possibly skipped)
        # execution — building a second one per task would double the
        # database-view and plan-cache setup cost.
        runner = self._task_runner(task)
        result, _ = self.result_store.load_or_run(
            self.task_key(task),
            lambda: runner.run_method(task.method, task.split),
            runner.task_fingerprint(task.split),
        )
        return result

    # ------------------------------------------------------------------ fan-out
    def run_grid(
        self,
        methods: tuple[str, ...] | list[str],
        splits: list[DatasetSplit] | tuple[DatasetSplit, ...],
        repeats: int = 1,
    ) -> list[MethodRunResult]:
        """Run every grid cell; results are returned in grid order.

        The output list is ordered by (repeat, split, method) regardless of
        completion order, so downstream reporting is scheduling-independent.
        """
        tasks = self.tasks_for(methods, splits, repeats)
        return self.run_tasks(tasks)

    # ------------------------------------------------------------------ spec dispatch
    @property
    def uses_spec_dispatch(self) -> bool:
        """Whether process-pool tasks ship specs instead of pickled databases.

        Requires a database spec (factory-built database or spec passed to the
        constructor) and a workload rebuildable by name in the worker.
        """
        return self.database_spec is not None and is_registered_workload(self.workload.name)

    def spec_payload(self, task: ExperimentTask) -> SpecTaskPayload:
        """The scale-independent dispatch payload of one grid cell."""
        if not self.uses_spec_dispatch:
            raise ExperimentError(
                "spec dispatch unavailable: the database carries no DatabaseSpec "
                "or the workload is not registered for rebuilding"
            )
        store_root = str(self.result_store.root) if self.result_store is not None else None
        return SpecTaskPayload(
            spec=self.database_spec,
            workload_name=self.workload.name,
            workload_fingerprint=self.workload.fingerprint(),
            db_config=self.db_config,
            experiment_config=self.experiment_config,
            plan_cache_entries=self.runtime_config.plan_cache_entries,
            store_root=store_root,
            skip_existing=self.result_store.skip_existing if self.result_store else True,
            task=task,
        )

    def run_tasks(self, tasks: list[ExperimentTask]) -> list[MethodRunResult]:
        workers = min(self.runtime_config.workers, max(len(tasks), 1))
        kind = self.runtime_config.executor_kind
        if workers <= 1 or kind == "serial" or len(tasks) <= 1:
            return [self._run_or_resume(task) for task in tasks]
        with self._make_executor(kind, workers) as pool:
            if kind == "process" and self.uses_spec_dispatch:
                # Ship the spec, not the database: per-task pickling cost is
                # constant in database scale.  Note that store bookkeeping
                # (loaded/stored counters) then happens in the workers; the
                # parent-side ResultStore counters only reflect parent loads.
                futures = [pool.submit(_run_spec_task, self.spec_payload(task)) for task in tasks]
            else:
                futures = [pool.submit(self._run_or_resume, task) for task in tasks]
            return [future.result() for future in futures]

    @staticmethod
    def _make_executor(kind: str, workers: int) -> Executor:
        if kind == "process":
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-task")

    # ------------------------------------------------------------------ parity
    def run_comparison(
        self,
        methods: tuple[str, ...] | list[str],
        splits: list[DatasetSplit] | tuple[DatasetSplit, ...],
    ) -> list[MethodRunResult]:
        """Drop-in replacement for :meth:`ExperimentRunner.run_comparison`.

        Note the ordering difference: the serial runner iterates splits
        outermost, which matches this runner's (split, method) grid order.
        """
        return self.run_grid(methods, list(splits))
