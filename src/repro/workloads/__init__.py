"""Benchmark workloads: JOB-style, STACK-style and Ext-JOB query families.

A :class:`Workload` is an ordered collection of :class:`BenchmarkQuery`
objects, each tagged with the base-query family it was generated from.  The
family structure (e.g. JOB's ``1a``/``1b``/``1c``/``1d`` variants of base
query 1) is what the paper's three dataset-split strategies operate on
(Section 7.2), so it is a first-class concept here.
"""

from repro.workloads.workload import BenchmarkQuery, Workload
from repro.workloads.job import build_job_workload, JOB_FAMILY_SIZES
from repro.workloads.stack import build_stack_workload
from repro.workloads.ext_job import build_ext_job_workload

__all__ = [
    "BenchmarkQuery",
    "Workload",
    "build_job_workload",
    "JOB_FAMILY_SIZES",
    "build_stack_workload",
    "build_ext_job_workload",
]
