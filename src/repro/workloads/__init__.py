"""Benchmark workloads: JOB-style, STACK-style and Ext-JOB query families.

A :class:`Workload` is an ordered collection of :class:`BenchmarkQuery`
objects, each tagged with the base-query family it was generated from.  The
family structure (e.g. JOB's ``1a``/``1b``/``1c``/``1d`` variants of base
query 1) is what the paper's three dataset-split strategies operate on
(Section 7.2), so it is a first-class concept here.

Workloads are rebuildable by name: :func:`build_workload` maps a registered
workload id (``"job"``, ``"stack"``, ``"ext_job"``) plus a schema back to the
bound workload.  The parallel runtime uses this to ship only the workload
*name* to worker processes — the worker rebinds the queries against the
schema of its spec-rebuilt database instead of unpickling hundreds of bound
query objects.
"""

from typing import Callable

from repro.catalog.schema import Schema
from repro.errors import WorkloadError
from repro.workloads.workload import BenchmarkQuery, Workload
from repro.workloads.job import build_job_workload, JOB_FAMILY_SIZES
from repro.workloads.stack import build_stack_workload
from repro.workloads.ext_job import build_ext_job_workload
from repro.workloads.random_gen import (
    AggregateSamplerConfig,
    JoinSamplerConfig,
    PredicateSamplerConfig,
    RandomSqlGenerator,
    build_random_workload,
)


def _build_default_random_workload(schema: Schema) -> Workload:
    """The registered ``"random"`` workload: fixed count/seed so by-name
    rebuilds in worker processes fingerprint identically."""
    return build_random_workload(schema, count=32, seed=2024, name="random")


#: Registered workload builders: workload name -> ``builder(schema)``.
_WORKLOAD_FACTORIES: dict[str, Callable[[Schema], Workload]] = {
    "job": build_job_workload,
    "stack": build_stack_workload,
    "ext_job": build_ext_job_workload,
    "random": _build_default_random_workload,
}


def register_workload_factory(
    name: str, builder: Callable[[Schema], Workload], overwrite: bool = False
) -> None:
    """Register a workload builder under ``name`` (its ``Workload.name``)."""
    if not overwrite and name in _WORKLOAD_FACTORIES:
        raise WorkloadError(f"workload factory {name!r} is already registered")
    _WORKLOAD_FACTORIES[name] = builder


def registered_workloads() -> list[str]:
    """Sorted names of every registered workload builder."""
    return sorted(_WORKLOAD_FACTORIES)


def build_workload(name: str, schema: Schema) -> Workload:
    """Rebuild the workload registered under ``name`` against ``schema``."""
    try:
        builder = _WORKLOAD_FACTORIES[name]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown workload {name!r}; registered: {registered_workloads()}"
        ) from exc
    return builder(schema)


def is_registered_workload(name: str) -> bool:
    return name in _WORKLOAD_FACTORIES


__all__ = [
    "AggregateSamplerConfig",
    "BenchmarkQuery",
    "JoinSamplerConfig",
    "PredicateSamplerConfig",
    "RandomSqlGenerator",
    "Workload",
    "build_job_workload",
    "JOB_FAMILY_SIZES",
    "build_stack_workload",
    "build_ext_job_workload",
    "build_random_workload",
    "build_workload",
    "is_registered_workload",
    "register_workload_factory",
    "registered_workloads",
]
