"""A JOB-style workload: 113 queries generated from 33 base-query templates.

The real Join Order Benchmark ships 113 hand-written SQL queries over IMDB,
organized in 33 families ("base queries") of 2-6 variants each; variants share
the same tables and joins and differ only in their filters (Section 7.2 of the
paper).  This module reproduces that structure over the synthetic IMDB schema:
same family layout (4+4+3+...+2+3 = 113 queries), join counts ranging from 3
to 16 joins (template 29 is the largest, as in JOB), and per-variant filters
drawn from the same dimension-value pools the data generator uses, so every
filter is satisfiable.
"""

from __future__ import annotations

from repro.catalog.imdb import (
    COMPANY_TYPES,
    COMP_CAST_TYPES,
    COUNTRY_CODES,
    GENRES,
    INFO_TYPES,
    KEYWORD_POOL,
    KIND_TYPES,
    LINK_TYPES,
    NAME_TOKENS,
    ROLE_TYPES,
    TITLE_TOKENS,
)
from repro.catalog.schema import Schema
from repro.workloads.workload import QueryTemplate, Workload, build_workload_from_templates

#: Number of variants of every JOB family (sums to 113, like the real JOB).
JOB_FAMILY_SIZES: dict[str, int] = {
    "1": 4, "2": 4, "3": 3, "4": 3, "5": 3, "6": 6, "7": 3, "8": 4, "9": 4, "10": 3,
    "11": 4, "12": 3, "13": 4, "14": 3, "15": 4, "16": 4, "17": 6, "18": 3, "19": 4,
    "20": 3, "21": 3, "22": 4, "23": 3, "24": 2, "25": 3, "26": 3, "27": 3, "28": 3,
    "29": 3, "30": 3, "31": 3, "32": 2, "33": 3,
}

_YEARS = [1985, 1995, 2000, 2005, 2010, 2015]
_EARLY_YEARS = [1930, 1950, 1970, 1980, 1990, 2000]
_RATINGS = ["5.0", "6.0", "7.0", "8.0", "8.5", "9.0"]
_GENDERS = ["f", "m"]


def _year(i: int) -> int:
    return _YEARS[i % len(_YEARS)]


def _early_year(i: int) -> int:
    return _EARLY_YEARS[i % len(_EARLY_YEARS)]


def _kw(i: int) -> str:
    return KEYWORD_POOL[i % len(KEYWORD_POOL)]


def _country(i: int) -> str:
    return COUNTRY_CODES[i % len(COUNTRY_CODES)]


def _info(i: int) -> str:
    return INFO_TYPES[i % len(INFO_TYPES)]


def _genre(i: int) -> str:
    return GENRES[i % len(GENRES)]


def _ctype(i: int) -> str:
    return COMPANY_TYPES[i % len(COMPANY_TYPES)]


def _kind(i: int) -> str:
    return KIND_TYPES[i % len(KIND_TYPES)]


def _link(i: int) -> str:
    return LINK_TYPES[i % len(LINK_TYPES)]


def _role(i: int) -> str:
    return ROLE_TYPES[i % len(ROLE_TYPES)]


def _cct(i: int) -> str:
    return COMP_CAST_TYPES[i % len(COMP_CAST_TYPES)]


def _title_like(i: int) -> str:
    return f"%{TITLE_TOKENS[i % len(TITLE_TOKENS)]}%"


def _name_like(i: int) -> str:
    return f"%{NAME_TOKENS[i % len(NAME_TOKENS)]}%"


def _gender(i: int) -> str:
    return _GENDERS[i % len(_GENDERS)]


def _rating(i: int) -> str:
    return _RATINGS[i % len(_RATINGS)]


def job_templates() -> list[QueryTemplate]:
    """The 33 JOB-style base-query templates."""
    templates: list[QueryTemplate] = []

    def add(family: str, relations, joins, make_filters) -> None:
        templates.append(
            QueryTemplate(
                family=family,
                relations=relations,
                joins=joins,
                n_variants=JOB_FAMILY_SIZES[family],
                make_filters=make_filters,
            )
        )

    # --- small templates (4-6 relations) -----------------------------------------
    add("1",
        [("ct", "company_type"), ("it", "info_type"), ("mc", "movie_companies"),
         ("mi_idx", "movie_info_idx"), ("t", "title")],
        ["t.id = mc.movie_id", "mc.company_type_id = ct.id",
         "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it.id"],
        lambda i: [
            f"ct.kind = '{_ctype(i)}'",
            f"it.info = '{_info(i + 6)}'",
            f"t.production_year > {_year(i)}",
        ])

    add("2",
        [("cn", "company_name"), ("k", "keyword"), ("mc", "movie_companies"),
         ("mk", "movie_keyword"), ("t", "title")],
        ["t.id = mc.movie_id", "mc.company_id = cn.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id"],
        lambda i: [
            f"cn.country_code = '{_country(i)}'",
            f"k.keyword = '{_kw(i)}'",
        ])

    add("3",
        [("k", "keyword"), ("mi", "movie_info"), ("mk", "movie_keyword"), ("t", "title")],
        ["t.id = mk.movie_id", "mk.keyword_id = k.id", "t.id = mi.movie_id"],
        lambda i: [
            f"k.keyword = '{_kw(i + 3)}'",
            f"mi.info = '{_genre(i)}'",
            f"t.production_year > {_year(i + 1)}",
        ])

    add("4",
        [("it", "info_type"), ("k", "keyword"), ("mi_idx", "movie_info_idx"),
         ("mk", "movie_keyword"), ("t", "title")],
        ["t.id = mi_idx.movie_id", "mi_idx.info_type_id = it.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id"],
        lambda i: [
            "it.info = 'rating'",
            f"k.keyword = '{_kw(i + 5)}'",
            f"mi_idx.info > '{_rating(i)}'",
            f"t.production_year > {_year(i)}",
        ])

    add("5",
        [("ct", "company_type"), ("it", "info_type"), ("mc", "movie_companies"),
         ("mi", "movie_info"), ("t", "title")],
        ["t.id = mc.movie_id", "mc.company_type_id = ct.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id"],
        lambda i: [
            f"ct.kind = '{_ctype(i + 1)}'",
            f"mi.info = '{_genre(i + 2)}'",
            f"t.production_year > {_early_year(i + 3)}",
        ])

    add("6",
        [("ci", "cast_info"), ("k", "keyword"), ("mk", "movie_keyword"),
         ("n", "name"), ("t", "title")],
        ["t.id = ci.movie_id", "ci.person_id = n.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id"],
        lambda i: [
            f"k.keyword = '{_kw(i)}'",
            f"n.name LIKE '{_name_like(i)}'",
            f"t.production_year > {_year(i)}",
        ])

    add("7",
        [("an", "aka_name"), ("ci", "cast_info"), ("it", "info_type"), ("lt", "link_type"),
         ("ml", "movie_link"), ("n", "name"), ("pi", "person_info"), ("t", "title")],
        ["t.id = ci.movie_id", "ci.person_id = n.id", "n.id = an.person_id",
         "n.id = pi.person_id", "pi.info_type_id = it.id",
         "t.id = ml.movie_id", "ml.link_type_id = lt.id"],
        lambda i: [
            "it.info = 'mini biography'",
            f"lt.link = '{_link(i)}'",
            f"n.name_pcode_cf = 'A5362'",
            f"n.gender = '{_gender(i)}'",
            f"t.production_year BETWEEN {_early_year(i + 2)} AND {_year(i + 2)}",
        ])

    add("8",
        [("an", "aka_name"), ("ci", "cast_info"), ("cn", "company_name"),
         ("ct", "company_type"), ("mc", "movie_companies"), ("n", "name"),
         ("rt", "role_type"), ("t", "title")],
        ["t.id = ci.movie_id", "ci.person_id = n.id", "ci.role_id = rt.id",
         "n.id = an.person_id", "t.id = mc.movie_id", "mc.company_id = cn.id",
         "mc.company_type_id = ct.id"],
        lambda i: [
            f"cn.country_code = '{_country(i + 4)}'",
            f"rt.role = '{_role(i)}'",
            f"ci.note = '(voice)'",
            f"mc.note LIKE '%(theatrical)%'",
        ])

    add("9",
        [("an", "aka_name"), ("chn", "char_name"), ("ci", "cast_info"),
         ("cn", "company_name"), ("mc", "movie_companies"), ("n", "name"),
         ("rt", "role_type"), ("t", "title")],
        ["t.id = ci.movie_id", "ci.person_id = n.id", "ci.person_role_id = chn.id",
         "ci.role_id = rt.id", "n.id = an.person_id",
         "t.id = mc.movie_id", "mc.company_id = cn.id"],
        lambda i: [
            f"ci.note = '(voice)'",
            f"cn.country_code = '{_country(i)}'",
            f"n.gender = 'f'",
            f"rt.role = '{_role(i + 1)}'",
            f"t.production_year BETWEEN {_year(i)} AND 2015",
        ])

    add("10",
        [("chn", "char_name"), ("ci", "cast_info"), ("cn", "company_name"),
         ("ct", "company_type"), ("mc", "movie_companies"), ("rt", "role_type"),
         ("t", "title")],
        ["t.id = ci.movie_id", "ci.person_role_id = chn.id", "ci.role_id = rt.id",
         "t.id = mc.movie_id", "mc.company_id = cn.id", "mc.company_type_id = ct.id"],
        lambda i: [
            f"ci.note LIKE '%(voice)%'",
            f"cn.country_code = '{_country(i + 2)}'",
            f"rt.role = '{_role(i + 2)}'",
            f"t.production_year > {_year(i + 2)}",
        ])

    # --- medium templates (8-11 relations) ----------------------------------------
    add("11",
        [("cn", "company_name"), ("ct", "company_type"), ("k", "keyword"),
         ("lt", "link_type"), ("mc", "movie_companies"), ("mk", "movie_keyword"),
         ("ml", "movie_link"), ("t", "title")],
        ["t.id = mc.movie_id", "mc.company_id = cn.id", "mc.company_type_id = ct.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id",
         "t.id = ml.movie_id", "ml.link_type_id = lt.id"],
        lambda i: [
            f"cn.country_code = '{_country(i)}'",
            f"k.keyword = '{_kw(i + 1)}'",
            f"lt.link LIKE '%follow%'",
            f"t.production_year BETWEEN {_early_year(i + 1)} AND {_year(i + 3)}",
        ])

    add("12",
        [("cn", "company_name"), ("ct", "company_type"), ("it", "info_type"),
         ("it2", "info_type"), ("mc", "movie_companies"), ("mi", "movie_info"),
         ("mi_idx", "movie_info_idx"), ("t", "title")],
        ["t.id = mc.movie_id", "mc.company_id = cn.id", "mc.company_type_id = ct.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it2.id"],
        lambda i: [
            f"cn.country_code = '{_country(i + 1)}'",
            f"ct.kind = '{_ctype(i)}'",
            f"it.info = 'genres'",
            "it2.info = 'rating'",
            f"mi.info = '{_genre(i + 1)}'",
            f"mi_idx.info > '{_rating(i + 1)}'",
        ])

    add("13",
        [("cn", "company_name"), ("ct", "company_type"), ("it", "info_type"),
         ("it2", "info_type"), ("kt", "kind_type"), ("mc", "movie_companies"),
         ("mi", "movie_info"), ("mi_idx", "movie_info_idx"), ("t", "title")],
        ["t.id = mc.movie_id", "mc.company_id = cn.id", "mc.company_type_id = ct.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it2.id",
         "t.kind_id = kt.id"],
        lambda i: [
            f"cn.country_code = '{_country(i + 3)}'",
            "it.info = 'release dates'",
            "it2.info = 'rating'",
            f"kt.kind = '{_kind(i)}'",
            f"t.production_year > {_year(i + 1)}",
        ])

    add("14",
        [("cn", "company_name"), ("it", "info_type"), ("it2", "info_type"),
         ("k", "keyword"), ("kt", "kind_type"), ("mc", "movie_companies"),
         ("mi", "movie_info"), ("mi_idx", "movie_info_idx"), ("mk", "movie_keyword"),
         ("t", "title")],
        ["t.id = mc.movie_id", "mc.company_id = cn.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it2.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id", "t.kind_id = kt.id"],
        lambda i: [
            "it.info = 'countries'",
            "it2.info = 'rating'",
            f"k.keyword = '{_kw(i + 2)}'",
            f"kt.kind = '{_kind(i)}'",
            f"mi.info = '{_country(i)}'",
            f"t.production_year > {_year(i)}",
        ])

    add("15",
        [("at", "aka_title"), ("cn", "company_name"), ("ct", "company_type"),
         ("it", "info_type"), ("k", "keyword"), ("mc", "movie_companies"),
         ("mi", "movie_info"), ("mk", "movie_keyword"), ("t", "title")],
        ["t.id = at.movie_id", "t.id = mc.movie_id", "mc.company_id = cn.id",
         "mc.company_type_id = ct.id", "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id"],
        lambda i: [
            f"cn.country_code = '{_country(i)}'",
            "it.info = 'release dates'",
            f"k.keyword = '{_kw(i + 7)}'",
            f"mc.note LIKE '%(VHS)%'",
            f"t.production_year > {_year(i + 2)}",
        ])

    add("16",
        [("an", "aka_name"), ("ci", "cast_info"), ("cn", "company_name"),
         ("k", "keyword"), ("mc", "movie_companies"), ("mk", "movie_keyword"),
         ("n", "name"), ("t", "title")],
        ["t.id = ci.movie_id", "ci.person_id = n.id", "n.id = an.person_id",
         "t.id = mc.movie_id", "mc.company_id = cn.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id"],
        lambda i: [
            f"cn.country_code = '{_country(i + 5)}'",
            f"k.keyword = '{_kw(i)}'",
            f"t.episode_nr > {5 + i}",
        ])

    add("17",
        [("ci", "cast_info"), ("cn", "company_name"), ("k", "keyword"),
         ("mc", "movie_companies"), ("mk", "movie_keyword"), ("n", "name"),
         ("t", "title")],
        ["t.id = ci.movie_id", "ci.person_id = n.id",
         "t.id = mc.movie_id", "mc.company_id = cn.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id"],
        lambda i: [
            "k.keyword = 'character-name-in-title'",
            f"n.name LIKE '{_name_like(i)}'",
            f"cn.country_code = '{_country(i)}'",
        ])

    add("18",
        [("ci", "cast_info"), ("it", "info_type"), ("it2", "info_type"),
         ("mi", "movie_info"), ("mi_idx", "movie_info_idx"), ("n", "name"),
         ("t", "title")],
        ["t.id = ci.movie_id", "ci.person_id = n.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it2.id"],
        lambda i: [
            "it.info = 'genres'",
            "it2.info = 'votes'",
            f"n.gender = '{_gender(i)}'",
            f"mi.info = '{_genre(i + 4)}'",
        ])

    add("19",
        [("an", "aka_name"), ("chn", "char_name"), ("ci", "cast_info"),
         ("cn", "company_name"), ("it", "info_type"), ("mc", "movie_companies"),
         ("mi", "movie_info"), ("n", "name"), ("rt", "role_type"), ("t", "title")],
        ["t.id = ci.movie_id", "ci.person_id = n.id", "ci.person_role_id = chn.id",
         "ci.role_id = rt.id", "n.id = an.person_id",
         "t.id = mc.movie_id", "mc.company_id = cn.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id"],
        lambda i: [
            "it.info = 'release dates'",
            f"ci.note = '(voice)'",
            f"cn.country_code = '{_country(i)}'",
            f"n.gender = 'f'",
            f"rt.role = 'actress'",
            f"t.production_year > {_year(i)}",
        ])

    add("20",
        [("cc", "complete_cast"), ("cct1", "comp_cast_type"), ("cct2", "comp_cast_type"),
         ("chn", "char_name"), ("ci", "cast_info"), ("k", "keyword"),
         ("kt", "kind_type"), ("mk", "movie_keyword"), ("n", "name"), ("t", "title")],
        ["t.id = cc.movie_id", "cc.subject_id = cct1.id", "cc.status_id = cct2.id",
         "t.id = ci.movie_id", "ci.person_id = n.id", "ci.person_role_id = chn.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id", "t.kind_id = kt.id"],
        lambda i: [
            "cct1.kind = 'cast'",
            f"cct2.kind LIKE '%complete%'",
            f"k.keyword = '{_kw(i + 10)}'",
            f"kt.kind = '{_kind(i)}'",
            f"chn.name LIKE '%{['Queen', 'King', 'Agent'][i % 3]}%'",
            f"t.production_year > {_year(i + 4)}",
        ])

    add("21",
        [("cn", "company_name"), ("ct", "company_type"), ("k", "keyword"),
         ("lt", "link_type"), ("mc", "movie_companies"), ("mi", "movie_info"),
         ("mk", "movie_keyword"), ("ml", "movie_link"), ("t", "title")],
        ["t.id = mc.movie_id", "mc.company_id = cn.id", "mc.company_type_id = ct.id",
         "t.id = mi.movie_id", "t.id = mk.movie_id", "mk.keyword_id = k.id",
         "t.id = ml.movie_id", "ml.link_type_id = lt.id"],
        lambda i: [
            f"cn.country_code = '{_country(i + 6)}'",
            f"k.keyword = '{_kw(i + 4)}'",
            f"lt.link LIKE '%follow%'",
            f"mi.info = '{_genre(i)}'",
            f"t.production_year BETWEEN {_early_year(i + 3)} AND {_year(i + 4)}",
        ])

    add("22",
        [("cn", "company_name"), ("ct", "company_type"), ("it", "info_type"),
         ("it2", "info_type"), ("k", "keyword"), ("kt", "kind_type"),
         ("mc", "movie_companies"), ("mi", "movie_info"), ("mi_idx", "movie_info_idx"),
         ("mk", "movie_keyword"), ("t", "title")],
        ["t.id = mc.movie_id", "mc.company_id = cn.id", "mc.company_type_id = ct.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it2.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id", "t.kind_id = kt.id"],
        lambda i: [
            f"cn.country_code != '[us]'",
            "it.info = 'countries'",
            "it2.info = 'rating'",
            f"k.keyword IN ('murder', 'blood', 'violence', 'revenge')",
            f"kt.kind IN ('movie', 'episode')",
            f"mi_idx.info < '{_rating(i + 3)}'",
            f"t.production_year > {_year(i + 1)}",
        ])

    # --- large templates (11-17 relations) -----------------------------------------
    add("23",
        [("cc", "complete_cast"), ("cct1", "comp_cast_type"), ("cn", "company_name"),
         ("ct", "company_type"), ("it", "info_type"), ("k", "keyword"),
         ("kt", "kind_type"), ("mc", "movie_companies"), ("mi", "movie_info"),
         ("mk", "movie_keyword"), ("t", "title")],
        ["t.id = cc.movie_id", "cc.status_id = cct1.id",
         "t.id = mc.movie_id", "mc.company_id = cn.id", "mc.company_type_id = ct.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id", "t.kind_id = kt.id"],
        lambda i: [
            "cct1.kind = 'complete+verified'",
            f"cn.country_code = '{_country(i)}'",
            "it.info = 'release dates'",
            f"k.keyword = '{_kw(i + 12)}'",
            "kt.kind IN ('movie', 'tv movie')",
            f"t.production_year > {_year(i + 2)}",
        ])

    add("24",
        [("an", "aka_name"), ("chn", "char_name"), ("ci", "cast_info"),
         ("cn", "company_name"), ("it", "info_type"), ("k", "keyword"),
         ("mc", "movie_companies"), ("mi", "movie_info"), ("mk", "movie_keyword"),
         ("n", "name"), ("rt", "role_type"), ("t", "title")],
        ["t.id = ci.movie_id", "ci.person_id = n.id", "ci.person_role_id = chn.id",
         "ci.role_id = rt.id", "n.id = an.person_id",
         "t.id = mc.movie_id", "mc.company_id = cn.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id"],
        lambda i: [
            "it.info = 'release dates'",
            f"ci.note IN ('(voice)', '(uncredited)')",
            f"cn.country_code = '{_country(i)}'",
            f"k.keyword IN ('hero', 'martial-arts', 'blood')",
            "n.gender = 'f'",
            "rt.role = 'actress'",
            f"t.production_year > {_year(i + 3)}",
        ])

    add("25",
        [("ci", "cast_info"), ("it", "info_type"), ("it2", "info_type"),
         ("k", "keyword"), ("mi", "movie_info"), ("mi_idx", "movie_info_idx"),
         ("mk", "movie_keyword"), ("n", "name"), ("rt", "role_type"), ("t", "title")],
        ["t.id = ci.movie_id", "ci.person_id = n.id", "ci.role_id = rt.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it2.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id"],
        lambda i: [
            "it.info = 'genres'",
            "it2.info = 'votes'",
            f"k.keyword IN ('murder', 'violence', 'blood', 'revenge')",
            f"mi.info = 'Horror'",
            f"n.gender = '{_gender(i + 1)}'",
            "rt.role = 'actor'",
        ])

    add("26",
        [("cc", "complete_cast"), ("cct1", "comp_cast_type"), ("cct2", "comp_cast_type"),
         ("chn", "char_name"), ("ci", "cast_info"), ("it", "info_type"),
         ("k", "keyword"), ("kt", "kind_type"), ("mi_idx", "movie_info_idx"),
         ("mk", "movie_keyword"), ("n", "name"), ("t", "title")],
        ["t.id = cc.movie_id", "cc.subject_id = cct1.id", "cc.status_id = cct2.id",
         "t.id = ci.movie_id", "ci.person_id = n.id", "ci.person_role_id = chn.id",
         "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id", "t.kind_id = kt.id"],
        lambda i: [
            "cct1.kind = 'cast'",
            "cct2.kind LIKE '%complete%'",
            "it.info = 'rating'",
            f"k.keyword IN ('superhero', 'marvel-comics', 'based-on-comic', 'fight')",
            f"kt.kind = 'movie'",
            f"mi_idx.info > '{_rating(i + 2)}'",
            f"t.production_year > {_year(i)}",
        ])

    add("27",
        [("cc", "complete_cast"), ("cct1", "comp_cast_type"), ("cct2", "comp_cast_type"),
         ("cn", "company_name"), ("ct", "company_type"), ("k", "keyword"),
         ("lt", "link_type"), ("mc", "movie_companies"), ("mi", "movie_info"),
         ("mk", "movie_keyword"), ("ml", "movie_link"), ("t", "title")],
        ["t.id = cc.movie_id", "cc.subject_id = cct1.id", "cc.status_id = cct2.id",
         "t.id = mc.movie_id", "mc.company_id = cn.id", "mc.company_type_id = ct.id",
         "t.id = mi.movie_id", "t.id = mk.movie_id", "mk.keyword_id = k.id",
         "t.id = ml.movie_id", "ml.link_type_id = lt.id"],
        lambda i: [
            "cct1.kind = 'cast'",
            "cct2.kind = 'complete'",
            f"cn.country_code = '{_country(i + 8)}'",
            f"ct.kind = '{_ctype(i)}'",
            f"k.keyword = '{_kw(i + 1)}'",
            "lt.link LIKE '%follow%'",
            f"mi.info = '{_genre(i + 3)}'",
            f"t.production_year BETWEEN {_early_year(i + 4)} AND {_year(i + 5)}",
        ])

    add("28",
        [("cc", "complete_cast"), ("cct1", "comp_cast_type"), ("cct2", "comp_cast_type"),
         ("cn", "company_name"), ("ct", "company_type"), ("it", "info_type"),
         ("it2", "info_type"), ("k", "keyword"), ("kt", "kind_type"),
         ("mc", "movie_companies"), ("mi", "movie_info"), ("mi_idx", "movie_info_idx"),
         ("mk", "movie_keyword"), ("t", "title")],
        ["t.id = cc.movie_id", "cc.subject_id = cct1.id", "cc.status_id = cct2.id",
         "t.id = mc.movie_id", "mc.company_id = cn.id", "mc.company_type_id = ct.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it2.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id", "t.kind_id = kt.id"],
        lambda i: [
            "cct1.kind = 'crew'",
            "cct2.kind != 'complete+verified'",
            f"cn.country_code != '[us]'",
            "it.info = 'countries'",
            "it2.info = 'rating'",
            f"k.keyword IN ('murder', 'web', 'blood')",
            "kt.kind IN ('movie', 'episode')",
            f"mi_idx.info < '{_rating(i + 4)}'",
            f"t.production_year > {_year(i + 2)}",
        ])

    add("29",
        [("an", "aka_name"), ("cc", "complete_cast"), ("cct1", "comp_cast_type"),
         ("cct2", "comp_cast_type"), ("chn", "char_name"), ("ci", "cast_info"),
         ("cn", "company_name"), ("it", "info_type"), ("it2", "info_type"),
         ("k", "keyword"), ("mc", "movie_companies"), ("mi", "movie_info"),
         ("mi_idx", "movie_info_idx"), ("mk", "movie_keyword"), ("n", "name"),
         ("rt", "role_type"), ("t", "title")],
        ["t.id = cc.movie_id", "cc.subject_id = cct1.id", "cc.status_id = cct2.id",
         "t.id = ci.movie_id", "ci.person_id = n.id", "ci.person_role_id = chn.id",
         "ci.role_id = rt.id", "n.id = an.person_id",
         "t.id = mc.movie_id", "mc.company_id = cn.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it2.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id"],
        lambda i: [
            "cct1.kind = 'cast'",
            "cct2.kind = 'complete+verified'",
            f"chn.name LIKE '%Queen%'",
            f"ci.note IN ('(voice)', '(as himself)')",
            f"cn.country_code = '{_country(i)}'",
            "it.info = 'release dates'",
            "it2.info = 'trivia'",
            "k.keyword = 'hero'",
            "n.gender = 'f'",
            "rt.role = 'actress'",
            f"t.production_year BETWEEN {_year(i)} AND 2015",
        ])

    add("30",
        [("cc", "complete_cast"), ("cct1", "comp_cast_type"), ("cct2", "comp_cast_type"),
         ("ci", "cast_info"), ("it", "info_type"), ("it2", "info_type"),
         ("k", "keyword"), ("mi", "movie_info"), ("mi_idx", "movie_info_idx"),
         ("mk", "movie_keyword"), ("n", "name"), ("t", "title")],
        ["t.id = cc.movie_id", "cc.subject_id = cct1.id", "cc.status_id = cct2.id",
         "t.id = ci.movie_id", "ci.person_id = n.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it2.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id"],
        lambda i: [
            "cct1.kind = 'cast'",
            "cct2.kind LIKE '%complete%'",
            "it.info = 'genres'",
            "it2.info = 'votes'",
            f"k.keyword IN ('murder', 'violence', 'blood')",
            f"mi.info IN ('Horror', 'Thriller')",
            "n.gender = 'm'",
            f"t.production_year > {_year(i)}",
        ])

    add("31",
        [("ci", "cast_info"), ("cn", "company_name"), ("it", "info_type"),
         ("it2", "info_type"), ("k", "keyword"), ("mc", "movie_companies"),
         ("mi", "movie_info"), ("mi_idx", "movie_info_idx"), ("mk", "movie_keyword"),
         ("n", "name"), ("rt", "role_type"), ("t", "title")],
        ["t.id = ci.movie_id", "ci.person_id = n.id", "ci.role_id = rt.id",
         "t.id = mc.movie_id", "mc.company_id = cn.id",
         "t.id = mi.movie_id", "mi.info_type_id = it.id",
         "t.id = mi_idx.movie_id", "mi_idx.info_type_id = it2.id",
         "t.id = mk.movie_id", "mk.keyword_id = k.id"],
        lambda i: [
            "it.info = 'genres'",
            "it2.info = 'votes'",
            f"k.keyword IN ('murder', 'violence', 'blood', 'revenge')",
            f"mi.info IN ('Horror', 'Action', 'Sci-Fi', 'Thriller')",
            "n.gender = 'm'",
            f"cn.name LIKE '%{['Film', 'Warner', 'Entertainment'][i % 3]}%'",
            f"rt.role = '{_role(i)}'",
        ])

    add("32",
        [("k", "keyword"), ("lt", "link_type"), ("mk", "movie_keyword"),
         ("ml", "movie_link"), ("t", "title")],
        ["t.id = mk.movie_id", "mk.keyword_id = k.id",
         "t.id = ml.movie_id", "ml.link_type_id = lt.id"],
        lambda i: [
            f"k.keyword = '{['second-part', 'character-name-in-title'][i % 2]}'",
        ])

    add("33",
        [("cn1", "company_name"), ("cn2", "company_name"), ("it1", "info_type"),
         ("it2", "info_type"), ("kt1", "kind_type"), ("kt2", "kind_type"),
         ("lt", "link_type"), ("mc1", "movie_companies"), ("mc2", "movie_companies"),
         ("mi_idx1", "movie_info_idx"), ("mi_idx2", "movie_info_idx"),
         ("ml", "movie_link"), ("t1", "title"), ("t2", "title")],
        ["ml.movie_id = t1.id", "ml.linked_movie_id = t2.id", "ml.link_type_id = lt.id",
         "mi_idx1.movie_id = t1.id", "mi_idx1.info_type_id = it1.id",
         "mi_idx2.movie_id = t2.id", "mi_idx2.info_type_id = it2.id",
         "t1.kind_id = kt1.id", "t2.kind_id = kt2.id",
         "mc1.movie_id = t1.id", "mc1.company_id = cn1.id",
         "mc2.movie_id = t2.id", "mc2.company_id = cn2.id"],
        lambda i: [
            f"cn1.country_code = '{_country(i)}'",
            "it1.info = 'rating'",
            "it2.info = 'rating'",
            "kt1.kind = 'tv series'",
            f"kt2.kind IN ('tv series', 'episode')",
            "lt.link IN ('sequel', 'follows', 'followed by')",
            f"mi_idx2.info < '{_rating(i + 1)}'",
            f"t2.production_year BETWEEN {_year(i)} AND 2015",
        ])

    return templates


def build_job_workload(schema: Schema) -> Workload:
    """Build the 113-query JOB-style workload bound against ``schema``."""
    return build_workload_from_templates("job", schema, job_templates())
