"""A seeded random SQL generator walking the schema's foreign-key graph.

Inspired by the sampler-config style of defio/sqlgen: three small frozen
configs (:class:`JoinSamplerConfig`, :class:`PredicateSamplerConfig`,
:class:`AggregateSamplerConfig`) describe the query distribution, and
:class:`RandomSqlGenerator` turns ``(schema, seed, index)`` into one SQL
string deterministically.  Every emitted query *binds* — the generator only
produces shapes the binder accepts:

* The FROM clause is a chain of explicit ``JOIN ... ON`` clauses whose ON
  conditions always anchor the newly introduced alias on an alias that is
  already in scope, walking foreign-key edges in either direction (so both
  fan-out and self-joins through a shared parent occur naturally).
* ``LEFT``/``FULL OUTER JOIN`` clauses are sampled with configurable
  probability.  The binder's reorderability rules are respected by
  construction: inner joins never anchor on a nullable (outer-introduced)
  alias, and once a FULL join has made every alias nullable only outer
  clauses follow.
* Filters are single-table predicates (integer comparisons and
  ``IS [NOT] NULL`` on nullable columns — deliberately NULL-heavy), which the
  dialect applies at scan level below any join.
* The SELECT list is aggregate-only (``COUNT(*)`` plus optional ``MIN``/
  ``MAX``), optionally grouped — the decoration shapes both engines must
  reproduce byte-identically.

The per-query RNG is ``random.Random(stable_seed(schema.name, seed, index))``:
changing the index reseeds from scratch, so a single ``(schema, seed)`` pair
addresses millions of distinct, reproducible queries with no generation-order
coupling — query ``i`` is the same whether or not queries ``0..i-1`` were
ever rendered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog.schema import ColumnType, Schema
from repro.errors import WorkloadError
from repro.runtime.fingerprint import stable_seed
from repro.sql.binder import bind_query
from repro.sql.parser import parse_select
from repro.workloads.workload import BenchmarkQuery, Workload


def _check_fraction(name: str, value: float) -> None:
    """A probability knob outside [0, 1] silently skews every sample after it
    (``rng.random() < 1.7`` is just "always"), so the configs reject it up
    front instead."""
    if not 0.0 <= value <= 1.0:
        raise WorkloadError(f"{name} must be within [0, 1], got {value!r}")


@dataclass(frozen=True)
class JoinSamplerConfig:
    """Distribution of the join chain."""

    min_joins: int = 0
    max_joins: int = 4
    #: Probability that a sampled join clause is an outer join.
    outer_fraction: float = 0.35
    #: Probability that a sampled *outer* join is FULL rather than LEFT.
    full_fraction: float = 0.3

    def __post_init__(self) -> None:
        if not 0 <= self.min_joins <= self.max_joins:
            raise WorkloadError("join sampler needs 0 <= min_joins <= max_joins")
        _check_fraction("JoinSamplerConfig.outer_fraction", self.outer_fraction)
        _check_fraction("JoinSamplerConfig.full_fraction", self.full_fraction)


@dataclass(frozen=True)
class PredicateSamplerConfig:
    """Distribution of scan-level filters."""

    max_filters: int = 2
    #: Probability that a sampled filter is ``IS [NOT] NULL`` instead of a
    #: comparison — kept high on purpose: NULL-heavy predicates are where the
    #: sentinel/NULL-extension rules can go wrong.
    null_fraction: float = 0.35
    comparison_ops: tuple[str, ...] = ("=", "<", "<=", ">", ">=")
    #: Inclusive range integer comparison literals are drawn from.
    literal_range: tuple[int, int] = (0, 12)

    def __post_init__(self) -> None:
        if self.max_filters < 0:
            raise WorkloadError(
                f"PredicateSamplerConfig.max_filters must be >= 0, got {self.max_filters!r}"
            )
        _check_fraction("PredicateSamplerConfig.null_fraction", self.null_fraction)
        if self.max_filters > 0 and not self.comparison_ops:
            raise WorkloadError(
                "PredicateSamplerConfig.comparison_ops must not be empty when filters are sampled"
            )
        low, high = self.literal_range
        if low > high:
            raise WorkloadError(
                f"PredicateSamplerConfig.literal_range must be (low, high) with low <= high, "
                f"got {self.literal_range!r}"
            )


@dataclass(frozen=True)
class AggregateSamplerConfig:
    """Distribution of the SELECT list."""

    #: Probability that the query gets a GROUP BY over one sampled column.
    group_by_fraction: float = 0.4
    #: Extra aggregates sampled on top of the always-present ``COUNT(*)``.
    max_aggregates: int = 2
    functions: tuple[str, ...] = ("min", "max")

    def __post_init__(self) -> None:
        _check_fraction("AggregateSamplerConfig.group_by_fraction", self.group_by_fraction)
        if self.max_aggregates < 0:
            raise WorkloadError(
                f"AggregateSamplerConfig.max_aggregates must be >= 0, got {self.max_aggregates!r}"
            )
        if self.max_aggregates > 0 and not self.functions:
            raise WorkloadError(
                "AggregateSamplerConfig.functions must not be empty when aggregates are sampled"
            )


class RandomSqlGenerator:
    """Deterministic ``(schema, seed, index) -> SQL`` sampler."""

    def __init__(
        self,
        schema: Schema,
        seed: int = 0,
        joins: JoinSamplerConfig | None = None,
        predicates: PredicateSamplerConfig | None = None,
        aggregates: AggregateSamplerConfig | None = None,
    ) -> None:
        if len(schema) == 0:
            raise WorkloadError("cannot generate queries over an empty schema")
        self.schema = schema
        self.seed = seed
        self.joins = joins or JoinSamplerConfig()
        self.predicates = predicates or PredicateSamplerConfig()
        self.aggregates = aggregates or AggregateSamplerConfig()
        # Table-level FK adjacency, both directions: table -> [(column,
        # other_table, other_column)].  Sorted for deterministic iteration.
        adjacency: dict[str, list[tuple[str, str, str]]] = {}
        for fk in schema.foreign_keys:
            adjacency.setdefault(fk.child_table, []).append(
                (fk.child_column, fk.parent_table, fk.parent_column)
            )
            adjacency.setdefault(fk.parent_table, []).append(
                (fk.parent_column, fk.child_table, fk.child_column)
            )
        self._adjacency = {table: sorted(edges) for table, edges in adjacency.items()}
        self._tables = schema.table_names()

    # ------------------------------------------------------------------ sampling
    def sql(self, index: int) -> str:
        """Render query number ``index`` (deterministic, order-independent)."""
        rng = random.Random(stable_seed(self.schema.name, self.seed, index))
        aliases, from_sql = self._sample_from_clause(rng)
        filters = self._sample_filters(rng, aliases)
        select_items, group_by = self._sample_select(rng, aliases)
        parts = [f"SELECT {', '.join(select_items)}", f"FROM {from_sql}"]
        if filters:
            parts.append("WHERE " + " AND ".join(filters))
        if group_by:
            parts.append("GROUP BY " + ", ".join(group_by))
        return " ".join(parts)

    def _sample_from_clause(self, rng: random.Random) -> tuple[dict[str, str], str]:
        """Sample the join chain; returns (alias -> table, FROM-clause SQL)."""
        cfg = self.joins
        first = rng.choice(self._tables)
        aliases: dict[str, str] = {"t0": first}
        nullable: set[str] = set()
        pieces = [f"{first} AS t0"]
        target_joins = rng.randint(cfg.min_joins, cfg.max_joins)
        for step in range(1, target_joins + 1):
            clause = self._sample_join_clause(rng, aliases, nullable, f"t{step}")
            if clause is None:
                break
            pieces.append(clause)
        return aliases, " ".join(pieces)

    def _sample_join_clause(
        self,
        rng: random.Random,
        aliases: dict[str, str],
        nullable: set[str],
        new_alias: str,
    ) -> str | None:
        """One JOIN clause anchored on an in-scope alias, or None to stop."""
        outer = rng.random() < self.joins.outer_fraction
        # The binder rejects inner joins anchored on a nullable alias (the
        # result below an outer join must stay reorderable); once every alias
        # is nullable — after a FULL join — only outer clauses may follow.
        candidates = [
            alias
            for alias in aliases
            if aliases[alias] in self._adjacency and (outer or alias not in nullable)
        ]
        if not candidates and not outer:
            outer = True
            candidates = [a for a in aliases if aliases[a] in self._adjacency]
        if not candidates:
            return None
        anchor = rng.choice(candidates)
        column, new_table, new_column = rng.choice(self._adjacency[aliases[anchor]])
        aliases[new_alias] = new_table
        condition = f"{anchor}.{column} = {new_alias}.{new_column}"
        if not outer:
            return f"JOIN {new_table} AS {new_alias} ON {condition}"
        if rng.random() < self.joins.full_fraction:
            nullable.update(aliases)
            return f"FULL OUTER JOIN {new_table} AS {new_alias} ON {condition}"
        nullable.add(new_alias)
        return f"LEFT JOIN {new_table} AS {new_alias} ON {condition}"

    def _integer_columns(self, aliases: dict[str, str]) -> list[tuple[str, str, bool]]:
        """Sorted ``(alias, column, nullable)`` triples of INTEGER columns."""
        out = []
        for alias in sorted(aliases):
            for column in self.schema.table(aliases[alias]).columns:
                if column.ctype is ColumnType.INTEGER:
                    out.append((alias, column.name, column.nullable))
        return out

    def _sample_filters(self, rng: random.Random, aliases: dict[str, str]) -> list[str]:
        cfg = self.predicates
        columns = self._integer_columns(aliases)
        filters = []
        for _ in range(rng.randint(0, cfg.max_filters)):
            alias, column, nullable = rng.choice(columns)
            if nullable and rng.random() < cfg.null_fraction:
                negated = "NOT " if rng.random() < 0.5 else ""
                filters.append(f"{alias}.{column} IS {negated}NULL")
            else:
                op = rng.choice(cfg.comparison_ops)
                low, high = cfg.literal_range
                filters.append(f"{alias}.{column} {op} {rng.randint(low, high)}")
        return filters

    def _sample_select(
        self, rng: random.Random, aliases: dict[str, str]
    ) -> tuple[list[str], list[str]]:
        cfg = self.aggregates
        columns = self._integer_columns(aliases)
        items = ["COUNT(*)"]
        for _ in range(rng.randint(0, cfg.max_aggregates)):
            alias, column, _ = rng.choice(columns)
            function = rng.choice(cfg.functions)
            items.append(f"{function.upper()}({alias}.{column})")
        group_by: list[str] = []
        if rng.random() < cfg.group_by_fraction:
            alias, column, _ = rng.choice(columns)
            group_by.append(f"{alias}.{column}")
            items.insert(0, f"{alias}.{column}")
        return items, group_by


def build_random_workload(
    schema: Schema,
    count: int = 32,
    seed: int = 2024,
    joins: JoinSamplerConfig | None = None,
    predicates: PredicateSamplerConfig | None = None,
    aggregates: AggregateSamplerConfig | None = None,
    name: str | None = None,
) -> Workload:
    """Bind ``count`` generated queries into a workload.

    Queries are grouped into families by join count, mirroring how the
    hand-written workloads group variants of one base query.
    """
    generator = RandomSqlGenerator(
        schema, seed=seed, joins=joins, predicates=predicates, aggregates=aggregates
    )
    queries = []
    for index in range(count):
        sql = generator.sql(index)
        query_id = f"rand_{seed}_{index}"
        bound = bind_query(parse_select(sql), schema, name=query_id)
        queries.append(
            BenchmarkQuery(
                query_id=query_id,
                family=f"rand_j{bound.num_joins}",
                sql=sql,
                bound=bound,
            )
        )
    return Workload(name or f"random-{seed}", schema, queries)
