"""Ext-JOB: the extended JOB workload with operators absent from plain JOB.

Neo introduced Ext-JOB to test generalization to previously unseen queries;
the added queries contain operators (GROUP BY, ORDER BY) that do not appear in
the original 113 (Section 6.1 of the paper).  This module generates a
compact Ext-JOB-style workload over the synthetic IMDB schema: every family
carries a GROUP BY and/or ORDER BY clause on top of otherwise JOB-like joins.
"""

from __future__ import annotations

from repro.catalog.imdb import COUNTRY_CODES, GENRES, KEYWORD_POOL, KIND_TYPES
from repro.catalog.schema import Schema
from repro.workloads.workload import QueryTemplate, Workload, build_workload_from_templates

#: Families and variant counts of the extended workload (24 queries).
EXT_JOB_FAMILY_SIZES: dict[str, int] = {
    "e1": 4, "e2": 4, "e3": 4, "e4": 4, "e5": 4, "e6": 4,
}


def ext_job_templates() -> list[QueryTemplate]:
    """Templates of the Ext-JOB-style workload (GROUP BY / ORDER BY queries)."""
    templates: list[QueryTemplate] = []

    templates.append(QueryTemplate(
        family="e1",
        relations=[("kt", "kind_type"), ("t", "title")],
        joins=["t.kind_id = kt.id"],
        n_variants=EXT_JOB_FAMILY_SIZES["e1"],
        make_filters=lambda i: [f"t.production_year > {1980 + 10 * i}"],
        select_list="kt.kind, COUNT(*) AS movies",
        group_by=["kt.kind"],
        order_by=["kt.kind"],
    ))

    templates.append(QueryTemplate(
        family="e2",
        relations=[("cn", "company_name"), ("mc", "movie_companies"), ("t", "title")],
        joins=["t.id = mc.movie_id", "mc.company_id = cn.id"],
        n_variants=EXT_JOB_FAMILY_SIZES["e2"],
        make_filters=lambda i: [
            f"cn.country_code = '{COUNTRY_CODES[i % len(COUNTRY_CODES)]}'",
            f"t.production_year > {1990 + 5 * i}",
        ],
        select_list="cn.country_code, COUNT(*) AS productions, MIN(t.production_year) AS earliest",
        group_by=["cn.country_code"],
        order_by=["cn.country_code"],
    ))

    templates.append(QueryTemplate(
        family="e3",
        relations=[("k", "keyword"), ("mk", "movie_keyword"), ("t", "title")],
        joins=["t.id = mk.movie_id", "mk.keyword_id = k.id"],
        n_variants=EXT_JOB_FAMILY_SIZES["e3"],
        make_filters=lambda i: [
            f"k.keyword IN ('{KEYWORD_POOL[i]}', '{KEYWORD_POOL[i + 4]}')",
        ],
        select_list="k.keyword, COUNT(*) AS uses",
        group_by=["k.keyword"],
        order_by=["k.keyword"],
    ))

    templates.append(QueryTemplate(
        family="e4",
        relations=[("ci", "cast_info"), ("n", "name"), ("rt", "role_type"), ("t", "title")],
        joins=["t.id = ci.movie_id", "ci.person_id = n.id", "ci.role_id = rt.id"],
        n_variants=EXT_JOB_FAMILY_SIZES["e4"],
        make_filters=lambda i: [
            f"n.gender = '{['f', 'm'][i % 2]}'",
            f"t.production_year > {1995 + 5 * (i % 4)}",
        ],
        select_list="rt.role, COUNT(*) AS appearances",
        group_by=["rt.role"],
        order_by=["rt.role"],
    ))

    templates.append(QueryTemplate(
        family="e5",
        relations=[("it", "info_type"), ("mi", "movie_info"), ("kt", "kind_type"),
                   ("t", "title")],
        joins=["t.id = mi.movie_id", "mi.info_type_id = it.id", "t.kind_id = kt.id"],
        n_variants=EXT_JOB_FAMILY_SIZES["e5"],
        make_filters=lambda i: [
            "it.info = 'genres'",
            f"mi.info = '{GENRES[i % len(GENRES)]}'",
            f"kt.kind = '{KIND_TYPES[i % len(KIND_TYPES)]}'",
        ],
        select_list="MIN(t.production_year) AS earliest, MAX(t.production_year) AS latest, COUNT(*)",
        order_by=["t.production_year"],
    ))

    templates.append(QueryTemplate(
        family="e6",
        relations=[("cn", "company_name"), ("ct", "company_type"), ("k", "keyword"),
                   ("mc", "movie_companies"), ("mk", "movie_keyword"), ("t", "title")],
        joins=["t.id = mc.movie_id", "mc.company_id = cn.id", "mc.company_type_id = ct.id",
               "t.id = mk.movie_id", "mk.keyword_id = k.id"],
        n_variants=EXT_JOB_FAMILY_SIZES["e6"],
        make_filters=lambda i: [
            f"ct.kind = '{['distributors', 'production companies'][i % 2]}'",
            f"k.keyword = '{KEYWORD_POOL[(i + 8) % len(KEYWORD_POOL)]}'",
        ],
        select_list="cn.country_code, COUNT(*) AS movies",
        group_by=["cn.country_code"],
        order_by=["cn.country_code DESC"],
    ))

    return templates


def build_ext_job_workload(schema: Schema) -> Workload:
    """Build the Ext-JOB-style workload bound against ``schema``."""
    return build_workload_from_templates("ext_job", schema, ext_job_templates())
