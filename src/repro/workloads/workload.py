"""Workload and query containers shared by every benchmark."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.catalog.schema import Schema
from repro.errors import WorkloadError
from repro.sql.binder import BoundQuery, bind_query
from repro.sql.parser import parse_select


@dataclass
class BenchmarkQuery:
    """One benchmark query: SQL text plus its bound form and family metadata."""

    query_id: str
    family: str
    sql: str
    bound: BoundQuery

    @property
    def num_relations(self) -> int:
        return self.bound.num_relations

    @property
    def num_joins(self) -> int:
        return self.bound.num_joins

    def __str__(self) -> str:
        return f"{self.query_id} ({self.num_relations} relations, {self.num_joins} joins)"


class Workload:
    """An ordered, named collection of benchmark queries with family structure."""

    def __init__(self, name: str, schema: Schema, queries: Iterable[BenchmarkQuery]) -> None:
        self.name = name
        self.schema = schema
        self._queries: list[BenchmarkQuery] = list(queries)
        self._by_id = {q.query_id: q for q in self._queries}
        if len(self._by_id) != len(self._queries):
            raise WorkloadError(f"duplicate query ids in workload {name!r}")

    # -- container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[BenchmarkQuery]:
        return iter(self._queries)

    def __contains__(self, query_id: object) -> bool:
        return query_id in self._by_id

    # -- lookups ------------------------------------------------------------------
    @property
    def queries(self) -> list[BenchmarkQuery]:
        return list(self._queries)

    def query_ids(self) -> list[str]:
        return [q.query_id for q in self._queries]

    def by_id(self, query_id: str) -> BenchmarkQuery:
        try:
            return self._by_id[query_id]
        except KeyError as exc:
            raise WorkloadError(
                f"workload {self.name!r} has no query {query_id!r}"
            ) from exc

    def fingerprint(self) -> str:
        """Stable content fingerprint: name plus every (id, family, SQL) triple.

        Used by spec-based dispatch to verify that a worker's by-name rebuild
        of the workload matches the workload the grid was launched with; a
        hand-modified workload sharing a registered name fingerprints
        differently and is rejected instead of silently replaced.  Memoized:
        the query list is fixed at construction.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        digest.update(self.name.encode("utf-8"))
        for query in self._queries:
            digest.update(f"|{query.query_id}|{query.family}|{query.sql}".encode("utf-8"))
        self._fingerprint = digest.hexdigest()[:16]
        return self._fingerprint

    def families(self) -> dict[str, list[BenchmarkQuery]]:
        """Mapping of family (base-query) id to its variants, in workload order."""
        out: dict[str, list[BenchmarkQuery]] = {}
        for query in self._queries:
            out.setdefault(query.family, []).append(query)
        return out

    def family_ids(self) -> list[str]:
        seen: list[str] = []
        for query in self._queries:
            if query.family not in seen:
                seen.append(query.family)
        return seen

    def subset(self, query_ids: Iterable[str], name: str | None = None) -> "Workload":
        """A new workload containing only the given query ids (in workload order)."""
        wanted = set(query_ids)
        missing = wanted - set(self._by_id)
        if missing:
            raise WorkloadError(f"unknown query ids {sorted(missing)}")
        selected = [q for q in self._queries if q.query_id in wanted]
        return Workload(name or f"{self.name}-subset", self.schema, selected)

    # -- statistics ------------------------------------------------------------------
    def join_count_histogram(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for query in self._queries:
            out[query.num_joins] = out.get(query.num_joins, 0) + 1
        return dict(sorted(out.items()))

    def describe(self) -> str:
        lines = [
            f"workload {self.name}: {len(self)} queries across {len(self.family_ids())} families"
        ]
        joins = [q.num_joins for q in self._queries]
        if joins:
            lines.append(
                f"  joins per query: min={min(joins)} max={max(joins)} "
                f"mean={sum(joins) / len(joins):.1f}"
            )
        return "\n".join(lines)


@dataclass
class QueryTemplate:
    """A base-query template from which variants are generated.

    Attributes:
        family: the template identifier (``"1"``, ``"2"``, ...).
        relations: FROM-list entries as ``(alias, table)`` pairs.
        joins: equi-join predicates as SQL strings (``"t.id = mk.movie_id"``).
        n_variants: how many variants (``a``, ``b``, ``c`` ...) to generate.
        make_filters: callable mapping a variant index (0-based) to the list of
            single-table filter SQL strings of that variant.
        select_list: SELECT-list SQL (defaults to ``COUNT(*)`` plus MIN over
            the first relation's primary key, in the spirit of JOB).
        group_by / order_by: optional clause fragments (used by Ext-JOB).
    """

    family: str
    relations: list[tuple[str, str]]
    joins: list[str]
    n_variants: int
    make_filters: Callable[[int], list[str]]
    select_list: str | None = None
    group_by: list[str] = field(default_factory=list)
    order_by: list[str] = field(default_factory=list)

    def variant_id(self, index: int) -> str:
        letters = "abcdefghijklmnopqrstuvwxyz"
        if index >= len(letters):
            return f"{self.family}_{index}"
        return f"{self.family}{letters[index]}"

    def render_sql(self, index: int) -> str:
        if not 0 <= index < self.n_variants:
            raise WorkloadError(
                f"template {self.family} has {self.n_variants} variants, asked for {index}"
            )
        select = self.select_list
        if select is None:
            first_alias = self.relations[0][0]
            select = f"MIN({first_alias}.id) AS first_id, COUNT(*) AS result_count"
        from_clause = ", ".join(f"{table} AS {alias}" for alias, table in self.relations)
        predicates = list(self.joins) + list(self.make_filters(index))
        sql = [f"SELECT {select}", f"FROM {from_clause}"]
        if predicates:
            sql.append("WHERE " + " AND ".join(predicates))
        if self.group_by:
            sql.append("GROUP BY " + ", ".join(self.group_by))
        if self.order_by:
            sql.append("ORDER BY " + ", ".join(self.order_by))
        return "\n".join(sql) + ";"

    def build_queries(self, schema: Schema) -> list[BenchmarkQuery]:
        """Parse, bind and wrap every variant of this template."""
        queries = []
        for index in range(self.n_variants):
            sql = self.render_sql(index)
            query_id = self.variant_id(index)
            statement = parse_select(sql)
            bound = bind_query(statement, schema, name=query_id)
            queries.append(
                BenchmarkQuery(query_id=query_id, family=self.family, sql=sql, bound=bound)
            )
        return queries


def build_workload_from_templates(
    name: str, schema: Schema, templates: Iterable[QueryTemplate]
) -> Workload:
    """Materialize a workload from a sequence of templates."""
    queries: list[BenchmarkQuery] = []
    for template in templates:
        queries.extend(template.build_queries(schema))
    return Workload(name, schema, queries)
