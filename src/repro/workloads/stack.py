"""A STACK-style workload over the StackExchange schema.

The real STACK workload (introduced with Bao) contains 6,191 queries generated
from 16 base queries.  Following the paper's protocol (Section 8.1.2) we
down-sample to 14 base queries with 8 variants each — templates 9 and 10 are
removed, mirroring the removal the paper adopts from Balsa due to
pg_hint_plan's limitation with views/subqueries — giving 112 queries, a
similar amount of data as JOB.
"""

from __future__ import annotations

from repro.catalog.stack import BADGE_NAMES, SITE_NAMES, TAG_NAMES
from repro.catalog.schema import Schema
from repro.workloads.workload import QueryTemplate, Workload, build_workload_from_templates

#: Variants generated per retained base query.
STACK_VARIANTS_PER_FAMILY = 8

#: Families removed by the down-sampling protocol (kept for documentation).
STACK_REMOVED_FAMILIES = ("q9", "q10")

_YEARS = [2010, 2012, 2014, 2015, 2016, 2017, 2018, 2019]
_REPUTATIONS = [50, 100, 500, 1000, 5000, 10000, 20000, 50000]
_SCORES = [0, 1, 2, 5, 10, 20, 50, 100]
_VIEWS = [100, 500, 1000, 5000, 10000, 20000, 50000, 100000]


def _site(i: int) -> str:
    return SITE_NAMES[i % len(SITE_NAMES)]


def _tag(i: int) -> str:
    return TAG_NAMES[i % len(TAG_NAMES)]


def _badge(i: int) -> str:
    return BADGE_NAMES[i % len(BADGE_NAMES)]


def _year(i: int) -> int:
    return _YEARS[i % len(_YEARS)]


def _reputation(i: int) -> int:
    return _REPUTATIONS[i % len(_REPUTATIONS)]


def _score(i: int) -> int:
    return _SCORES[i % len(_SCORES)]


def _views(i: int) -> int:
    return _VIEWS[i % len(_VIEWS)]


def stack_templates() -> list[QueryTemplate]:
    """The 14 retained STACK base-query templates (8 variants each)."""
    templates: list[QueryTemplate] = []
    n = STACK_VARIANTS_PER_FAMILY

    def add(family: str, relations, joins, make_filters) -> None:
        templates.append(
            QueryTemplate(
                family=family,
                relations=relations,
                joins=joins,
                n_variants=n,
                make_filters=make_filters,
            )
        )

    add("q1",
        [("q", "question"), ("s", "site"), ("u", "so_user")],
        ["q.site_id = s.id", "q.owner_user_id = u.id"],
        lambda i: [
            f"s.site_name = '{_site(i)}'",
            f"u.reputation > {_reputation(i)}",
            f"q.score > {_score(i)}",
        ])

    add("q2",
        [("a", "answer"), ("q", "question"), ("s", "site"), ("u", "so_user")],
        ["a.question_id = q.id", "q.site_id = s.id", "a.owner_user_id = u.id"],
        lambda i: [
            f"s.site_name = '{_site(i + 1)}'",
            f"a.score > {_score(i)}",
            f"q.creation_date > {_year(i)}",
        ])

    add("q3",
        [("q", "question"), ("s", "site"), ("t", "tag"), ("tq", "tag_question")],
        ["q.site_id = s.id", "tq.question_id = q.id", "tq.tag_id = t.id"],
        lambda i: [
            f"s.site_name = '{_site(i)}'",
            f"t.name = '{_tag(i)}'",
            f"q.view_count > {_views(i)}",
        ])

    add("q4",
        [("b", "badge"), ("s", "site"), ("u", "so_user")],
        ["b.user_id = u.id", "b.site_id = s.id"],
        lambda i: [
            f"b.name = '{_badge(i)}'",
            f"s.site_name = '{_site(i + 2)}'",
            f"u.reputation > {_reputation(i + 1)}",
        ])

    add("q5",
        [("a", "answer"), ("q", "question"), ("t", "tag"), ("tq", "tag_question"),
         ("u", "so_user")],
        ["a.question_id = q.id", "tq.question_id = q.id", "tq.tag_id = t.id",
         "a.owner_user_id = u.id"],
        lambda i: [
            f"t.name = '{_tag(i + 3)}'",
            f"u.reputation > {_reputation(i)}",
            f"a.score > {_score(i + 1)}",
        ])

    add("q6",
        [("c", "comment"), ("q", "question"), ("s", "site"), ("u", "so_user")],
        ["c.post_id = q.id", "q.site_id = s.id", "c.user_id = u.id"],
        lambda i: [
            f"s.site_name = '{_site(i + 3)}'",
            f"c.score > {_score(i % 4)}",
            f"q.creation_date > {_year(i + 1)}",
        ])

    add("q7",
        [("acc", "account"), ("b", "badge"), ("u", "so_user")],
        ["u.account_id = acc.id", "b.user_id = u.id"],
        lambda i: [
            f"b.name = '{_badge(i + 2)}'",
            f"u.creation_date > {_year(i)}",
        ])

    add("q8",
        [("a", "answer"), ("c", "comment"), ("q", "question"), ("s", "site")],
        ["a.question_id = q.id", "c.post_id = q.id", "q.site_id = s.id"],
        lambda i: [
            f"s.site_name = '{_site(i + 4)}'",
            f"a.score > {_score(i)}",
            f"q.favorite_count > {i}",
        ])

    add("q11",
        [("pl", "post_link"), ("q1", "question"), ("q2", "question"), ("s", "site")],
        ["pl.post_id_from = q1.id", "pl.post_id_to = q2.id", "q1.site_id = s.id"],
        lambda i: [
            f"s.site_name = '{_site(i)}'",
            f"q1.score > {_score(i % 5)}",
            f"q2.view_count > {_views(i % 4)}",
        ])

    add("q12",
        [("b", "badge"), ("q", "question"), ("s", "site"), ("u", "so_user")],
        ["q.owner_user_id = u.id", "b.user_id = u.id", "q.site_id = s.id"],
        lambda i: [
            f"b.name = '{_badge(i + 5)}'",
            f"s.site_name = '{_site(i + 5)}'",
            f"q.score > {_score(i)}",
        ])

    add("q13",
        [("a", "answer"), ("acc", "account"), ("q", "question"), ("u", "so_user")],
        ["a.question_id = q.id", "a.owner_user_id = u.id", "u.account_id = acc.id"],
        lambda i: [
            f"u.reputation > {_reputation(i + 2)}",
            f"a.creation_date > {_year(i)}",
            f"q.view_count > {_views(i)}",
        ])

    add("q14",
        [("q", "question"), ("s", "site"), ("t", "tag"), ("tq", "tag_question"),
         ("u", "so_user")],
        ["q.site_id = s.id", "tq.question_id = q.id", "tq.tag_id = t.id",
         "q.owner_user_id = u.id"],
        lambda i: [
            f"t.name IN ('{_tag(i)}', '{_tag(i + 7)}')",
            f"s.site_name = '{_site(i + 1)}'",
            f"u.reputation BETWEEN {_reputation(i % 4)} AND {_reputation(i % 4 + 4)}",
        ])

    add("q15",
        [("a", "answer"), ("c", "comment"), ("q", "question"), ("t", "tag"),
         ("tq", "tag_question"), ("u", "so_user")],
        ["a.question_id = q.id", "c.post_id = q.id", "tq.question_id = q.id",
         "tq.tag_id = t.id", "a.owner_user_id = u.id"],
        lambda i: [
            f"t.name = '{_tag(i + 10)}'",
            f"u.reputation > {_reputation(i)}",
            f"c.score > {_score(i % 3)}",
            f"q.creation_date > {_year(i % 5)}",
        ])

    add("q16",
        [("a", "answer"), ("b", "badge"), ("q", "question"), ("s", "site"),
         ("u", "so_user")],
        ["a.question_id = q.id", "a.owner_user_id = u.id", "b.user_id = u.id",
         "q.site_id = s.id"],
        lambda i: [
            f"b.name = '{_badge(i)}'",
            f"s.site_name = '{_site(i + 6)}'",
            f"a.score > {_score(i + 2)}",
            f"q.score > {_score(i % 4)}",
        ])

    return templates


def build_stack_workload(schema: Schema) -> Workload:
    """Build the down-sampled 112-query STACK workload bound against ``schema``."""
    return build_workload_from_templates("stack", schema, stack_templates())
