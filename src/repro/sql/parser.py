"""Recursive-descent parser for the benchmark SQL dialect.

The grammar (conjunctive SPJ queries with optional GROUP BY / ORDER BY / LIMIT).
The FROM clause is either the comma form (implicit inner joins spelled in
WHERE) or a chain of explicit ``JOIN ... ON`` clauses; the two forms cannot
be mixed in one statement:

.. code-block:: text

    select    := SELECT item (',' item)* FROM from_clause
                 [WHERE predicate (AND predicate)*]
                 [GROUP BY colref (',' colref)*]
                 [ORDER BY order_item (',' order_item)*]
                 [LIMIT number] [';']
    from_clause := table (',' table)*                   -- comma form
               | table join_clause+                     -- explicit form
    join_clause := [INNER] JOIN table ON on_cond (AND on_cond)*
               | LEFT [OUTER] JOIN table ON on_cond (AND on_cond)*
               | FULL [OUTER] JOIN table ON on_cond (AND on_cond)*
    on_cond   := colref '=' colref                      -- equi-join only
    item      := agg '(' (colref | '*') ')' [AS name] | colref
    table     := identifier [AS] [identifier]
    predicate := colref '=' colref                      -- join
               | colref op literal                      -- comparison
               | colref [NOT] IN '(' literal, ... ')'
               | colref BETWEEN literal AND literal
               | colref [NOT] LIKE string
               | colref IS [NOT] NULL
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    AggregateItem,
    BetweenFilter,
    ColumnRef,
    ComparisonFilter,
    InFilter,
    JoinClause,
    JoinCondition,
    LikeFilter,
    Literal,
    NullFilter,
    OrderItem,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize

_AGG_FUNCTIONS = {"min", "max", "count", "sum", "avg"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        self._pos += 1
        return token

    def expect(self, ttype: TokenType, value: str | None = None) -> Token:
        token = self.current
        if token.ttype is not ttype or (value is not None and token.value != value):
            expected = value or ttype.value
            raise SQLSyntaxError(
                f"expected {expected!r} but found {token.value!r}", position=token.position
            )
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SQLSyntaxError(
                f"expected keyword {word.upper()!r} but found {self.current.value!r}",
                position=self.current.position,
            )

    # -- grammar ------------------------------------------------------------------
    def parse(self) -> SelectStatement:
        self.expect_keyword("select")
        select_items = [self._parse_select_item()]
        while self.current.ttype is TokenType.COMMA:
            self.advance()
            select_items.append(self._parse_select_item())

        self.expect_keyword("from")
        from_tables = [self._parse_table_ref()]
        comma_form = False
        while self.current.ttype is TokenType.COMMA:
            self.advance()
            from_tables.append(self._parse_table_ref())
            comma_form = True

        join_clauses: list[JoinClause] = []
        while self._at_join_clause():
            if comma_form:
                raise SQLSyntaxError(
                    "cannot mix a comma-form FROM list with explicit JOIN clauses",
                    position=self.current.position,
                )
            clause = self._parse_join_clause()
            join_clauses.append(clause)
            from_tables.append(clause.table)
        if join_clauses and self.current.ttype is TokenType.COMMA:
            raise SQLSyntaxError(
                "cannot mix explicit JOIN clauses with a comma-form FROM list",
                position=self.current.position,
            )

        statement = SelectStatement(select_items=select_items, from_tables=from_tables)
        statement.join_clauses.extend(join_clauses)
        for clause in join_clauses:
            statement.joins.extend(clause.conditions)

        if self.accept_keyword("where"):
            self._parse_predicate(statement)
            while self.accept_keyword("and"):
                self._parse_predicate(statement)

        if self.current.is_keyword("group"):
            self.advance()
            self.expect_keyword("by")
            statement.group_by.append(self._parse_column_ref())
            while self.current.ttype is TokenType.COMMA:
                self.advance()
                statement.group_by.append(self._parse_column_ref())

        if self.current.is_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            statement.order_by.append(self._parse_order_item())
            while self.current.ttype is TokenType.COMMA:
                self.advance()
                statement.order_by.append(self._parse_order_item())

        if self.accept_keyword("limit"):
            token = self.expect(TokenType.NUMBER)
            statement.limit = int(float(token.value))

        if self.current.ttype is TokenType.SEMICOLON:
            self.advance()
        if self.current.ttype is not TokenType.EOF:
            raise SQLSyntaxError(
                f"unexpected trailing input {self.current.value!r}",
                position=self.current.position,
            )
        return statement

    # -- clauses -----------------------------------------------------------------
    def _parse_select_item(self) -> AggregateItem:
        token = self.current
        if token.ttype is TokenType.KEYWORD and token.value in _AGG_FUNCTIONS:
            func = self.advance().value
            self.expect(TokenType.LPAREN)
            if self.current.ttype is TokenType.STAR:
                self.advance()
                column = None
            else:
                self.accept_keyword("distinct")
                column = self._parse_column_ref()
            self.expect(TokenType.RPAREN)
            output_name = None
            if self.accept_keyword("as"):
                output_name = self.expect(TokenType.IDENTIFIER).value
            return AggregateItem(function=func, column=column, output_name=output_name)
        if token.ttype is TokenType.STAR:
            self.advance()
            return AggregateItem(function=None, column=None)
        column = self._parse_column_ref()
        output_name = None
        if self.accept_keyword("as"):
            output_name = self.expect(TokenType.IDENTIFIER).value
        return AggregateItem(function=None, column=column, output_name=output_name)

    def _at_join_clause(self) -> bool:
        token = self.current
        return token.ttype is TokenType.KEYWORD and token.value in (
            "join",
            "inner",
            "left",
            "full",
        )

    def _parse_join_clause(self) -> JoinClause:
        if self.accept_keyword("inner"):
            join_type = "inner"
        elif self.accept_keyword("left"):
            join_type = "left"
            self.accept_keyword("outer")
        elif self.accept_keyword("full"):
            join_type = "full"
            self.accept_keyword("outer")
        else:
            join_type = "inner"
        self.expect_keyword("join")
        table = self._parse_table_ref()
        self.expect_keyword("on")
        conditions = [self._parse_on_condition(join_type)]
        while self.accept_keyword("and"):
            conditions.append(self._parse_on_condition(join_type))
        return JoinClause(join_type=join_type, table=table, conditions=tuple(conditions))

    def _parse_on_condition(self, join_type: str) -> JoinCondition:
        left = self._parse_column_ref()
        operator = self.expect(TokenType.OPERATOR)
        if operator.value != "=":
            raise SQLSyntaxError(
                "ON conditions must be equi-join conditions", position=operator.position
            )
        if self.current.ttype is not TokenType.IDENTIFIER:
            raise SQLSyntaxError(
                "ON conditions must compare two column references",
                position=self.current.position,
            )
        right = self._parse_column_ref()
        return JoinCondition(left=left, right=right, join_type=join_type)

    def _parse_table_ref(self) -> TableRef:
        table = self.expect(TokenType.IDENTIFIER).value
        alias = table
        if self.accept_keyword("as"):
            alias = self.expect(TokenType.IDENTIFIER).value
        elif self.current.ttype is TokenType.IDENTIFIER:
            alias = self.advance().value
        return TableRef(table=table, alias=alias)

    def _parse_column_ref(self) -> ColumnRef:
        first = self.expect(TokenType.IDENTIFIER).value
        if self.current.ttype is TokenType.DOT:
            self.advance()
            column = self.expect(TokenType.IDENTIFIER).value
            return ColumnRef(alias=first, column=column)
        return ColumnRef(alias="", column=first)

    def _parse_order_item(self) -> OrderItem:
        column = self._parse_column_ref()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return OrderItem(column=column, descending=descending)

    def _parse_literal(self) -> Literal:
        token = self.current
        if token.ttype is TokenType.NUMBER:
            self.advance()
            return float(token.value) if "." in token.value else int(token.value)
        if token.ttype is TokenType.STRING:
            self.advance()
            return token.value
        if token.is_keyword("null"):
            self.advance()
            return None
        raise SQLSyntaxError(
            f"expected literal but found {token.value!r}", position=token.position
        )

    def _parse_predicate(self, statement: SelectStatement) -> None:
        column = self._parse_column_ref()
        token = self.current

        if token.ttype is TokenType.OPERATOR:
            op = self.advance().value
            if op == "<>":
                op = "!="
            # join predicate if the right-hand side is another column reference
            if op == "=" and self.current.ttype is TokenType.IDENTIFIER:
                right = self._parse_column_ref()
                statement.joins.append(JoinCondition(left=column, right=right))
                return
            value = self._parse_literal()
            statement.filters.append(ComparisonFilter(column=column, op=op, value=value))
            return

        negated = False
        if token.is_keyword("not"):
            self.advance()
            negated = True
            token = self.current

        if token.is_keyword("in"):
            self.advance()
            self.expect(TokenType.LPAREN)
            values = [self._parse_literal()]
            while self.current.ttype is TokenType.COMMA:
                self.advance()
                values.append(self._parse_literal())
            self.expect(TokenType.RPAREN)
            statement.filters.append(
                InFilter(column=column, values=tuple(values), negated=negated)
            )
            return

        if token.is_keyword("like"):
            self.advance()
            pattern = self.expect(TokenType.STRING).value
            statement.filters.append(
                LikeFilter(column=column, pattern=pattern, negated=negated)
            )
            return

        if token.is_keyword("between"):
            if negated:
                raise SQLSyntaxError("NOT BETWEEN is not supported", position=token.position)
            self.advance()
            low = self._parse_literal()
            self.expect_keyword("and")
            high = self._parse_literal()
            statement.filters.append(BetweenFilter(column=column, low=low, high=high))
            return

        if token.is_keyword("is"):
            if negated:
                raise SQLSyntaxError("unexpected NOT before IS", position=token.position)
            self.advance()
            is_not = self.accept_keyword("not")
            self.expect_keyword("null")
            statement.filters.append(NullFilter(column=column, negated=is_not))
            return

        raise SQLSyntaxError(
            f"unsupported predicate near {token.value!r}", position=token.position
        )


def parse_select(sql: str) -> SelectStatement:
    """Parse a SQL string into a :class:`SelectStatement`."""
    return _Parser(tokenize(sql)).parse()
