"""Tokenizer for the benchmark SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "select", "from", "where", "and", "or", "as", "in", "not", "like",
    "between", "is", "null", "group", "order", "by", "asc", "desc", "limit",
    "min", "max", "count", "sum", "avg", "distinct",
    "join", "inner", "left", "full", "outer", "on",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    SEMICOLON = "semicolon"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A lexical token with its position in the original text."""

    ttype: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.ttype is TokenType.KEYWORD and self.value == word.lower()


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text, raising :class:`SQLSyntaxError` on unexpected characters."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            if j >= n:
                raise SQLSyntaxError("unterminated string literal", position=i)
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit() and _prev_is_value_position(tokens)):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = j
            continue
        matched_op = None
        for op in _OPERATORS:
            if text.startswith(op, i):
                matched_op = op
                break
        if matched_op is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_op, i))
            i += len(matched_op)
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ch, i))
        elif ch == ".":
            tokens.append(Token(TokenType.DOT, ch, i))
        elif ch == "(":
            tokens.append(Token(TokenType.LPAREN, ch, i))
        elif ch == ")":
            tokens.append(Token(TokenType.RPAREN, ch, i))
        elif ch == "*":
            tokens.append(Token(TokenType.STAR, ch, i))
        elif ch == ";":
            tokens.append(Token(TokenType.SEMICOLON, ch, i))
        else:
            raise SQLSyntaxError(f"unexpected character {ch!r}", position=i)
        i += 1
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _prev_is_value_position(tokens: list[Token]) -> bool:
    """Whether a ``-`` at the current position starts a negative number literal."""
    if not tokens:
        return False
    prev = tokens[-1]
    return prev.ttype in (TokenType.OPERATOR, TokenType.COMMA, TokenType.LPAREN) or prev.is_keyword(
        "between"
    ) or prev.is_keyword("and") or prev.is_keyword("in")
