"""Binding of parsed statements against a schema.

The binder resolves aliases and column references, normalizes every WHERE
predicate into either a :class:`JoinPredicate` (equi-join between two
relations) or a :class:`FilterPredicate` (single-table restriction), and
produces the :class:`BoundQuery` structure that the optimizer, the executor
and all query encoders consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from repro.catalog.schema import Schema
from repro.errors import BindingError
from repro.sql.ast import (
    BetweenFilter,
    ColumnRef,
    ComparisonFilter,
    InFilter,
    LikeFilter,
    NullFilter,
    SelectStatement,
)

#: Normalized filter operators used across the planner and executor.
FILTER_OPS = (
    "=", "!=", "<", "<=", ">", ">=",
    "in", "not_in", "like", "not_like", "is_null", "is_not_null", "between",
)


@dataclass(frozen=True)
class BoundRelation:
    """A FROM-list entry after binding: alias plus resolved table name."""

    alias: str
    table: str


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left_alias.left_column = right_alias.right_column``.

    ``join_type`` is ``"inner"`` for comma-form/INNER JOIN predicates and
    ``"left"`` / ``"full"`` for predicates belonging to an outer-join clause
    (those are additionally grouped into :class:`OuterJoinEdge` instances on
    the bound query, normalized so ``right_alias`` is the nullable side).
    """

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str
    join_type: str = "inner"

    def aliases(self) -> tuple[str, str]:
        return (self.left_alias, self.right_alias)

    def involves(self, alias: str) -> bool:
        return alias in (self.left_alias, self.right_alias)

    def column_for(self, alias: str) -> str:
        if alias == self.left_alias:
            return self.left_column
        if alias == self.right_alias:
            return self.right_column
        raise BindingError(f"join predicate does not involve alias {alias!r}")

    def other(self, alias: str) -> tuple[str, str]:
        """The (alias, column) on the opposite side of ``alias``."""
        if alias == self.left_alias:
            return (self.right_alias, self.right_column)
        if alias == self.right_alias:
            return (self.left_alias, self.left_column)
        raise BindingError(f"join predicate does not involve alias {alias!r}")

    def __str__(self) -> str:
        return (
            f"{self.left_alias}.{self.left_column} = "
            f"{self.right_alias}.{self.right_column}"
        )


@dataclass(frozen=True)
class OuterJoinEdge:
    """One outer-join clause after binding.

    ``nullable_alias`` is the relation the clause introduces: its columns are
    NULL-extended for unmatched probe-side rows (for FULL joins the probe
    side is NULL-extended for unmatched build rows as well).  Predicates are
    normalized so ``right_alias`` is always the nullable alias.  Outer edges
    pin operand order — the optimizer folds them onto the freely reorderable
    inner-join core in syntax order, never across them.
    """

    join_type: str  # "left" or "full"
    nullable_alias: str
    predicates: tuple[JoinPredicate, ...]

    def __post_init__(self) -> None:
        if self.join_type not in ("left", "full"):
            raise BindingError(f"unsupported outer join type {self.join_type!r}")
        if not self.predicates:
            raise BindingError("outer-join edge requires at least one predicate")

    def __str__(self) -> str:
        rendered = " AND ".join(str(p) for p in self.predicates)
        return f"{self.join_type.upper()} JOIN {self.nullable_alias} ON {rendered}"


@dataclass(frozen=True)
class FilterPredicate:
    """A normalized single-table filter.

    ``op`` is one of :data:`FILTER_OPS`.  ``values`` holds the literal
    operand(s): one element for comparisons and LIKE, two for BETWEEN, any
    number for IN, zero for NULL tests.
    """

    alias: str
    column: str
    op: str
    values: tuple[object, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in FILTER_OPS:
            raise BindingError(f"unknown filter operator {self.op!r}")

    @property
    def value(self) -> object:
        """Single operand convenience accessor (first literal)."""
        return self.values[0] if self.values else None

    def __str__(self) -> str:
        target = f"{self.alias}.{self.column}"
        if self.op in ("is_null", "is_not_null"):
            return f"{target} {self.op}"
        if self.op == "between":
            return f"{target} between {self.values[0]} and {self.values[1]}"
        if self.op in ("in", "not_in"):
            return f"{target} {self.op} {list(self.values)}"
        return f"{target} {self.op} {self.value!r}"


@dataclass
class BoundQuery:
    """A fully bound conjunctive query over a schema."""

    schema: Schema
    relations: list[BoundRelation]
    joins: list[JoinPredicate]
    filters: list[FilterPredicate]
    statement: SelectStatement | None = None
    name: str = ""
    #: Outer-join clauses in syntax (fold) order; empty for inner-only queries.
    outer_edges: list[OuterJoinEdge] = field(default_factory=list)

    _alias_to_table: dict[str, str] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._alias_to_table = {r.alias: r.table for r in self.relations}
        if len(self._alias_to_table) != len(self.relations):
            raise BindingError("duplicate aliases in FROM clause")

    # -- basic accessors ---------------------------------------------------------
    @property
    def aliases(self) -> list[str]:
        return [r.alias for r in self.relations]

    def table_of(self, alias: str) -> str:
        try:
            return self._alias_to_table[alias]
        except KeyError as exc:
            raise BindingError(f"unknown alias {alias!r} in query {self.name!r}") from exc

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    @property
    def num_joins(self) -> int:
        return len(self.joins)

    def filters_for(self, alias: str) -> list[FilterPredicate]:
        return [f for f in self.filters if f.alias == alias]

    # -- outer joins -------------------------------------------------------------
    @property
    def has_outer_joins(self) -> bool:
        return bool(self.outer_edges)

    @property
    def inner_joins(self) -> list[JoinPredicate]:
        """Join predicates of the freely reorderable inner-join core."""
        return [j for j in self.joins if j.join_type == "inner"]

    @property
    def core_aliases(self) -> list[str]:
        """Aliases not introduced by an outer-join clause (FROM order)."""
        outer = {edge.nullable_alias for edge in self.outer_edges}
        return [a for a in self.aliases if a not in outer]

    def core_query(self) -> BoundQuery:
        """The inner-join island the optimizer may reorder freely.

        Outer-join edges are folded onto the core's plan afterwards, in
        syntax order.  Returns ``self`` for inner-only queries, so all
        pre-outer-join call sites see the identical object.
        """
        if not self.outer_edges:
            return self
        core = set(self.core_aliases)
        return BoundQuery(
            schema=self.schema,
            relations=[r for r in self.relations if r.alias in core],
            joins=list(self.inner_joins),
            filters=[f for f in self.filters if f.alias in core],
            statement=None,
            name=f"{self.name}#core" if self.name else "#core",
        )

    def joins_between(self, left_aliases: Iterable[str], right_aliases: Iterable[str]) -> list[JoinPredicate]:
        """Join predicates connecting a set of aliases to another set."""
        left = set(left_aliases)
        right = set(right_aliases)
        out = []
        for join in self.joins:
            a, b = join.aliases()
            if (a in left and b in right) or (a in right and b in left):
                out.append(join)
        return out

    # -- join graph --------------------------------------------------------------
    def join_graph(self) -> nx.Graph:
        """Undirected alias-level join graph with predicates on the edges."""
        graph = nx.Graph()
        for relation in self.relations:
            graph.add_node(relation.alias, table=relation.table)
        for join in self.joins:
            a, b = join.aliases()
            if graph.has_edge(a, b):
                graph[a][b]["predicates"].append(join)
            else:
                graph.add_edge(a, b, predicates=[join])
        return graph

    def is_connected(self) -> bool:
        """Whether the join graph connects every relation (no cross products needed)."""
        graph = self.join_graph()
        if graph.number_of_nodes() <= 1:
            return True
        return nx.is_connected(graph)

    def adjacency_matrix(self) -> list[list[int]]:
        """Alias-ordered 0/1 adjacency matrix of the join graph (query encoding)."""
        aliases = self.aliases
        index = {alias: i for i, alias in enumerate(aliases)}
        matrix = [[0] * len(aliases) for _ in aliases]
        for join in self.joins:
            a, b = join.aliases()
            i, j = index[a], index[b]
            matrix[i][j] = 1
            matrix[j][i] = 1
        return matrix

    def to_sql(self) -> str:
        if self.statement is not None:
            return self.statement.to_sql()
        raise BindingError("bound query has no attached statement to render")

    # -- serialization -----------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle only the bound content, never memoized ``_repro_*`` attributes.

        The runtime memoizes derived values directly on bound instances (the
        content fingerprint, see :mod:`repro.runtime.fingerprint`).  Those
        memos are process-local caches: a bound query travels inside pickled
        task and serving payloads across process *and host* boundaries, and a
        stale or tampered memo would be silently trusted as a cache/store key
        on the receiving side.  Stripping them here forces every consumer to
        recompute from content on first use.
        """
        return {k: v for k, v in self.__dict__.items() if not k.startswith("_repro_")}

    def __str__(self) -> str:
        label = self.name or "query"
        return f"BoundQuery({label}: {self.num_relations} relations, {self.num_joins} joins)"


def _resolve_column(
    ref: ColumnRef,
    alias_to_table: dict[str, str],
    schema: Schema,
) -> tuple[str, str]:
    """Resolve a column reference to ``(alias, column)``, handling unqualified names."""
    if ref.alias:
        if ref.alias not in alias_to_table:
            raise BindingError(f"unknown alias {ref.alias!r} in column reference {ref}")
        table = schema.table(alias_to_table[ref.alias])
        if not table.has_column(ref.column):
            raise BindingError(
                f"table {table.name!r} (alias {ref.alias!r}) has no column {ref.column!r}"
            )
        return ref.alias, ref.column
    candidates = [
        alias
        for alias, tname in alias_to_table.items()
        if schema.table(tname).has_column(ref.column)
    ]
    if not candidates:
        raise BindingError(f"column {ref.column!r} not found in any FROM table")
    if len(candidates) > 1:
        raise BindingError(
            f"column {ref.column!r} is ambiguous across aliases {sorted(candidates)}"
        )
    return candidates[0], ref.column


def bind_query(
    statement: SelectStatement,
    schema: Schema,
    name: str = "",
) -> BoundQuery:
    """Bind a parsed statement against ``schema`` and return a :class:`BoundQuery`."""
    relations: list[BoundRelation] = []
    alias_to_table: dict[str, str] = {}
    for table_ref in statement.from_tables:
        if not schema.has_table(table_ref.table):
            raise BindingError(f"unknown table {table_ref.table!r} in FROM clause")
        if table_ref.alias in alias_to_table:
            raise BindingError(f"duplicate alias {table_ref.alias!r} in FROM clause")
        alias_to_table[table_ref.alias] = table_ref.table
        relations.append(BoundRelation(alias=table_ref.alias, table=table_ref.table))

    joins: list[JoinPredicate] = []
    filters: list[FilterPredicate] = []
    outer_edges: list[OuterJoinEdge] = []
    nullable: set[str] = set()
    clause_condition_ids: set[int] = set()

    if statement.join_clauses:
        introduced = [statement.from_tables[0].alias]
        for clause in statement.join_clauses:
            new_alias = clause.table.alias
            predicates: list[JoinPredicate] = []
            for condition in clause.conditions:
                clause_condition_ids.add(id(condition))
                left_alias, left_column = _resolve_column(condition.left, alias_to_table, schema)
                right_alias, right_column = _resolve_column(condition.right, alias_to_table, schema)
                if left_alias == right_alias:
                    raise BindingError(
                        f"ON condition {condition} does not join two distinct relations"
                    )
                # Normalize so the newly joined alias sits on the right.
                if right_alias != new_alias:
                    if left_alias != new_alias:
                        raise BindingError(
                            f"ON condition {condition} must reference the joined "
                            f"table {new_alias!r}"
                        )
                    left_alias, left_column, right_alias, right_column = (
                        right_alias, right_column, left_alias, left_column,
                    )
                if left_alias not in introduced:
                    raise BindingError(
                        f"ON condition {condition} references alias {left_alias!r} "
                        "before it is introduced"
                    )
                predicates.append(
                    JoinPredicate(
                        left_alias=left_alias,
                        left_column=left_column,
                        right_alias=right_alias,
                        right_column=right_column,
                        join_type=clause.join_type,
                    )
                )
            if clause.join_type == "inner":
                for predicate in predicates:
                    if predicate.left_alias in nullable:
                        raise BindingError(
                            f"inner join against nullable alias "
                            f"{predicate.left_alias!r} after an outer join is "
                            "not supported; reorder the clauses"
                        )
            else:
                outer_edges.append(
                    OuterJoinEdge(
                        join_type=clause.join_type,
                        nullable_alias=new_alias,
                        predicates=tuple(predicates),
                    )
                )
                nullable.add(new_alias)
                if clause.join_type == "full":
                    nullable.update(introduced)
            joins.extend(predicates)
            introduced.append(new_alias)

    for join in statement.joins:
        if id(join) in clause_condition_ids:
            continue
        if join.join_type != "inner":
            raise BindingError(
                "outer-join conditions must appear in an explicit JOIN clause"
            )
        left_alias, left_column = _resolve_column(join.left, alias_to_table, schema)
        right_alias, right_column = _resolve_column(join.right, alias_to_table, schema)
        if left_alias == right_alias:
            # A same-alias equality such as ``t.id = t.id`` is a degenerate
            # filter; keep it as an always-true filter rather than a join.
            continue
        if left_alias in nullable or right_alias in nullable:
            raise BindingError(
                f"WHERE join condition {join} references a nullable outer-join "
                "alias; move it into the ON clause"
            )
        joins.append(
            JoinPredicate(
                left_alias=left_alias,
                left_column=left_column,
                right_alias=right_alias,
                right_column=right_column,
            )
        )

    for node in statement.filters:
        alias, column = _resolve_column(node.column, alias_to_table, schema)
        if isinstance(node, ComparisonFilter):
            filters.append(
                FilterPredicate(alias=alias, column=column, op=node.op, values=(node.value,))
            )
        elif isinstance(node, InFilter):
            op = "not_in" if node.negated else "in"
            filters.append(
                FilterPredicate(alias=alias, column=column, op=op, values=tuple(node.values))
            )
        elif isinstance(node, BetweenFilter):
            filters.append(
                FilterPredicate(
                    alias=alias, column=column, op="between", values=(node.low, node.high)
                )
            )
        elif isinstance(node, LikeFilter):
            op = "not_like" if node.negated else "like"
            filters.append(
                FilterPredicate(alias=alias, column=column, op=op, values=(node.pattern,))
            )
        elif isinstance(node, NullFilter):
            op = "is_not_null" if node.negated else "is_null"
            filters.append(FilterPredicate(alias=alias, column=column, op=op, values=()))
        else:  # pragma: no cover - defensive
            raise BindingError(f"unsupported filter node {type(node).__name__}")

    return BoundQuery(
        schema=schema,
        relations=relations,
        joins=joins,
        filters=filters,
        statement=statement,
        name=name,
        outer_edges=outer_edges,
    )


def bind_sql(sql: str, schema: Schema, name: str = "") -> BoundQuery:
    """Parse and bind SQL text in one step."""
    from repro.sql.parser import parse_select

    return bind_query(parse_select(sql), schema, name=name)
