"""Abstract syntax tree node types produced by the parser.

The AST is deliberately flat: JOB-style queries are conjunctive
select-project-join queries, so the ``WHERE`` clause is represented as a list
of join conditions plus a list of single-table filters rather than a general
boolean expression tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class ColumnRef:
    """A (possibly alias-qualified) column reference such as ``t.production_year``."""

    alias: str
    column: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}" if self.alias else self.column


@dataclass(frozen=True)
class TableRef:
    """A FROM-list item ``table AS alias`` (alias defaults to the table name)."""

    table: str
    alias: str

    def __str__(self) -> str:
        if self.alias == self.table:
            return self.table
        return f"{self.table} AS {self.alias}"


@dataclass(frozen=True)
class AggregateItem:
    """A SELECT-list item: either an aggregate over a column or a plain column."""

    function: str | None  # "min", "max", "count", "sum", "avg" or None
    column: ColumnRef | None  # None for COUNT(*)
    output_name: str | None = None

    def __str__(self) -> str:
        if self.function is None:
            return str(self.column)
        target = "*" if self.column is None else str(self.column)
        rendered = f"{self.function.upper()}({target})"
        if self.output_name:
            rendered += f" AS {self.output_name}"
        return rendered


#: Logical join kinds of the dialect (``right`` joins are normalized away by
#: the parser: ``A RIGHT JOIN B`` is not part of the grammar).
JOIN_TYPES = ("inner", "left", "full")


@dataclass(frozen=True)
class JoinCondition:
    """An equi-join condition ``left = right`` between two column references.

    ``join_type`` records the logical join the condition belongs to:
    ``"inner"`` for comma-form/``JOIN ... ON`` conditions, ``"left"`` /
    ``"full"`` for conditions of an outer-join clause.  The field is excluded
    from ``repr`` so that inner-only statements keep their historical
    rendering (which participates in query fingerprints).
    """

    left: ColumnRef
    right: ColumnRef
    join_type: str = field(default="inner", repr=False)

    def __post_init__(self) -> None:
        if self.join_type not in JOIN_TYPES:
            raise ValueError(f"unknown join type {self.join_type!r}")

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class JoinClause:
    """An explicit ``[LEFT|FULL] JOIN table ON cond [AND cond]*`` clause.

    The clause introduces ``table`` into the FROM list; every condition's
    ``join_type`` matches the clause's.  The flat ``SelectStatement.joins``
    list still holds all conditions (clause conditions included) so that
    consumers of the conjunctive representation keep working unchanged.
    """

    join_type: str
    table: TableRef
    conditions: tuple[JoinCondition, ...]

    def __post_init__(self) -> None:
        if self.join_type not in JOIN_TYPES:
            raise ValueError(f"unknown join type {self.join_type!r}")
        if not self.conditions:
            raise ValueError("explicit JOIN clause requires at least one ON condition")

    def __str__(self) -> str:
        keyword = "JOIN" if self.join_type == "inner" else f"{self.join_type.upper()} JOIN"
        conditions = " AND ".join(str(c) for c in self.conditions)
        return f"{keyword} {self.table} ON {conditions}"


Literal = Union[int, float, str, None]


@dataclass(frozen=True)
class ComparisonFilter:
    """A single-table comparison filter, e.g. ``t.production_year > 2000``."""

    column: ColumnRef
    op: str  # one of =, !=, <, <=, >, >=
    value: Literal

    def __str__(self) -> str:
        return f"{self.column} {self.op} {_render_literal(self.value)}"


@dataclass(frozen=True)
class InFilter:
    """``column IN (v1, v2, ...)``, optionally negated."""

    column: ColumnRef
    values: tuple[Literal, ...]
    negated: bool = False

    def __str__(self) -> str:
        rendered = ", ".join(_render_literal(v) for v in self.values)
        keyword = "NOT IN" if self.negated else "IN"
        return f"{self.column} {keyword} ({rendered})"


@dataclass(frozen=True)
class BetweenFilter:
    """``column BETWEEN low AND high``."""

    column: ColumnRef
    low: Literal
    high: Literal

    def __str__(self) -> str:
        return f"{self.column} BETWEEN {_render_literal(self.low)} AND {_render_literal(self.high)}"


@dataclass(frozen=True)
class LikeFilter:
    """``column LIKE 'pattern'``, optionally negated."""

    column: ColumnRef
    pattern: str
    negated: bool = False

    def __str__(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.column} {keyword} '{self.pattern}'"


@dataclass(frozen=True)
class NullFilter:
    """``column IS NULL`` or ``column IS NOT NULL``."""

    column: ColumnRef
    negated: bool = False  # negated=True means IS NOT NULL

    def __str__(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.column} {keyword}"


FilterNode = Union[ComparisonFilter, InFilter, BetweenFilter, LikeFilter, NullFilter]


@dataclass(frozen=True)
class OrderItem:
    """An ORDER BY item with direction."""

    column: ColumnRef
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.column} {'DESC' if self.descending else 'ASC'}"


@dataclass
class SelectStatement:
    """A parsed SELECT statement of the benchmark dialect."""

    select_items: list[AggregateItem]
    from_tables: list[TableRef]
    joins: list[JoinCondition] = field(default_factory=list)
    filters: list[FilterNode] = field(default_factory=list)
    group_by: list[ColumnRef] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    #: Explicit ``JOIN ... ON`` clauses, in syntax order.  Empty for the
    #: comma-form FROM list.  Excluded from ``repr`` so inner-only statements
    #: keep their historical rendering (which participates in fingerprints).
    join_clauses: list[JoinClause] = field(default_factory=list, repr=False)

    @property
    def aliases(self) -> list[str]:
        return [t.alias for t in self.from_tables]

    def filters_for(self, alias: str) -> list[FilterNode]:
        """All single-table filters attached to one FROM alias."""
        return [f for f in self.filters if f.column.alias == alias]

    def to_sql(self) -> str:
        """Render the statement back to SQL text (round-trips through the parser)."""
        select = ", ".join(str(item) for item in self.select_items) or "*"
        if self.join_clauses:
            from_clause = " ".join(
                [str(self.from_tables[0])] + [str(clause) for clause in self.join_clauses]
            )
            # Clause conditions render inside their ON lists; anything left in
            # the flat list (rare, programmatic) still renders in WHERE.
            where_joins = list(self.joins)
            for clause in self.join_clauses:
                for condition in clause.conditions:
                    if condition in where_joins:
                        where_joins.remove(condition)
        else:
            from_clause = ", ".join(str(t) for t in self.from_tables)
            where_joins = list(self.joins)
        parts = [f"SELECT {select}", f"FROM {from_clause}"]
        predicates = [str(j) for j in where_joins] + [str(f) for f in self.filters]
        if predicates:
            parts.append("WHERE " + " AND ".join(predicates))
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(c) for c in self.group_by))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(str(o) for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return "\n".join(parts) + ";"


def _render_literal(value: Literal) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


def render_sql(statement: SelectStatement) -> str:
    """Functional alias of :meth:`SelectStatement.to_sql`."""
    return statement.to_sql()
