"""SQL frontend: lexer, parser, AST and binder for the benchmark query dialect.

The dialect covers what JOB, Ext-JOB, STACK and the random workload
generator need:

* ``SELECT`` lists with ``MIN`` / ``MAX`` / ``COUNT`` / ``SUM`` / ``AVG``
  aggregates and plain column references,
* comma-separated ``FROM`` lists with ``AS`` aliases, *or* an explicit join
  chain ``FROM t0 [INNER] JOIN t1 ON a = b [AND c = d]
  LEFT [OUTER] JOIN t2 ON ... FULL [OUTER] JOIN t3 ON ...`` — the two FROM
  forms cannot be mixed in one statement, and ``ON`` conditions must be
  equi-joins between column references,
* ``WHERE`` conjunctions of equi-join predicates and single-table filters
  (``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``, ``IN``, ``BETWEEN``, ``LIKE``,
  ``NOT LIKE``, ``IS [NOT] NULL``),
* optional ``GROUP BY``, ``ORDER BY`` and ``LIMIT`` (used by Ext-JOB).

Outer-join semantics follow the executor's documented dialect rule
(``docs/EXECUTOR.md``): WHERE filters are scan-level — they apply to each
relation *before* any join, so an ``IS NULL`` filter sees only stored NULLs,
never NULL-extended join output.  The binder rejects inner joins (explicit or
WHERE-form) against aliases made nullable by an earlier outer clause.

Parsing produces a :class:`repro.sql.ast.SelectStatement`; binding against a
:class:`repro.catalog.Schema` produces a
:class:`repro.sql.binder.BoundQuery`, the structure every optimizer in the
repository consumes.  Outer-join clauses additionally surface as
:class:`repro.sql.binder.OuterJoinEdge` entries in ``BoundQuery.outer_edges``
(syntax order), which pin the optimizer's fold order.
"""

from repro.sql.ast import (
    JOIN_TYPES,
    AggregateItem,
    BetweenFilter,
    ColumnRef,
    ComparisonFilter,
    InFilter,
    JoinClause,
    JoinCondition,
    LikeFilter,
    NullFilter,
    OrderItem,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse_select
from repro.sql.binder import (
    BoundQuery,
    BoundRelation,
    FilterPredicate,
    JoinPredicate,
    OuterJoinEdge,
    bind_query,
)

__all__ = [
    "JOIN_TYPES",
    "AggregateItem",
    "BetweenFilter",
    "ColumnRef",
    "ComparisonFilter",
    "InFilter",
    "JoinClause",
    "JoinCondition",
    "LikeFilter",
    "NullFilter",
    "OrderItem",
    "SelectStatement",
    "TableRef",
    "Token",
    "TokenType",
    "tokenize",
    "parse_select",
    "BoundQuery",
    "BoundRelation",
    "FilterPredicate",
    "JoinPredicate",
    "OuterJoinEdge",
    "bind_query",
]
