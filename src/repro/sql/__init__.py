"""SQL frontend: lexer, parser, AST and binder for the benchmark query dialect.

The dialect covers what JOB, Ext-JOB and STACK queries need:

* ``SELECT`` lists with ``MIN`` / ``MAX`` / ``COUNT`` / ``SUM`` / ``AVG``
  aggregates and plain column references,
* comma-separated ``FROM`` lists with ``AS`` aliases,
* ``WHERE`` conjunctions of equi-join predicates and single-table filters
  (``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=``, ``IN``, ``BETWEEN``, ``LIKE``,
  ``NOT LIKE``, ``IS [NOT] NULL``),
* optional ``GROUP BY``, ``ORDER BY`` and ``LIMIT`` (used by Ext-JOB).

Parsing produces a :class:`repro.sql.ast.SelectStatement`; binding against a
:class:`repro.catalog.Schema` produces a
:class:`repro.sql.binder.BoundQuery`, the structure every optimizer in the
repository consumes.
"""

from repro.sql.ast import (
    AggregateItem,
    BetweenFilter,
    ColumnRef,
    ComparisonFilter,
    InFilter,
    JoinCondition,
    LikeFilter,
    NullFilter,
    OrderItem,
    SelectStatement,
    TableRef,
)
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse_select
from repro.sql.binder import BoundQuery, BoundRelation, FilterPredicate, JoinPredicate, bind_query

__all__ = [
    "AggregateItem",
    "BetweenFilter",
    "ColumnRef",
    "ComparisonFilter",
    "InFilter",
    "JoinCondition",
    "LikeFilter",
    "NullFilter",
    "OrderItem",
    "SelectStatement",
    "TableRef",
    "Token",
    "TokenType",
    "tokenize",
    "parse_select",
    "BoundQuery",
    "BoundRelation",
    "FilterPredicate",
    "JoinPredicate",
    "bind_query",
]
