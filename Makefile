# Developer entry points for the paper reproduction.
#
#   make test              - tier-1 test suite (the driver's gate)
#   make lint              - ruff check + reprolint invariant linter
#                            (+ advisory format check), as in CI
#   make typecheck         - mypy over runtime/ + executor/ (skips with a
#                            notice when mypy is not installed; advisory in CI)
#   make bench-smoke       - one fast benchmark as an end-to-end smoke check
#   make bench-parallel    - process-pool sweep with resume-skip assertion, as in CI
#   make bench-distributed - work-queue sweep with a killed worker, lease
#                            re-queue, resume and shard merge, as in CI
#   make bench-distributed-tcp - the same crash-recovery sweep over the TCP
#                            queue transport: no shared queue/store directory,
#                            HMAC-authenticated frames (REPRO_QUEUE_SECRET)
#   make bench-progress    - fast-cadence progress-telemetry sweep over the
#                            secured TCP transport (snapshot every 0.5 s)
#   make bench-executor    - row vs columnar engine on the full JOB workload;
#                            asserts byte-equivalence and writes the speedup
#                            to BENCH_executor_columnar.json
#   make bench-plan-serving - concurrent clients replaying random SQL against
#                            the keyed PlanServer; asserts byte-identical
#                            plans, a rejected unauthenticated client and the
#                            post-invalidate hit-rate drop, and writes
#                            qps/p50/p95/p99/hit-rate to BENCH_plan_serving.json
#                            (+ BENCH_plan_serving_stats.json server snapshot)
#   make fuzz-engines      - 1000 seeded random queries through the row
#                            engine, the columnar engine and a brute-force
#                            oracle; failing queries land in FUZZ_CORPUS
#   make bench             - every benchmark at reduced scale
#   make docs-check        - markdown link check over README + docs/, as in CI
#   make example           - the parallel+resume runtime demo
#
# Benchmarks honour REPRO_BENCH_SCALE / REPRO_BENCH_FULL / REPRO_BENCH_WORKERS /
# REPRO_BENCH_EXECUTOR / REPRO_BENCH_STORE (see benchmarks/conftest.py).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

# Store directory of the bench-parallel resume check (temp dir by default).
BENCH_PARALLEL_STORE ?= $(shell mktemp -d /tmp/repro-store.XXXXXX)

# Sharded store of the bench-distributed crash-recovery check (the merged
# flat store lands next to it at <dir>-merged).
BENCH_DISTRIBUTED_STORE ?= $(shell mktemp -d /tmp/repro-dist.XXXXXX)

# Coordinator-local store of the TCP-transport crash-recovery check (workers
# never see this path: tasks and results travel over the socket).
BENCH_DISTRIBUTED_TCP_STORE ?= $(shell mktemp -d /tmp/repro-dist-tcp.XXXXXX)

# Store of the progress-telemetry sweep (bench-progress).
BENCH_PROGRESS_STORE ?= $(shell mktemp -d /tmp/repro-progress.XXXXXX)

# Failing-query corpus of the differential fuzz run (fuzz-engines); one JSON
# file per diverging query, empty on success.
FUZZ_CORPUS ?= $(shell mktemp -d /tmp/repro-fuzz-corpus.XXXXXX)

# Shared HMAC secret of the authenticated TCP sweeps (override to taste; the
# value only needs to match between coordinator and workers).
REPRO_QUEUE_SECRET ?= local-bench-secret

.PHONY: test lint typecheck docs-check bench-smoke bench-parallel bench-distributed bench-distributed-tcp bench-progress bench-executor bench-plan-serving fuzz-engines bench example

test:
	$(PYTHON) -m pytest -x -q

lint:
	ruff check .
	$(PYTHON) -m tools.reprolint src
	-ruff format --check .

typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy --config-file mypy.ini src/repro/runtime src/repro/executor; \
	else \
		echo "typecheck: mypy not installed, skipping (pip install mypy to enable)"; \
	fi

docs-check:
	$(PYTHON) tools/check_docs_links.py

bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_figure3_splits.py -q

bench-parallel:
	REPRO_BENCH_WORKERS=2 REPRO_BENCH_EXECUTOR=process \
	REPRO_BENCH_STORE=$(BENCH_PARALLEL_STORE) \
	$(PYTHON) examples/parallel_experiments.py

bench-distributed:
	REPRO_BENCH_WORKERS=2 REPRO_BENCH_STORE=$(BENCH_DISTRIBUTED_STORE) \
	$(PYTHON) examples/distributed_sweep.py

bench-distributed-tcp:
	REPRO_BENCH_WORKERS=2 REPRO_BENCH_TRANSPORT=tcp \
	REPRO_QUEUE_SECRET=$(REPRO_QUEUE_SECRET) \
	REPRO_BENCH_STORE=$(BENCH_DISTRIBUTED_TCP_STORE) \
	$(PYTHON) examples/distributed_sweep.py

bench-progress:
	REPRO_BENCH_WORKERS=2 REPRO_BENCH_TRANSPORT=tcp REPRO_BENCH_PROGRESS=0.5 \
	REPRO_QUEUE_SECRET=$(REPRO_QUEUE_SECRET) \
	REPRO_BENCH_STORE=$(BENCH_PROGRESS_STORE) \
	$(PYTHON) examples/distributed_sweep.py

bench-executor:
	$(PYTHON) -m pytest benchmarks/bench_executor_columnar.py -q -s

bench-plan-serving:
	REPRO_QUEUE_SECRET=$(REPRO_QUEUE_SECRET) \
	$(PYTHON) -m pytest benchmarks/bench_plan_serving.py -q -s

fuzz-engines:
	REPRO_FUZZ_COUNT=1000 REPRO_FUZZ_CORPUS=$(FUZZ_CORPUS) \
	$(PYTHON) -m pytest tests/test_fuzz_engines.py -q

bench:
	$(PYTHON) -m pytest benchmarks -q

example:
	$(PYTHON) examples/parallel_experiments.py
