# Developer entry points for the paper reproduction.
#
#   make test          - tier-1 test suite (the driver's gate)
#   make bench-smoke   - one fast benchmark as an end-to-end smoke check
#   make bench         - every benchmark at reduced scale
#   make example       - the parallel+resume runtime demo
#
# Benchmarks honour REPRO_BENCH_SCALE / REPRO_BENCH_FULL / REPRO_BENCH_WORKERS /
# REPRO_BENCH_STORE (see benchmarks/conftest.py).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench-smoke bench example

test:
	$(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHON) -m pytest benchmarks/bench_figure3_splits.py -q

bench:
	$(PYTHON) -m pytest benchmarks -q

example:
	$(PYTHON) examples/parallel_experiments.py
