#!/usr/bin/env python
"""Markdown link checker (stdlib only) — the ``make docs-check`` gate.

Walks every tracked ``*.md`` file in the repository and verifies that

* relative links point at files or directories that exist,
* fragment links (``...#heading`` or in-page ``#heading``) resolve to a
  heading in the target file (GitHub-style slugs),
* no link uses an absolute filesystem path.

External links (``http(s)://``, ``mailto:``) are *not* fetched — CI must not
depend on the network — but obviously malformed ones (empty target) still
fail. Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Directories never scanned for markdown files.
SKIP_DIRS = {".git", ".venv", "__pycache__", "node_modules", ".pytest_cache"}

#: Inline markdown links: [text](target). Images share the syntax via ![...].
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+(?:\s+\"[^\"]*\")?)\)")

#: ATX headings, for fragment resolution.
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")

#: Fenced code blocks must not contribute links or headings.
FENCE_RE = re.compile(r"^(```|~~~)")


def markdown_files() -> list[Path]:
    """Every markdown file in the repository outside skipped directories."""
    files = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            files.append(path)
    return files


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, spaces to dashes."""
    # Strip inline code/links down to their text before slugifying.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def visible_lines(path: Path) -> list[str]:
    """The file's lines with fenced code blocks blanked out."""
    lines = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else line)
    return lines


def heading_slugs(path: Path) -> set[str]:
    """All anchor slugs a markdown file exposes (with -1/-2 duplicates)."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for line in visible_lines(path):
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(path: Path) -> list[str]:
    """All broken-link complaints for one markdown file."""
    problems = []
    for lineno, line in enumerate(visible_lines(path), start=1):
        for raw in LINK_RE.findall(line):
            target = raw.split('"')[0].strip().strip("<>")
            where = f"{path.relative_to(REPO_ROOT)}:{lineno}"
            if not target:
                problems.append(f"{where}: empty link target")
                continue
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("/"):
                problems.append(f"{where}: absolute path link {target!r}")
                continue
            base, _, fragment = target.partition("#")
            dest = (path.parent / base).resolve() if base else path
            if not dest.exists():
                problems.append(f"{where}: missing file {target!r}")
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in heading_slugs(dest):
                    problems.append(f"{where}: missing anchor {target!r}")
    return problems


def main() -> int:
    files = markdown_files()
    problems = [problem for path in files for problem in check_file(path)]
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"docs-check: {len(files)} markdown files, {len(problems)} broken links")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
