"""Repository tooling (stdlib-only): docs link checker, reprolint."""
