"""The ``Finding`` record and the rule catalog.

Every rule module reports violations as :class:`Finding` instances; the
engine sorts them, filters per-line suppressions, and the CLI renders them
as text or JSON.  ``RULE_CATALOG`` is the single authoritative list of rule
ids — the CLI's ``--list-rules``, the suppression parser and the docs all
key off it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Rule id -> one-line description.  The first three characters of an id are
#: its family (DET/SEC/CONC/PAR); ``E999`` is the parse-failure pseudo-rule.
RULE_CATALOG: dict[str, str] = {
    "DET101": "wall-clock read (time.time/time.time_ns) in a deterministic path",
    "DET102": "calendar-clock read (datetime.now/utcnow/today, date.today) in a deterministic path",
    "DET103": "call into a process-global or OS-entropy RNG (random.*, np.random.*) in a deterministic path",
    "DET104": "RNG constructed without an explicit seed (random.Random(), np.random.default_rng()) in a deterministic path",
    "SEC201": "pickle.loads/pickle.load outside the allowlisted trusted-input functions",
    "SEC202": "network-reachable pickle.loads not dominated by a signature-verify gate in the same function",
    "CONC401": "lock-owning class mutates a shared self._* attribute outside 'with self._lock'",
    "CONC402": "lock-owning class reads a mutated self._* attribute outside 'with self._lock'",
    "PAR301": "row/columnar engine buffer-pool charge sequences diverge for a paired operator",
    "PAR302": "operator function missing from one side of a row/columnar engine pair",
    "E999": "file could not be parsed",
}

#: Rule families recognised by ``# reprolint: disable=<FAMILY>``.
FAMILIES = ("DET", "SEC", "CONC", "PAR")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def sort_key(self) -> tuple:
        """Stable ordering: by file, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        """JSON-ready form (the ``--json`` surface; keys are stable)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human-readable form, ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
