"""Command line surface: ``python -m tools.reprolint [paths...]``.

Exit codes: ``0`` clean, ``1`` at least one finding, ``2`` usage error
(nonexistent path).  ``--json`` emits a machine-readable finding list on
stdout (an empty JSON array when clean) for CI annotation tooling;
``--list-rules`` prints the rule catalog and exits.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.reprolint.config import default_config
from tools.reprolint.engine import lint_paths
from tools.reprolint.findings import RULE_CATALOG


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST-based invariant linter: determinism, pickle-taint, "
        "lock-guard and engine-parity rules (docs/STATIC_ANALYSIS.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array on stdout instead of text lines",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(RULE_CATALOG.items()):
            print(f"{rule}  {description}")
        return 0

    paths = [Path(path) for path in args.paths]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"reprolint: path does not exist: {path}", file=sys.stderr)
        return 2

    findings = lint_paths(paths, default_config())
    if args.json:
        print(json.dumps([finding.to_dict() for finding in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        count = len(findings)
        label = "finding" if count == 1 else "findings"
        print(f"reprolint: {count} {label}", file=sys.stderr)
    return 1 if findings else 0
