"""Lint configuration: which paths each rule family audits, and allowlists.

The defaults returned by :func:`default_config` encode this repository's
invariants (documented in ``docs/STATIC_ANALYSIS.md``); the self-test suite
builds custom configs pointing the same rules at fixture files.  Path
patterns are ``fnmatch`` globs matched against POSIX-style paths, anchored
at the end (``*/repro/executor/*.py`` matches wherever the tree is checked
out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path


def path_matches(path: Path | str, patterns: tuple[str, ...]) -> bool:
    """Whether ``path`` (any absolute/relative spelling) matches a pattern."""
    posix = Path(path).as_posix()
    return any(fnmatch(posix, pattern) for pattern in patterns)


@dataclass(frozen=True)
class ParityPair:
    """One operator implemented by both engines, paired for the PAR rule."""

    operator: str
    row_function: str
    columnar_function: str


@dataclass(frozen=True)
class LintConfig:
    """Everything the rule modules need to know about the audited tree."""

    #: DET: deterministic paths — no wall clock, no unseeded randomness.
    det_paths: tuple[str, ...] = ()
    #: DET: sanctioned exceptions, ``(path pattern, function qualname)``.
    det_allow: tuple[tuple[str, str], ...] = ()
    #: SEC: functions allowed to unpickle, ``(path pattern, qualname)``.
    sec_allow: tuple[tuple[str, str], ...] = ()
    #: SEC: network-reachable modules where every unpickle must additionally
    #: be dominated by a signature-verify gate (SEC202).
    sec_verified_paths: tuple[str, ...] = ()
    #: CONC: modules whose lock-owning classes are audited.
    conc_paths: tuple[str, ...] = ()
    #: PAR: the two engine modules (path patterns locating them among the
    #: scanned files) and the operator pairs extracted from each.
    par_row_module: str | None = None
    par_columnar_module: str | None = None
    par_pairs: tuple[ParityPair, ...] = ()
    #: PAR: the buffer-pool charge calls whose sequence must match.
    par_charge_calls: frozenset[str] = frozenset(
        {"access_pages", "access_fraction", "charge_join_type"}
    )
    #: Directories never descended into.
    skip_dirs: frozenset[str] = frozenset({"__pycache__", ".git", ".venv", "node_modules"})
    #: Files skipped entirely (fixtures shipped inside the tool's own tests).
    skip_paths: tuple[str, ...] = ()

    def det_allowed(self, path: Path | str, qualname: str) -> bool:
        """Whether a DET finding in ``qualname`` of ``path`` is sanctioned."""
        return _entry_matches(self.det_allow, path, qualname)

    def sec_allowed(self, path: Path | str, qualname: str) -> bool:
        """Whether ``qualname`` of ``path`` may call ``pickle.loads`` at all."""
        return _entry_matches(self.sec_allow, path, qualname)


def _entry_matches(
    entries: tuple[tuple[str, str], ...], path: Path | str, qualname: str
) -> bool:
    posix = Path(path).as_posix()
    return any(fnmatch(posix, pattern) and qualname == name for pattern, name in entries)


@dataclass
class ParitySpec:
    """Resolved PAR inputs: the two module files plus the pair list."""

    row_path: Path
    columnar_path: Path
    pairs: tuple[ParityPair, ...]
    charge_calls: frozenset[str] = field(
        default_factory=lambda: frozenset({"access_pages", "access_fraction", "charge_join_type"})
    )


def default_config() -> LintConfig:
    """The project configuration: the invariants this repository documents.

    * DET audits every simulated-work path whose output feeds results —
      ``executor/``, ``optimizer/``, ``core/``, ``plans/``, ``encoding/`` —
      plus the runtime (where only monotonic clocks are legitimate).  The one
      sanctioned wall-clock read is ``WorkQueue.filesystem_now``'s documented
      degrade-gracefully fallback when the clock-probe file is unwritable.
    * SEC allows unpickling exactly where docs say bytes are trusted or
      verified: the file queue's task files (coordinator-written, on a
      filesystem that is the trust boundary) and ``recv_frame`` (which
      HMAC-verifies before unpickling — enforced structurally by SEC202).
    * CONC audits the whole runtime package; the lock-owning classes today
      are ``QueueServer``, ``SweepProgress`` and ``PlanCache``.
    * PAR pairs the four operators of ``executor/operators.py`` with their
      ``executor/columnar.py`` counterparts, pinning the "identical calls in
      identical order" oracle contract from ``docs/EXECUTOR.md``.
    """
    return LintConfig(
        det_paths=(
            "*/repro/executor/*.py",
            "*/repro/optimizer/*.py",
            "*/repro/core/*.py",
            "*/repro/plans/*.py",
            "*/repro/encoding/*.py",
            "*/repro/runtime/*.py",
        ),
        det_allow=(
            # Touch-and-stat clock probe: the except-OSError fallback when the
            # queue root is unwritable, documented in WorkQueue.filesystem_now.
            ("*/repro/runtime/workqueue.py", "WorkQueue.filesystem_now"),
        ),
        sec_allow=(
            # Task files are written by the coordinator into the queue
            # directory; the shared filesystem is the trust boundary.
            ("*/repro/runtime/workqueue.py", "WorkQueue._claim_first"),
            # The one sanctioned network unpickler; SEC202 additionally
            # proves each call is behind an authentication gate.
            ("*/repro/runtime/netqueue.py", "recv_frame"),
        ),
        sec_verified_paths=("*/repro/runtime/netqueue.py",),
        conc_paths=("*/repro/runtime/*.py",),
        par_row_module="*/repro/executor/operators.py",
        par_columnar_module="*/repro/executor/columnar.py",
        par_pairs=(
            ParityPair("scan", "execute_scan", "columnar_scan"),
            ParityPair("join", "execute_join", "columnar_join"),
            ParityPair("index_nestloop", "execute_index_nestloop", "columnar_index_nestloop"),
            ParityPair("outer_join", "execute_outer_join", "columnar_outer_join"),
        ),
        skip_paths=("*/tests/reprolint_fixtures/*",),
    )
