"""DET rules: no wall clock, no unseeded randomness in deterministic paths.

The reproduction's results must be pure functions of (workload, config,
seed): sweeps replay byte-identically across serial, parallel and
distributed execution, and simulated timings come from deterministic work
accounting, never the host clock.  Any wall-clock read or process-global RNG
call inside a deterministic path silently breaks that contract, usually in a
way only a cross-transport equivalence test can catch at runtime — so it is
rejected statically instead:

* **DET101** ``time.time()`` / ``time.time_ns()``.  Monotonic clocks
  (``time.monotonic``, ``time.perf_counter``) stay legal: they drive leases,
  timeouts and *measured* timing mode, none of which feed deterministic
  results.
* **DET102** ``datetime.now()`` / ``utcnow()`` / ``today()`` and
  ``date.today()``.
* **DET103** calls through a process-global or OS-entropy RNG: module-level
  ``random.*`` (the shared, unseeded global generator) and module-level
  ``numpy.random.*`` (the legacy global state), plus ``random.SystemRandom``
  (entropy by design).
* **DET104** RNG constructors without an explicit seed argument:
  ``random.Random()``, ``np.random.default_rng()``, ``np.random.RandomState()``.
  Pass the task-derived seed instead.

Sanctioned exceptions (e.g. the clock-probe fallback in
``WorkQueue.filesystem_now``) are named in the config's ``det_allow`` list —
an allowlist entry, unlike an inline suppression, is reviewed once and
documented centrally.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint.astutil import dotted_name, qualname_of
from tools.reprolint.config import LintConfig, path_matches
from tools.reprolint.findings import Finding

#: Wall-clock reads (DET101).
_WALL_CLOCK = {"time.time", "time.time_ns"}

#: Calendar-clock reads (DET102) under their usual import spellings.
_CALENDAR_CLOCK = {
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}

#: Names under ``numpy.random`` that are *not* the legacy global generator:
#: constructors and machinery (DET104 judges their seeding separately).
_NP_RANDOM_NON_GLOBAL = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: Constructors that must receive an explicit seed (DET104).
_SEEDED_CONSTRUCTORS = {
    "random.Random",
    "np.random.default_rng",
    "numpy.random.default_rng",
    "np.random.RandomState",
    "numpy.random.RandomState",
}


def _classify(call: ast.Call) -> tuple[str, str] | None:
    """(rule id, complaint) for one call, or ``None`` when it is clean."""
    name = dotted_name(call.func)
    if name is None:
        return None
    if name in _WALL_CLOCK:
        return "DET101", f"wall-clock read {name}() in a deterministic path"
    if name in _CALENDAR_CLOCK:
        return "DET102", f"calendar-clock read {name}() in a deterministic path"
    if name in _SEEDED_CONSTRUCTORS:
        if not call.args and not call.keywords:
            return "DET104", f"{name}() constructed without an explicit seed"
        return None
    if name in ("random.SystemRandom", "np.random.SystemRandom"):
        return "DET103", f"{name} draws OS entropy and can never replay deterministically"
    parts = name.split(".")
    if parts[0] == "random" and len(parts) == 2 and parts[1] not in ("Random", "SystemRandom"):
        return (
            "DET103",
            f"{name}() uses the process-global RNG; use a seeded random.Random(seed) instance",
        )
    if parts[0] in ("np", "numpy") and len(parts) == 3 and parts[1] == "random":
        if parts[2] not in _NP_RANDOM_NON_GLOBAL:
            return (
                "DET103",
                f"{name}() uses numpy's legacy global RNG; use np.random.default_rng(seed)",
            )
    return None


def check(tree: ast.AST, path: Path, config: LintConfig) -> list[Finding]:
    """DET findings for one parsed module (parents must be attached)."""
    if not path_matches(path, config.det_paths):
        return []
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        classified = _classify(node)
        if classified is None:
            continue
        rule, message = classified
        qualname = qualname_of(node)
        if config.det_allowed(path, qualname):
            continue
        findings.append(
            Finding(str(path), node.lineno, node.col_offset, rule, message)
        )
    return findings
