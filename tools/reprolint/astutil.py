"""Shared AST plumbing: dotted names, parents, scopes, ordered traversal."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else.

    Calls interposed in the chain (``a().b``) break it — the result is
    ``None`` — which is what rule matching wants: ``time.time`` must mean the
    module attribute, not an arbitrary expression that happens to end in
    ``.time``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def attach_parents(tree: ast.AST) -> None:
    """Set ``node.parent`` on every node (the module's parent is ``None``)."""
    tree.parent = None  # type: ignore[attr-defined]
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child.parent = parent  # type: ignore[attr-defined]


def enclosing_statement(node: ast.AST) -> ast.stmt | None:
    """The innermost statement containing ``node`` (requires parents)."""
    current: ast.AST | None = node
    while current is not None and not isinstance(current, ast.stmt):
        current = getattr(current, "parent", None)
    return current


def qualname_of(node: ast.AST) -> str:
    """Dotted function/class scope of ``node`` (requires parents).

    ``ClassName.method`` for a node inside a method, ``function`` at module
    level, ``""`` for module-scope code.  Nested functions join with dots
    (``outer.inner``), matching how allowlists name their entries.
    """
    parts: list[str] = []
    current: ast.AST | None = getattr(node, "parent", None)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            parts.append(current.name)
        current = getattr(current, "parent", None)
    return ".".join(reversed(parts))


def calls_in_order(tree: ast.AST) -> list[ast.Call]:
    """Every ``ast.Call`` under ``tree`` in source order.

    ``ast.walk`` is breadth-first; rules that care about call *sequence*
    (PAR) need position order instead.
    """
    calls = [node for node in ast.walk(tree) if isinstance(node, ast.Call)]
    calls.sort(key=lambda call: (call.lineno, call.col_offset))
    return calls


def statements_before_on_path(node: ast.AST) -> list[ast.stmt]:
    """Statements that execute before ``node`` on every structured path.

    Walks the ancestor chain (requires parents): for each enclosing statement
    block — a function body, an ``if`` suite, a ``with`` body — collect the
    sibling statements *preceding* the ancestor that leads to ``node``.  For
    loop-free structured code these are exactly the node's pre-dominators,
    which is all the SEC domination check needs; a statement inside a loop is
    conservatively still "before" its successors in the same suite.
    """
    before: list[ast.stmt] = []
    current: ast.AST | None = enclosing_statement(node)
    while current is not None:
        parent = getattr(current, "parent", None)
        if parent is None:
            break
        for field in ("body", "orelse", "finalbody"):
            suite = getattr(parent, field, None)
            if isinstance(suite, list) and current in suite:
                before.extend(suite[: suite.index(current)])
                break
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            break  # domination is a same-function property: stop at the boundary
        # Non-statement suite owners (an ExceptHandler) climb to their own
        # enclosing statement; everything else (If/With/For/Try/...) is one.
        current = parent if isinstance(parent, ast.stmt) else getattr(parent, "parent", None)
    return before
