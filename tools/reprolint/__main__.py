"""``python -m tools.reprolint`` — see :mod:`tools.reprolint.cli`."""

from tools.reprolint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
