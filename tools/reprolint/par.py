"""PAR rule: the two engines charge the buffer pool identically.

``docs/EXECUTOR.md``'s oracle contract says the columnar operators must
charge the buffer pool with *the same calls in the same order* and compute
metrics with the same arithmetic as their row counterparts — that is what
makes the row engine a byte-exact oracle for results, ``OperatorMetrics``
and simulated timings.  The equivalence property suite checks this at
runtime for the plans it happens to execute; PAR checks it for *every*
textual call site:

* **PAR301** — for a paired operator, the ordered sequence of buffer-pool
  charge calls (``access_pages``, ``access_fraction``, ``charge_join_type``)
  extracted from the row module differs from the columnar module's sequence.
  Calls are compared as rendered source — name, positional arguments and
  keywords — so a charge whose *arguments* drift (``sequential=True`` vs
  ``False``, a different page count expression) fails, not just a missing
  or reordered call.
* **PAR302** — one side of a configured pair has no function of the
  expected name (an operator was renamed or deleted in one engine only).

The comparison is deliberately textual: both modules are written against the
same local vocabulary (``node``, ``data``, ``buffer_pool``), and a rename
that breaks the comparison is exactly the review moment the rule should
force.
"""

from __future__ import annotations

import ast

from tools.reprolint.astutil import calls_in_order, dotted_name
from tools.reprolint.config import ParitySpec
from tools.reprolint.findings import Finding


def _charge_signature(call: ast.Call, charge_calls: frozenset[str]) -> str | None:
    """Canonical rendering of a charge call, or ``None`` for other calls."""
    name = dotted_name(call.func)
    if name is None:
        return None
    short = name.split(".")[-1]
    if short not in charge_calls:
        return None
    rendered = [ast.unparse(arg) for arg in call.args]
    rendered += [f"{kw.arg}={ast.unparse(kw.value)}" for kw in call.keywords]
    return f"{short}({', '.join(rendered)})"


def _functions(tree: ast.AST) -> dict[str, ast.FunctionDef]:
    """Top-level (and method) function definitions by name, first wins."""
    functions: dict[str, ast.FunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.setdefault(node.name, node)
    return functions


def charge_sequence(function: ast.AST, charge_calls: frozenset[str]) -> list[tuple[int, str]]:
    """``(line, signature)`` for each charge call in source order."""
    sequence: list[tuple[int, str]] = []
    for call in calls_in_order(function):
        signature = _charge_signature(call, charge_calls)
        if signature is not None:
            sequence.append((call.lineno, signature))
    return sequence


def check_parity(spec: ParitySpec) -> list[Finding]:
    """PAR findings comparing the configured row/columnar module pair."""
    findings: list[Finding] = []
    try:
        row_tree = ast.parse(spec.row_path.read_text(encoding="utf-8"))
        col_tree = ast.parse(spec.columnar_path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError) as exc:
        return [Finding(str(spec.columnar_path), 1, 0, "E999", f"parity inputs unreadable: {exc}")]
    row_functions = _functions(row_tree)
    col_functions = _functions(col_tree)
    for pair in spec.pairs:
        row_fn = row_functions.get(pair.row_function)
        col_fn = col_functions.get(pair.columnar_function)
        if row_fn is None or col_fn is None:
            missing_path = spec.row_path if row_fn is None else spec.columnar_path
            missing_name = pair.row_function if row_fn is None else pair.columnar_function
            findings.append(
                Finding(
                    str(missing_path),
                    1,
                    0,
                    "PAR302",
                    f"operator '{pair.operator}': function {missing_name} not found "
                    f"(its engine counterpart still exists)",
                )
            )
            continue
        row_seq = charge_sequence(row_fn, spec.charge_calls)
        col_seq = charge_sequence(col_fn, spec.charge_calls)
        if [sig for _, sig in row_seq] == [sig for _, sig in col_seq]:
            continue
        detail = _divergence(row_seq, col_seq)
        findings.append(
            Finding(
                str(spec.columnar_path),
                col_fn.lineno,
                col_fn.col_offset,
                "PAR301",
                f"operator '{pair.operator}': buffer-pool charge sequences diverge "
                f"between {pair.row_function} and {pair.columnar_function}: {detail}",
            )
        )
    return findings


def _divergence(row_seq: list[tuple[int, str]], col_seq: list[tuple[int, str]]) -> str:
    """Human-readable first point of divergence between two charge sequences."""
    for index, (row, col) in enumerate(zip(row_seq, col_seq)):
        if row[1] != col[1]:
            return (
                f"call #{index + 1} is {row[1]!r} (row, line {row[0]}) "
                f"vs {col[1]!r} (columnar, line {col[0]})"
            )
    if len(row_seq) > len(col_seq):
        line, sig = row_seq[len(col_seq)]
        return f"columnar side is missing charge #{len(col_seq) + 1}: {sig!r} (row line {line})"
    line, sig = col_seq[len(row_seq)]
    return f"row side is missing charge #{len(row_seq) + 1}: {sig!r} (columnar line {line})"
