"""CONC rule: lock-owning classes guard their shared ``self._*`` mutations.

The runtime's coordinator threads, heartbeats, progress reporters and the
TCP queue's handler threads all share objects whose classes announce their
concurrency story by creating a ``self._lock``.  That announcement is the
contract CONC401 enforces: once a class constructs a ``threading.Lock`` /
``RLock`` attribute, every mutation of an underscore-prefixed ``self``
attribute outside ``__init__`` must happen inside a ``with self._lock``
block.  (``__init__`` runs before the object is shared — publication
happens-before any other thread's access — so construction is exempt; reads
are not flagged, a deliberate precision trade-off documented in
``docs/STATIC_ANALYSIS.md``.)

Mutations recognised: attribute assignment and augmented assignment
(``self._x = ...``, ``self._x += ...``), item assignment/deletion on the
attribute (``self._d[k] = ...``, ``del self._d[k]``), and calls to the
standard container mutators (``self._d.pop(...)``, ``self._s.add(...)``,
...).  Calls like ``self._stop.set()`` on a ``threading.Event`` are not in
the mutator list — events carry their own synchronization.

A guard is any enclosing ``with`` whose context expression mentions an
identifier containing ``lock`` (``self._lock``, a module-level
``_PRINT_LOCK``); the rule checks guardedness, not *which* lock — one lock
per class is the codebase's convention.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint.astutil import dotted_name
from tools.reprolint.config import LintConfig, path_matches
from tools.reprolint.findings import Finding

#: Methods whose bodies are construction, exempt from guarding.
_CONSTRUCTORS = {"__init__", "__post_init__", "__new__"}

#: Container methods that mutate their receiver.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}

#: Lock constructors that mark a class as CONC-audited.
_LOCK_CONSTRUCTORS = {"threading.Lock", "threading.RLock", "Lock", "RLock"}


def _self_underscore_attr(node: ast.AST) -> str | None:
    """``_name`` when ``node`` is ``self._name``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr.startswith("_")
        and not node.attr.startswith("__")
    ):
        return node.attr
    return None


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Names of ``self.<attr>`` bound to a ``threading.Lock()``/``RLock()``."""
    attrs: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        ctor = dotted_name(node.value.func)
        if ctor not in _LOCK_CONSTRUCTORS:
            continue
        for target in node.targets:
            attr = _self_underscore_attr(target)
            if attr is not None:
                attrs.add(attr)
    return attrs


def _mentions_lock(node: ast.AST) -> bool:
    """Whether any identifier under ``node`` contains ``lock``."""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name) and "lock" in inner.id.lower():
            return True
        if isinstance(inner, ast.Attribute) and "lock" in inner.attr.lower():
            return True
    return False


def _is_guarded(node: ast.AST) -> bool:
    """Whether ``node`` sits inside a ``with <...lock...>`` (needs parents)."""
    current = getattr(node, "parent", None)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            if any(_mentions_lock(item.context_expr) for item in current.items):
                return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Locks do not flow across function boundaries here: a helper
            # must take the lock itself (or be renamed *_locked and given a
            # suppression) rather than assume its caller holds it.
            return False
        current = getattr(current, "parent", None)
    return False


def _mutations(method: ast.AST):
    """Yield ``(node, attr, verb)`` for each shared-attribute mutation."""
    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue  # bare annotation: declares, does not mutate
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = _self_underscore_attr(target)
                if attr is not None:
                    yield node, attr, "assigns"
                if isinstance(target, ast.Subscript):
                    attr = _self_underscore_attr(target.value)
                    if attr is not None:
                        yield node, attr, "writes an item of"
                if isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        attr = _self_underscore_attr(element)
                        if attr is not None:
                            yield node, attr, "assigns"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_underscore_attr(target)
                if attr is not None:
                    yield node, attr, "deletes"
                if isinstance(target, ast.Subscript):
                    attr = _self_underscore_attr(target.value)
                    if attr is not None:
                        yield node, attr, "deletes an item of"
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                attr = _self_underscore_attr(func.value)
                if attr is not None:
                    yield node, attr, f"calls .{func.attr}() on"


def check(tree: ast.AST, path: Path, config: LintConfig) -> list[Finding]:
    """CONC findings for one parsed module (parents must be attached)."""
    if not path_matches(path, config.conc_paths):
        return []
    findings: list[Finding] = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks = _lock_attrs(cls)
        if not locks:
            continue
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _CONSTRUCTORS:
                continue
            for node, attr, verb in _mutations(method):
                if attr in locks:
                    continue  # re-binding the lock itself is its own hazard, not this rule's
                if _is_guarded(node):
                    continue
                findings.append(
                    Finding(
                        str(path),
                        node.lineno,
                        node.col_offset,
                        "CONC401",
                        f"{cls.name}.{method.name} {verb} shared attribute "
                        f"'self.{attr}' outside 'with self.{next(iter(sorted(locks)))}'",
                    )
                )
    return findings
