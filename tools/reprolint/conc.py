"""CONC rules: lock-owning classes guard their shared ``self._*`` state.

The runtime's coordinator threads, heartbeats, progress reporters and the
TCP queue's handler threads all share objects whose classes announce their
concurrency story by creating a ``self._lock``.  That announcement is the
contract the CONC family enforces: once a class constructs a
``threading.Lock`` / ``RLock`` attribute,

* **CONC401** — every mutation of an underscore-prefixed ``self`` attribute
  outside ``__init__`` must happen inside a ``with self._lock`` block.
* **CONC402** — every *read* of an attribute the class mutates outside its
  constructors must be guarded too.  An unlocked ``len(self._entries)`` next
  to a locked ``self._entries[key] = ...`` is a data race even on CPython
  (``OrderedDict`` iteration can observe a resize mid-flight), and it reads
  a counter that may be half of a multi-field update.  Attributes only ever
  assigned in ``__init__``/``__post_init__``/``__new__`` are immutable
  configuration — reading them anywhere is fine and not flagged.  Methods
  named ``*_locked`` are exempt: that suffix is the codebase's caller-holds-
  the-lock convention (they must only be invoked from guarded code).

``__init__`` runs before the object is shared — publication happens-before
any other thread's access — so construction is exempt from both rules.

Mutations recognised: attribute assignment and augmented assignment
(``self._x = ...``, ``self._x += ...``), item assignment/deletion on the
attribute (``self._d[k] = ...``, ``del self._d[k]``), and calls to the
standard container mutators (``self._d.pop(...)``, ``self._s.add(...)``,
...).  Calls like ``self._stop.set()`` on a ``threading.Event`` are not in
the mutator list — events carry their own synchronization.

A guard is any enclosing ``with`` whose context expression mentions an
identifier containing ``lock`` (``self._lock``, a module-level
``_PRINT_LOCK``); the rules check guardedness, not *which* lock — one lock
per class is the codebase's convention.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint.astutil import dotted_name
from tools.reprolint.config import LintConfig, path_matches
from tools.reprolint.findings import Finding

#: Methods whose bodies are construction, exempt from guarding.
_CONSTRUCTORS = {"__init__", "__post_init__", "__new__"}

#: Container methods that mutate their receiver.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}

#: Lock constructors that mark a class as CONC-audited.
_LOCK_CONSTRUCTORS = {"threading.Lock", "threading.RLock", "Lock", "RLock"}


def _self_underscore_attr(node: ast.AST) -> str | None:
    """``_name`` when ``node`` is ``self._name``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr.startswith("_")
        and not node.attr.startswith("__")
    ):
        return node.attr
    return None


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Names of ``self.<attr>`` bound to a ``threading.Lock()``/``RLock()``."""
    attrs: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        ctor = dotted_name(node.value.func)
        if ctor not in _LOCK_CONSTRUCTORS:
            continue
        for target in node.targets:
            attr = _self_underscore_attr(target)
            if attr is not None:
                attrs.add(attr)
    return attrs


def _mentions_lock(node: ast.AST) -> bool:
    """Whether any identifier under ``node`` contains ``lock``."""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name) and "lock" in inner.id.lower():
            return True
        if isinstance(inner, ast.Attribute) and "lock" in inner.attr.lower():
            return True
    return False


def _is_guarded(node: ast.AST) -> bool:
    """Whether ``node`` sits inside a ``with <...lock...>`` (needs parents)."""
    current = getattr(node, "parent", None)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            if any(_mentions_lock(item.context_expr) for item in current.items):
                return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Locks do not flow across function boundaries here: a helper
            # must take the lock itself (or be renamed *_locked and given a
            # suppression) rather than assume its caller holds it.
            return False
        current = getattr(current, "parent", None)
    return False


def _mutations(method: ast.AST):
    """Yield ``(node, attr, verb)`` for each shared-attribute mutation."""
    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue  # bare annotation: declares, does not mutate
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                attr = _self_underscore_attr(target)
                if attr is not None:
                    yield node, attr, "assigns"
                if isinstance(target, ast.Subscript):
                    attr = _self_underscore_attr(target.value)
                    if attr is not None:
                        yield node, attr, "writes an item of"
                if isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        attr = _self_underscore_attr(element)
                        if attr is not None:
                            yield node, attr, "assigns"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _self_underscore_attr(target)
                if attr is not None:
                    yield node, attr, "deletes"
                if isinstance(target, ast.Subscript):
                    attr = _self_underscore_attr(target.value)
                    if attr is not None:
                        yield node, attr, "deletes an item of"
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                attr = _self_underscore_attr(func.value)
                if attr is not None:
                    yield node, attr, f"calls .{func.attr}() on"


def _mutation_receiver_ids(method: ast.AST) -> set[int]:
    """``id()`` of every ``self._*`` attribute node that is a mutation receiver.

    CONC402 scans ``Load``-context attribute reads; the receiver of an item
    write (``self._d`` in ``self._d[k] = v``) or a mutator call (``self._log``
    in ``self._log.append(x)``) technically *is* such a read, but the mutation
    it belongs to is already CONC401's finding — excluding the exact nodes
    avoids reporting the same statement twice.  Subscript *indices* are not
    excluded: ``self._d[self._i] = v`` still reads ``self._i``.
    """
    ids: set[int] = set()

    def receiver(target: ast.AST) -> None:
        if isinstance(target, ast.Attribute):
            ids.add(id(target))
        elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Attribute):
            ids.add(id(target.value))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                receiver(element)

    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                receiver(target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                receiver(target)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                if isinstance(func.value, ast.Attribute):
                    ids.add(id(func.value))
    return ids


def _shared_attrs(cls: ast.ClassDef, locks: set[str]) -> set[str]:
    """Attributes the class mutates outside its constructors.

    These are the racy ones: a read elsewhere can interleave with a
    concurrent write.  Attributes assigned only during construction are
    effectively immutable configuration and stay out of this set.
    """
    shared: set[str] = set()
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name in _CONSTRUCTORS:
            continue
        for _node, attr, _verb in _mutations(method):
            if attr not in locks:
                shared.add(attr)
    return shared


def check(tree: ast.AST, path: Path, config: LintConfig) -> list[Finding]:
    """CONC findings for one parsed module (parents must be attached)."""
    if not path_matches(path, config.conc_paths):
        return []
    findings: list[Finding] = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        locks = _lock_attrs(cls)
        if not locks:
            continue
        lock_name = next(iter(sorted(locks)))
        shared = _shared_attrs(cls, locks)
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _CONSTRUCTORS:
                continue
            for node, attr, verb in _mutations(method):
                if attr in locks:
                    continue  # re-binding the lock itself is its own hazard, not this rule's
                if _is_guarded(node):
                    continue
                findings.append(
                    Finding(
                        str(path),
                        node.lineno,
                        node.col_offset,
                        "CONC401",
                        f"{cls.name}.{method.name} {verb} shared attribute "
                        f"'self.{attr}' outside 'with self.{lock_name}'",
                    )
                )
            if method.name.endswith("_locked"):
                continue  # caller-holds-the-lock convention: reads are the caller's duty
            receivers = _mutation_receiver_ids(method)
            for node in ast.walk(method):
                if not isinstance(node, ast.Attribute) or not isinstance(node.ctx, ast.Load):
                    continue
                attr = _self_underscore_attr(node)
                if attr is None or attr not in shared:
                    continue
                if id(node) in receivers:
                    continue
                if _is_guarded(node):
                    continue
                findings.append(
                    Finding(
                        str(path),
                        node.lineno,
                        node.col_offset,
                        "CONC402",
                        f"{cls.name}.{method.name} reads shared attribute "
                        f"'self.{attr}' outside 'with self.{lock_name}' "
                        f"(the class mutates it outside construction)",
                    )
                )
    return findings
