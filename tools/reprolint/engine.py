"""The lint driver: file discovery, rule dispatch, suppressions.

``lint_paths`` walks the given files/directories, parses each ``*.py`` once,
attaches parent links, runs the per-file rule families (DET, SEC, CONC),
then resolves and runs the cross-module PAR check.  Per-line suppressions —
``# reprolint: disable=RULE[,RULE...]`` with a rule id, a family (``DET``)
or ``all`` — are honoured last, so a suppressed line still costs the
analysis but never the build.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from tools.reprolint import conc, det, par, sec
from tools.reprolint.astutil import attach_parents
from tools.reprolint.config import LintConfig, ParitySpec, path_matches
from tools.reprolint.findings import Finding

#: ``# reprolint: disable=DET101,SEC`` (case-sensitive ids, spaces tolerated).
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


def line_suppressions(source: str) -> dict[int, set[str]]:
    """Line number -> set of suppressed rule ids/families for one file."""
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            tokens = {token.strip() for token in match.group(1).split(",") if token.strip()}
            if tokens:
                suppressions[lineno] = tokens
    return suppressions


def is_suppressed(finding: Finding, suppressions: dict[int, set[str]]) -> bool:
    """Whether a per-line comment waives this finding."""
    tokens = suppressions.get(finding.line, set())
    if not tokens:
        return False
    if "all" in tokens or finding.rule in tokens:
        return True
    family = finding.rule.rstrip("0123456789")
    return family in tokens


def discover(paths: list[Path], config: LintConfig) -> list[Path]:
    """Every ``*.py`` file under ``paths``, deterministic order."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if any(part in config.skip_dirs for part in candidate.parts):
                    continue
                files.append(candidate)
        elif path.suffix == ".py":
            files.append(path)
    return [path for path in files if not path_matches(path, config.skip_paths)]


def lint_file(path: Path, config: LintConfig) -> list[Finding]:
    """All per-file findings (DET + SEC + CONC) for one source file."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return [Finding(str(path), getattr(exc, "lineno", 1) or 1, 0, "E999", str(exc))]
    attach_parents(tree)
    findings = det.check(tree, path, config)
    findings += sec.check(tree, path, config)
    findings += conc.check(tree, path, config)
    suppressions = line_suppressions(source)
    return [finding for finding in findings if not is_suppressed(finding, suppressions)]


def resolve_parity_spec(files: list[Path], config: LintConfig) -> ParitySpec | list[Finding] | None:
    """Locate the configured engine pair among the scanned files.

    Returns a :class:`ParitySpec` when both modules are present, a PAR302
    finding list when exactly one is (an engine module vanished), and
    ``None`` when neither is in scope (e.g. linting an unrelated subtree).
    """
    if config.par_row_module is None or config.par_columnar_module is None or not config.par_pairs:
        return None
    row = [path for path in files if path_matches(path, (config.par_row_module,))]
    col = [path for path in files if path_matches(path, (config.par_columnar_module,))]
    if not row and not col:
        return None
    if not row or not col:
        present = (row or col)[0]
        missing = config.par_row_module if not row else config.par_columnar_module
        return [
            Finding(
                str(present),
                1,
                0,
                "PAR302",
                f"engine pair incomplete: no scanned file matches {missing!r}",
            )
        ]
    return ParitySpec(
        row_path=row[0],
        columnar_path=col[0],
        pairs=config.par_pairs,
        charge_calls=config.par_charge_calls,
    )


def lint_paths(paths: list[Path | str], config: LintConfig | None = None) -> list[Finding]:
    """Lint files/directories; returns every unsuppressed finding, sorted."""
    from tools.reprolint.config import default_config

    config = config or default_config()
    files = discover([Path(path) for path in paths], config)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, config))
    parity = resolve_parity_spec(files, config)
    if isinstance(parity, ParitySpec):
        parity_findings = par.check_parity(parity)
        suppressions = {
            str(module): line_suppressions(module.read_text(encoding="utf-8"))
            for module in (parity.row_path, parity.columnar_path)
            if module.exists()
        }
        findings.extend(
            finding
            for finding in parity_findings
            if not is_suppressed(finding, suppressions.get(finding.path, {}))
        )
    elif isinstance(parity, list):
        findings.extend(parity)
    return sorted(findings, key=Finding.sort_key)
