"""SEC rules: every ``pickle.loads`` is allowlisted, and verified on the wire.

``pickle.loads`` on attacker-controllable bytes is remote code execution, so
the codebase confines unpickling to two documented sites: the file queue's
task files (the shared filesystem is the trust boundary) and the TCP frame
decoder, which HMAC-verifies every frame *before* unpickling it.  Both
halves of that policy are enforced statically:

* **SEC201** — a call to ``pickle.loads`` / ``pickle.load`` /
  ``pickle.Unpickler`` (under any import alias) anywhere outside the
  config's ``sec_allow`` function allowlist.  A new unpickle call site —
  however innocent — must be reviewed into the allowlist, which is exactly
  the code-review tripwire this rule exists to be.
* **SEC202** — in network-reachable modules (``sec_verified_paths``), every
  unpickle call must be *dominated* by an authentication gate in the same
  function: on every structured path to the call there is an earlier
  statement that either invokes ``hmac.compare_digest`` (rejecting on
  mismatch) or is an ``if`` guard raising an ``*Auth*`` error.  A new
  ``pickle.loads`` pasted into ``runtime/netqueue.py`` without the
  verify-first dance fails lint even if it is also added to the allowlist.

Domination is computed over the statement structure
(:func:`tools.reprolint.astutil.statements_before_on_path`): sound for the
loop-free, early-raise style the codec is written in, and conservative —
a gate the analysis cannot see fails the build rather than passing it.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint.astutil import dotted_name, qualname_of, statements_before_on_path
from tools.reprolint.config import LintConfig, path_matches
from tools.reprolint.findings import Finding

#: Attribute spellings of unpickling entry points.
_PICKLE_MODULES = {"pickle", "_pickle", "cPickle", "dill", "cloudpickle"}
_PICKLE_FUNCTIONS = {"loads", "load", "Unpickler"}


def _unpickle_aliases(tree: ast.AST) -> dict[str, str]:
    """Local names bound to unpickling callables via ``from pickle import ...``."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in _PICKLE_MODULES:
            for alias in node.names:
                if alias.name in _PICKLE_FUNCTIONS:
                    aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _unpickle_name(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """The canonical ``module.function`` if ``call`` unpickles, else ``None``."""
    name = dotted_name(call.func)
    if name is None:
        return None
    if name in aliases:
        return aliases[name]
    parts = name.split(".")
    if len(parts) == 2 and parts[0] in _PICKLE_MODULES and parts[1] in _PICKLE_FUNCTIONS:
        return name
    return None


def _is_auth_gate(stmt: ast.stmt) -> bool:
    """Whether ``stmt`` authenticates (or rejects) the bytes before use.

    Two recognised shapes, matching how the frame codec is written:

    * any statement whose subtree calls ``hmac.compare_digest`` — the
      constant-time signature comparison (its failure branch raises);
    * an ``if`` whose body raises an exception with ``Auth`` in its name —
      the explicit unauthenticated-frame rejection guard.
    """
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] == "compare_digest":
                return True
    if isinstance(stmt, ast.If):
        for inner in stmt.body:
            for node in ast.walk(inner):
                if isinstance(node, ast.Raise) and node.exc is not None:
                    exc = node.exc.func if isinstance(node.exc, ast.Call) else node.exc
                    exc_name = dotted_name(exc) or ""
                    if "auth" in exc_name.lower():
                        return True
    return False


def check(tree: ast.AST, path: Path, config: LintConfig) -> list[Finding]:
    """SEC findings for one parsed module (parents must be attached)."""
    aliases = _unpickle_aliases(tree)
    findings: list[Finding] = []
    verified_module = path_matches(path, config.sec_verified_paths)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _unpickle_name(node, aliases)
        if name is None:
            continue
        qualname = qualname_of(node)
        where = qualname or "<module>"
        if not config.sec_allowed(path, qualname):
            findings.append(
                Finding(
                    str(path),
                    node.lineno,
                    node.col_offset,
                    "SEC201",
                    f"{name} in {where} is not an allowlisted unpickling site; "
                    "untrusted bytes here are remote code execution",
                )
            )
        if verified_module:
            gated = any(_is_auth_gate(stmt) for stmt in statements_before_on_path(node))
            if not gated:
                findings.append(
                    Finding(
                        str(path),
                        node.lineno,
                        node.col_offset,
                        "SEC202",
                        f"{name} in {where} is not dominated by a signature-verify "
                        "gate (hmac.compare_digest or an *Auth* raise guard) in the "
                        "same function",
                    )
                )
    return findings
