"""reprolint: AST-based invariant linter for the reproduction.

The runtime test suite proves the headline guarantees — byte-identical
results across serial/parallel/distributed sweeps and across the row and
columnar engines, HMAC verification *before* ``pickle.loads`` on network
bytes, deterministic seeded replay — but only for the code paths a test
happens to execute.  ``reprolint`` re-states four of those guarantees as
compile-time rules over the source itself, so a regression fails ``make
lint`` (and the CI lint job) before any test runs:

* **DET** — no wall-clock or unseeded randomness in deterministic paths
  (:mod:`tools.reprolint.det`).
* **SEC** — ``pickle.loads`` only in allowlisted functions, and dominated by
  a signature verification in network-reachable modules
  (:mod:`tools.reprolint.sec`).
* **CONC** — lock-owning classes mutate shared ``self._*`` state only under
  their lock (:mod:`tools.reprolint.conc`).
* **PAR** — the row and columnar engines issue identical buffer-pool charge
  calls in identical order (:mod:`tools.reprolint.par`).

Run it as ``python -m tools.reprolint src`` (see :mod:`tools.reprolint.cli`
for ``--json`` and the exit-code contract).  Rule catalog, the invariant each
rule encodes, and the suppression policy live in ``docs/STATIC_ANALYSIS.md``.
"""

from tools.reprolint.config import LintConfig, default_config
from tools.reprolint.engine import lint_paths
from tools.reprolint.findings import RULE_CATALOG, Finding

__all__ = ["Finding", "LintConfig", "RULE_CATALOG", "default_config", "lint_paths"]
