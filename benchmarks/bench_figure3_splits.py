"""Benchmark F3: dataset split sampling strategies (Figure 3)."""

from repro.core.splits import SplitSampling
from repro.experiments import figure3


def test_figure3_split_sampling(benchmark, bench_scale, result_store):
    splits = benchmark.pedantic(
        figure3.run, kwargs={"scale": bench_scale}, iterations=1, rounds=1
    )
    assert set(splits) == {s.value for s in SplitSampling}
    rows = figure3.assignment_rows(splits)
    result_store.save_artifact("figure3_assignments", rows)
    loo = next(r for r in rows if r["sampling"] == "leave_one_out")
    base = next(r for r in rows if r["sampling"] == "base_query")
    assert loo["test_queries"] == 33          # one variant per family
    assert base["families_fully_held_out"] > 0
    print()
    print(figure3.main(bench_scale))
