"""Benchmark 8.3: covariate shift — Bao-Full vs. Bao-50 (Section 8.3).

Expected shape: the model trained on the shifted (halved) database regresses
on several queries and improves on a few when evaluated on the full database.
"""

from repro.core.experiment import ExperimentConfig
from repro.experiments import s83_covariate_shift


def test_s83_covariate_shift(benchmark, bench_scale):
    config = ExperimentConfig(optimizer_kwargs={"bao": {"training_passes": 1}})
    result = benchmark.pedantic(
        s83_covariate_shift.run,
        kwargs={"scale": bench_scale, "experiment_config": config},
        iterations=1,
        rounds=1,
    )
    assert result.slowdown_factors
    assert all(factor > 0 for factor in result.slowdown_factors.values())
    regressions = result.top_regressions(3)
    print()
    print("Bao-50 vs Bao-Full — top regressions:",
          [(qid, round(f, 2)) for qid, f in regressions])
    print("Bao-50 vs Bao-Full — improvements:",
          [(qid, round(f, 2)) for qid, f in result.top_improvements(3)])
