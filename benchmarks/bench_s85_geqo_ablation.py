"""Benchmark 8.5: GEQO ablation (Section 8.5).

Expected shape: fewer affected queries than the scan ablation, but significant
differences in both directions among the larger queries.
"""

from repro.experiments import s85_geqo

SAMPLE_QUERIES = [
    "14a", "20a", "22a", "23a", "24a", "26a", "27a", "28a", "29a", "30a", "31a", "33a",
]


def test_s85_geqo_ablation(benchmark, bench_scale, bench_full):
    query_ids = None if bench_full else SAMPLE_QUERIES
    result = benchmark.pedantic(
        s85_geqo.run,
        kwargs={"scale": bench_scale, "hot_samples": 3, "query_ids": query_ids},
        iterations=1,
        rounds=1,
    )
    assert result.outcomes
    print()
    print("disabling GEQO — top speedups:",
          [(o.query_id, round(o.speedup_factor, 2)) for o in result.top_speedups(3)])
    print("disabling GEQO — top slowdowns:",
          [(o.query_id, round(o.slowdown_factor, 2)) for o in result.top_slowdowns(3)])
    print("significant changes:", len(result.significant_queries(0.25)))
