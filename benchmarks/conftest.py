"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper at a reduced,
laptop-friendly scale (see DESIGN.md §4 for the experiment index).  Set the
environment variables ``REPRO_BENCH_SCALE`` (database scale factor) and
``REPRO_BENCH_FULL=1`` (full experiment grids) for larger runs.
"""

from __future__ import annotations

import os

import pytest

#: Reduced database scale used by default so the whole suite finishes quickly.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))

#: Whether to run the full experiment grids (all methods, 3 splits/sampling).
BENCH_FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_full() -> bool:
    return BENCH_FULL
