"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper at a reduced,
laptop-friendly scale (see DESIGN.md §4 for the experiment index).  Set the
environment variables ``REPRO_BENCH_SCALE`` (database scale factor) and
``REPRO_BENCH_FULL=1`` (full experiment grids) for larger runs.

The end-to-end benchmarks run through the experiment runtime: tasks fan out
over ``REPRO_BENCH_WORKERS`` workers (default 2) and results/artefacts are
persisted into a result store.  Set ``REPRO_BENCH_EXECUTOR=process`` to fan
out over worker processes instead of threads — databases built through the
catalog factories then dispatch as :class:`DatabaseSpec` payloads (a few
hundred bytes per task) rather than pickled table data.  Point
``REPRO_BENCH_STORE`` at a directory to make sweeps resumable across
invocations — completed (method, split, seed) tasks are then skipped on
re-run.
"""

from __future__ import annotations

import os

import pytest

from repro.config import RuntimeConfig
from repro.runtime.result_store import ResultStore

#: Reduced database scale used by default so the whole suite finishes quickly.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))

#: Whether to run the full experiment grids (all methods, 3 splits/sampling).
BENCH_FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: Parallel workers used by the end-to-end experiment grids.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))

#: Executor kind of the benchmark grids ("thread", "process" or "serial").
BENCH_EXECUTOR = os.environ.get("REPRO_BENCH_EXECUTOR", "thread")


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_full() -> bool:
    return BENCH_FULL


@pytest.fixture(scope="session")
def bench_runtime() -> RuntimeConfig:
    """Runtime configuration of the benchmark grids (parallel fan-out)."""
    return RuntimeConfig(workers=max(BENCH_WORKERS, 1), executor_kind=BENCH_EXECUTOR)


@pytest.fixture(scope="session")
def result_store(tmp_path_factory) -> ResultStore:
    """Resumable result store shared by the benchmark session.

    Ephemeral by default; set ``REPRO_BENCH_STORE=/some/dir`` to persist
    results (and skip completed tasks) across benchmark invocations.
    """
    root = os.environ.get("REPRO_BENCH_STORE") or tmp_path_factory.mktemp("result-store")
    return ResultStore(root)
