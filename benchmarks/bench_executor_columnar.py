"""Benchmark: columnar vs row execution engine on the JOB end-to-end workload.

Both engines implement the same :class:`ExecutionProtocol` semantics and must
produce byte-identical result rows, cardinalities and simulated timings for
every plan (see docs/EXECUTOR.md); this benchmark asserts that equivalence on
the full JOB workload and records the wall-clock speedup of the columnar
engine.  The execution protocol per query mirrors the Figure 4 drivers: caches
dropped once, then ``RUNS_PER_QUERY`` repetitions (one cold start plus
hot-cache repeats).

Engine timings are interleaved across repetitions (row, columnar, row, ...) so
slow drift in machine load hits both engines equally; the reported speedup
uses the best repetition of each engine.  The result is saved both into the
session result store and as ``BENCH_executor_columnar.json`` at the repo root
(override the location with ``REPRO_BENCH_ENGINE_JSON``).

A second section runs LEFT/FULL outer joins and grouped aggregates (absent
from JOB itself) through the same cold+hot protocol, asserting per-repetition
byte-equivalence of rows, metrics and simulated timings across both engines.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

from repro.executor.engine import create_engine
from repro.experiments.common import job_context
from repro.optimizer.planner import Planner
from repro.sql.binder import bind_sql

#: Database scale of the engine comparison.  Deliberately *not* the generic
#: ``REPRO_BENCH_SCALE`` smoke scale: at tiny scales both engines finish in
#: fractions of a second and fixed per-operator Python overhead swamps the
#: difference; scale 1.0 is where the figure-4 workload (and the >= 2x
#: acceptance recorded in BENCH_executor_columnar.json) lives.
ENGINE_BENCH_SCALE = float(os.environ.get("REPRO_BENCH_ENGINE_SCALE", "1.0"))

#: Interleaved measurement repetitions per engine.
REPS = int(os.environ.get("REPRO_BENCH_ENGINE_REPS", "3"))

#: Executions per query: one cold start plus hot-cache repeats (Figure 4 protocol).
RUNS_PER_QUERY = 3

#: Where the JSON artefact is written (defaults to the repository root).
DEFAULT_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_executor_columnar.json"


def _run_workload(database, plans, kind: str):
    """Execute every planned query ``RUNS_PER_QUERY`` times on a fresh engine.

    Returns ``(elapsed_seconds, results)`` where ``results`` holds the final
    (hot-cache) :class:`ExecutionResult` per query.  A fresh engine per call
    resets the timing model's seeded noise stream, so identical call sequences
    yield identical simulated timings across engines and repetitions.
    """
    engine = create_engine(database, database.config, kind=kind)
    results = []
    started = time.perf_counter()
    for query, plan in plans:
        database.drop_caches()
        for _ in range(RUNS_PER_QUERY):
            result = engine.execute(query.bound, plan)
        results.append(result)
    return time.perf_counter() - started, results


def _assert_byte_identical(row_results, columnar_results, plans):
    """Every query must agree on rows, counts, metrics and simulated time."""
    for (query, _), row_res, col_res in zip(plans, row_results, columnar_results):
        name = query.query_id
        assert row_res.rows == col_res.rows, f"{name}: result rows differ"
        assert row_res.row_count == col_res.row_count, f"{name}: row_count differs"
        assert row_res.timed_out == col_res.timed_out, f"{name}: timeout flag differs"
        assert row_res.metrics.__dict__ == col_res.metrics.__dict__, (
            f"{name}: work profile differs"
        )
        assert row_res.execution_time_ms == col_res.execution_time_ms, (
            f"{name}: simulated timing differs"
        )


#: Outer-join / grouped-aggregate protocol section: the JOB workload is
#: inner-join only, so these hand-written queries over the same IMDB schema
#: exercise LEFT/FULL NULL extension and GROUP BY decoration under the same
#: cold+hot repetition protocol, asserting byte-equivalence per repetition.
OUTER_PROTOCOL_SQLS = (
    "SELECT COUNT(*) FROM title AS t LEFT JOIN movie_keyword AS mk ON t.id = mk.movie_id",
    "SELECT COUNT(*), COUNT(k.id) FROM movie_keyword AS mk "
    "FULL OUTER JOIN keyword AS k ON mk.keyword_id = k.id",
    "SELECT t.kind_id, COUNT(*), MIN(t.production_year) FROM title AS t "
    "JOIN movie_keyword AS mk ON t.id = mk.movie_id "
    "LEFT JOIN keyword AS k ON mk.keyword_id = k.id "
    "GROUP BY t.kind_id",
)


def test_outer_join_grouped_aggregate_protocol():
    """LEFT/FULL joins + GROUP BY through the Figure 4 protocol, both engines."""
    context = job_context(min(ENGINE_BENCH_SCALE, 0.1))
    database = context.database.with_config(context.database.config)
    planner = Planner(database)
    plans = [
        (bind_sql(sql, database.schema, name=f"outer_bench_{i}"), sql)
        for i, sql in enumerate(OUTER_PROTOCOL_SQLS)
    ]
    for query, sql in plans:
        plan = planner.plan(query)
        # Fresh engine per side resets the seeded timing noise stream, so the
        # repetition-by-repetition comparison below is exact.
        results = {}
        for kind in ("row", "columnar"):
            engine = create_engine(database, database.config, kind=kind)
            database.drop_caches()
            results[kind] = [engine.execute(query, plan) for _ in range(RUNS_PER_QUERY)]
        for rep, (row_res, col_res) in enumerate(
            zip(results["row"], results["columnar"])
        ):
            assert row_res.rows == col_res.rows, f"{sql} (rep {rep}): rows differ"
            assert row_res.metrics.__dict__ == col_res.metrics.__dict__, (
                f"{sql} (rep {rep}): work profile differs"
            )
            assert row_res.execution_time_ms == col_res.execution_time_ms, (
                f"{sql} (rep {rep}): simulated timing differs"
            )
        assert results["row"][-1].row_count > 0, f"{sql}: empty result"


def test_columnar_engine_speedup_on_job(benchmark, result_store):
    context = job_context(ENGINE_BENCH_SCALE)
    # Private buffer-pool view: the benchmark drops caches per query, which
    # must not perturb the registry-shared instance other tests may hold.
    database = context.database.with_config(context.database.config)
    planner = Planner(database)
    plans = [(query, planner.plan(query.bound)) for query in context.workload.queries]

    row_times: list[float] = []
    columnar_times: list[float] = []
    row_results = columnar_results = None
    for _ in range(REPS):
        elapsed, row_results = _run_workload(database, plans, "row")
        row_times.append(elapsed)
        elapsed, columnar_results = _run_workload(database, plans, "columnar")
        columnar_times.append(elapsed)
    _assert_byte_identical(row_results, columnar_results, plans)

    # Record the final columnar pass through pytest-benchmark's bookkeeping
    # too, so the suite-wide benchmark table includes this entry.
    benchmark.pedantic(
        _run_workload,
        args=(database, plans, "columnar"),
        iterations=1,
        rounds=1,
    )

    speedup_best = min(row_times) / max(min(columnar_times), 1e-9)
    speedup_median = statistics.median(row_times) / max(
        statistics.median(columnar_times), 1e-9
    )
    payload = {
        "benchmark": "figure4 JOB end-to-end execution: row vs columnar engine",
        "scale": ENGINE_BENCH_SCALE,
        "queries": len(plans),
        "runs_per_query": RUNS_PER_QUERY,
        "reps": REPS,
        "row_s": {
            "best": min(row_times),
            "median": statistics.median(row_times),
            "all": row_times,
        },
        "columnar_s": {
            "best": min(columnar_times),
            "median": statistics.median(columnar_times),
            "all": columnar_times,
        },
        "speedup_best": speedup_best,
        "speedup_median": speedup_median,
        "simulated_total_ms": sum(r.execution_time_ms for r in columnar_results),
        "byte_identical": True,
    }
    result_store.save_artifact("BENCH_executor_columnar", payload)
    json_path = Path(os.environ.get("REPRO_BENCH_ENGINE_JSON") or DEFAULT_JSON_PATH)
    json_path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")

    print()
    print(
        f"JOB x{len(plans)} queries, {RUNS_PER_QUERY} runs each: "
        f"row best {min(row_times):.2f}s vs columnar best {min(columnar_times):.2f}s "
        f"-> {speedup_best:.2f}x (median {speedup_median:.2f}x)"
    )
    # Gate: at the default scale 1.0 the measured speedup is ~2.2x (the
    # committed BENCH_executor_columnar.json); the floor absorbs noisy shared
    # CI runners.
    # When REPRO_BENCH_ENGINE_SCALE is dialed down for a quick local smoke the
    # gap shrinks toward per-operator overhead parity, so only require
    # "not slower".
    assert speedup_best >= (1.5 if ENGINE_BENCH_SCALE >= 1.0 else 0.9)
