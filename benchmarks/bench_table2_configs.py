"""Benchmark T2: regenerate Table 2 (PostgreSQL configurations across papers)."""

from repro.experiments import table2


def test_table2_configuration_matrix(benchmark):
    rows = benchmark(table2.run)
    assert len(rows) == len(table2.TABLE2_PARAMETERS)
    deviations = table2.deviations()
    assert deviations["default"] == {}
    assert "enable_bitmapscan" in deviations["balsa_leon"]
    print()
    print(table2.main())
