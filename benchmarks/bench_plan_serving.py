"""Benchmark: the plan-serving control plane under concurrent client load.

``N`` concurrent clients (threads, one :class:`PlanClient` each) replay
deterministic :class:`RandomSqlGenerator` streams against one
:class:`PlanServer` over the HMAC-authenticated frame codec, all sharing the
server's cross-request plan cache.  The run records sustained throughput
(queries/s), client-observed round-trip latency percentiles (p50/p95/p99)
and the shared-cache hit rate to ``BENCH_plan_serving.json`` at the repo
root (override with ``REPRO_BENCH_PLAN_JSON``); the server's final
:class:`PlanServerStats` snapshot lands next to it as
``BENCH_plan_serving_stats.json`` (``REPRO_BENCH_PLAN_STATS_JSON``).

Three properties are asserted along the way, mirroring the serving tests:

* a served plan is byte-identical (under ``pickle.dumps``, after one
  serialization hop on both sides) to a direct in-process ``Planner`` call,
* an unauthenticated client is rejected before anything is unpickled
  (``QueueAuthError``, counted in the server's ``auth_rejects``),
* a catalog-generation bump (``invalidate``) visibly drops the cache hit
  rate without restarting the server — the replayed stream misses once per
  query and re-warms.

Knobs: ``REPRO_BENCH_PLAN_CLIENTS`` (concurrent clients, default 4),
``REPRO_BENCH_PLAN_REQUESTS`` (requests per client, default 80),
``REPRO_BENCH_PLAN_DISTINCT`` (distinct queries in the replayed pool,
default 24), ``REPRO_BENCH_PLAN_SCALE`` (database scale, default 0.15).
"""

from __future__ import annotations

import json
import os
import pickle
import threading
import time
from pathlib import Path

from repro.config import SIMULATION_CONFIG
from repro.optimizer.planner import Planner
from repro.runtime.netqueue import QueueAuthError
from repro.runtime.plan_cache import PlanCache
from repro.runtime.planclient import PlanClient
from repro.runtime.planserver import PlanServer
from repro.sql.binder import bind_sql
from repro.storage.registry import get_process_registry
from repro.storage.spec import DatabaseSpec
from repro.workloads.random_gen import JoinSamplerConfig, RandomSqlGenerator

import pytest

BENCH_CLIENTS = int(os.environ.get("REPRO_BENCH_PLAN_CLIENTS", "4"))
BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_PLAN_REQUESTS", "80"))
BENCH_DISTINCT = int(os.environ.get("REPRO_BENCH_PLAN_DISTINCT", "24"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_PLAN_SCALE", "0.15"))

#: Shared frame-signing secret; the Makefile exports REPRO_QUEUE_SECRET.
SECRET = os.environ.get("REPRO_QUEUE_SECRET") or "plan-serving-bench-secret"

DEFAULT_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_plan_serving.json"
DEFAULT_STATS_PATH = Path(__file__).resolve().parent.parent / "BENCH_plan_serving_stats.json"


def _percentile(sorted_samples: list[float], fraction: float) -> float:
    rank = min(len(sorted_samples) - 1, max(0, round(fraction * (len(sorted_samples) - 1))))
    return sorted_samples[rank]


def _latency_summary(latencies_ms: list[float]) -> dict[str, float]:
    samples = sorted(latencies_ms)
    return {
        "count": len(samples),
        "mean": round(sum(samples) / len(samples), 4),
        "p50": round(_percentile(samples, 0.50), 4),
        "p95": round(_percentile(samples, 0.95), 4),
        "p99": round(_percentile(samples, 0.99), 4),
    }


def _replay_phase(server: PlanServer, sqls: list[str], phase: str) -> dict:
    """Replay the query pool from every client concurrently; measure client-side.

    Each client walks the same deterministic pool at a different starting
    offset, so early requests contend for cold entries (exercising the
    single-flight miss path) while the steady state is hit-dominated.
    """
    latencies: list[list[float]] = [[] for _ in range(BENCH_CLIENTS)]
    hits: list[int] = [0] * BENCH_CLIENTS
    errors: list[Exception] = []
    barrier = threading.Barrier(BENCH_CLIENTS)

    def run_client(index: int) -> None:
        client = PlanClient(
            server.url,
            client_id=f"{phase}-client-{index}",
            secret=SECRET,
            retries=1,
            reject_retries=8,
        )
        try:
            barrier.wait(timeout=30)
            for step in range(BENCH_REQUESTS):
                sql = sqls[(index * 7 + step) % len(sqls)]
                started = time.perf_counter()
                served = client.plan(sql)
                latencies[index].append((time.perf_counter() - started) * 1000.0)
                hits[index] += 1 if served.cache_hit else 0
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=run_client, args=(i,)) for i in range(BENCH_CLIENTS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    elapsed_s = time.perf_counter() - started
    assert not errors, errors
    all_latencies = [sample for bucket in latencies for sample in bucket]
    requests = len(all_latencies)
    assert requests == BENCH_CLIENTS * BENCH_REQUESTS
    return {
        "phase": phase,
        "clients": BENCH_CLIENTS,
        "requests": requests,
        "elapsed_s": round(elapsed_s, 4),
        "qps": round(requests / elapsed_s, 2),
        "client_hit_rate": round(sum(hits) / requests, 4),
        "latency_ms": _latency_summary(all_latencies),
    }


@pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")
def test_plan_serving_load():
    assert BENCH_CLIENTS >= 2, "the load harness needs concurrent clients"
    spec = DatabaseSpec.create("imdb", scale=BENCH_SCALE, seed=42, config=SIMULATION_CONFIG)
    database = get_process_registry().get(spec)
    generator = RandomSqlGenerator(
        database.schema,
        seed=2026,
        # Modest outer-join share keeps the pool planner-diverse but fast.
        joins=JoinSamplerConfig(max_joins=4, outer_fraction=0.25, full_fraction=0.2),
    )
    sqls = [generator.sql(index) for index in range(BENCH_DISTINCT)]

    server = PlanServer(database, secret=SECRET)
    try:
        # Phase 1: cold cache (every distinct query misses once, single-flight).
        cold = _replay_phase(server, sqls, "cold")
        # Phase 2: fully warmed steady state — the headline qps/latency numbers.
        steady = _replay_phase(server, sqls, "steady")
        assert steady["client_hit_rate"] == 1.0, "steady state should be all hits"

        # Served plans are the direct planner's plans, byte for byte (after
        # one serialization hop on both sides; the served one already took it).
        probe = PlanClient(server.url, client_id="probe", secret=SECRET)
        direct = Planner(database, plan_cache=PlanCache())
        for sql in sqls[:5]:
            served = probe.plan(sql)
            local = direct.plan_with_info(bind_sql(sql, database.schema))
            direct_bytes = pickle.dumps(pickle.loads(pickle.dumps(local.plan)))
            assert pickle.dumps(served.plan) == direct_bytes, f"plan drift for {sql!r}"

        # An unauthenticated client is turned away loudly, before unpickling.
        intruder = PlanClient(server.url, secret="", retries=0)
        try:
            intruder.plan(sqls[0])
            raise AssertionError("unauthenticated client was served")
        except QueueAuthError:
            pass
        assert server.stats().auth_rejects >= 1

        # Phase 3: catalog-generation bump -> visible hit-rate drop, no restart.
        hit_rate_before = server.stats().cache["hit_rate"]
        generations = probe.invalidate()
        assert all(gen > 0 for gen in generations.values())
        rebuild = _replay_phase(server, sqls, "post-invalidate")
        snapshot = server.stats()
        assert snapshot.cache["invalidations"] >= 1
        # The replay misses once per distinct query before re-warming: the
        # post-bump phase's client-observed hit rate must dip below the fully
        # warmed steady state's 100%.
        assert rebuild["client_hit_rate"] < steady["client_hit_rate"]
        assert snapshot.cache["misses"] >= 2 * len(sqls)

        payload = {
            "benchmark": "plan-serving control plane: concurrent replay over the authenticated codec",
            "scale": BENCH_SCALE,
            "distinct_queries": len(sqls),
            "clients": BENCH_CLIENTS,
            "requests_per_client": BENCH_REQUESTS,
            "qps": steady["qps"],
            "latency_ms": steady["latency_ms"],
            "cache_hit_rate": snapshot.cache["hit_rate"],
            "hit_rate_before_invalidate": hit_rate_before,
            "hit_rate_steady": steady["client_hit_rate"],
            "hit_rate_post_invalidate": rebuild["client_hit_rate"],
            "phases": [cold, steady, rebuild],
            "auth_rejects": snapshot.auth_rejects,
            "rejected": snapshot.rejected,
            "byte_identical": True,
            "authenticated": True,
        }
        json_path = Path(os.environ.get("REPRO_BENCH_PLAN_JSON") or DEFAULT_JSON_PATH)
        json_path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        stats_path = Path(os.environ.get("REPRO_BENCH_PLAN_STATS_JSON") or DEFAULT_STATS_PATH)
        stats_path.write_text(json.dumps(snapshot.to_dict(), indent=1, sort_keys=True) + "\n")

        print()
        print(
            f"plan serving: {BENCH_CLIENTS} clients x {BENCH_REQUESTS} requests "
            f"over {len(sqls)} distinct queries -> {steady['qps']:.0f} qps steady, "
            f"p50 {steady['latency_ms']['p50']:.2f}ms / p95 {steady['latency_ms']['p95']:.2f}ms / "
            f"p99 {steady['latency_ms']['p99']:.2f}ms, "
            f"hit rate steady {steady['client_hit_rate']:.1%} -> "
            f"post-invalidate {rebuild['client_hit_rate']:.1%}, "
            f"auth_rejects {snapshot.auth_rejects}"
        )
    finally:
        server.close()
