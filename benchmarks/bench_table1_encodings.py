"""Benchmark T1: regenerate Table 1 (LQO encoding components)."""

from repro.experiments import table1


def test_table1_encoding_inventory(benchmark):
    rows = benchmark(table1.run)
    assert len(rows) == 8
    assert {row["LQO"] for row in rows} == {
        "Neo", "RTOS", "Bao", "Balsa", "Lero", "LEON", "LOGER", "HybridQO",
    }
    print()
    print(table1.main())
